#!/usr/bin/env python3
"""Trace replay: persist a workload, replay it, search with query strings.

Real deployments replay recorded traces (the paper replays a year of
collected tweets).  This example:

1. generates a synthetic stream and saves it as a JSON-lines trace;
2. replays the trace into a fresh system — byte-identical state;
3. serves search *strings* (`"storm OR flood k:10"`, `"user:0"`) through
   the query parser, printing hit/miss and simulated latency, the
   paper's tail-latency motivation made visible.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import MicroblogSystem, SystemConfig, parse_query
from repro.workload import MicroblogStream, StreamConfig, load_records, save_records


def build_system():
    return MicroblogSystem(
        SystemConfig(policy="kflushing", k=10, memory_capacity_bytes=2_000_000)
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    trace_path = workdir / "tweets.jsonl"

    # 1. Record a trace.
    stream = MicroblogStream(
        StreamConfig(seed=77, vocabulary_size=4_000, with_locations=False)
    )
    count = save_records(stream.take(40_000), trace_path)
    size_kb = trace_path.stat().st_size // 1024
    print(f"saved {count} records to {trace_path} ({size_kb} KB)")

    # 2. Replay it.
    system = build_system()
    system.ingest_many(load_records(trace_path))
    print(
        f"replayed into a kFlushing store: {len(system.flush_reports())} flushes, "
        f"{system.k_filled_count()} k-filled tags"
    )

    # 3. Serve query strings.
    vocab = stream.vocabulary
    searches = [
        vocab.tag(0),                                  # hot single keyword
        f"{vocab.tag(0)} OR {vocab.tag(3000)}",        # hot OR cold
        f"{vocab.tag(0)} AND {vocab.tag(1)} k:5",      # conjunction
        f"{vocab.tag(2500)} k:10",                     # long-tail keyword
    ]
    print(f"\n{'query':46s} {'result':>7s} {'source':>12s} {'latency':>10s}")
    for text in searches:
        query = parse_query(text)
        result = system.search(query)
        source = "memory" if result.memory_hit else "memory+disk"
        print(
            f"{text:46s} {len(result.postings):>4d} hit {source:>12s} "
            f"{result.simulated_latency * 1e3:>8.2f}ms"
        )

    print(
        f"\nlatency p50 = {system.latency_percentile(50) * 1e3:.2f}ms, "
        f"p99 = {system.latency_percentile(99) * 1e3:.2f}ms "
        f"(misses pay simulated disk seeks — the paper's SLO argument)"
    )


if __name__ == "__main__":
    main()
