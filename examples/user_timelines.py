#!/usr/bin/env python3
"""User timelines: the Twitter-style per-user top-k query (Section IV-A).

Twitter's timeline retrieval is the paper's canonical single-key query:
"the most recent k=20 microblogs posted by user U", served from a hash
index on user id.  User activity is even more skewed than hashtags —
a few accounts post constantly — so temporal flushing wastes memory on
deep history of hyperactive users while casual users' short timelines
get evicted wholesale.  This example compares policies on timeline
serving, and also demonstrates the popularity ranking function and
dynamic k (Sections IV-B and IV-C).

Run:  python examples/user_timelines.py
"""

from repro import MicroblogSystem, SystemConfig, UserQuery
from repro.workload import MicroblogStream, StreamConfig

K = 20


def build(policy, ranking="temporal"):
    system = MicroblogSystem(
        SystemConfig(
            policy=policy,
            attribute="user",
            ranking=ranking,
            k=K,
            memory_capacity_bytes=2_500_000,
            flush_fraction=0.10,
        )
    )
    stream = MicroblogStream(
        StreamConfig(seed=8, vocabulary_size=2_000, user_count=20_000,
                     with_locations=False)
    )
    system.ingest_many(stream.take(50_000))
    return system, stream


def main() -> None:
    # --- policy comparison on timeline hits ------------------------------
    # Twenty hyperactive accounts plus two bands of mid-tail users: past
    # FIFO's recency window (~40 k-filled users here) but within reach of
    # kFlushing's breadth (~240).
    probe_users = list(range(0, 20)) + list(range(60, 80)) + list(range(140, 160))
    print(f"{'policy':12s} {'timeline hits':>14s} {'k-filled users':>15s}")
    for policy in ("fifo", "lru", "kflushing"):
        system, _ = build(policy)
        hits = sum(
            system.search(UserQuery(user, k=K)).memory_hit for user in probe_users
        )
        print(f"{policy:12s} {hits:>7d}/{len(probe_users):<5d} "
              f"{system.k_filled_count():>15d}")

    # --- a real timeline, rendered ---------------------------------------
    system, stream = build("kflushing")
    result = system.search(UserQuery(0, k=5))
    print("\nmost recent 5 posts of the most active user:")
    for record in system.fetch_records(result):
        print(f"  t={record.timestamp:9.3f}  {record.text[:50]}")

    # --- popularity ranking (Section IV-B) --------------------------------
    # Under the 'popularity' ranking, a keyword system keeps each entry
    # ordered by recency *boosted* by the poster's follower count, all
    # computable at arrival — kFlushing works unchanged.
    pop_system = MicroblogSystem(
        SystemConfig(
            policy="kflushing",
            ranking="popularity",
            k=K,
            memory_capacity_bytes=2_500_000,
        )
    )
    pop_stream = MicroblogStream(StreamConfig(seed=8, vocabulary_size=2_000,
                                              with_locations=False))
    pop_system.ingest_many(pop_stream.take(40_000))
    from repro import KeywordQuery

    top = pop_system.search(KeywordQuery(pop_stream.vocabulary.tag(0), k=3))
    followers = [r.followers for r in pop_system.fetch_records(top)]
    print(f"\n'Top' ranking head results follower counts: {followers}")

    # --- dynamic k (Section IV-C) ------------------------------------------
    system.set_k(10)
    system.ingest_many(stream.take(10_000))  # next flush cycle applies k=10
    print(f"\nafter set_k(10): k-filled users = {system.k_filled_count()}")


if __name__ == "__main__":
    main()
