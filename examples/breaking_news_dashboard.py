#!/usr/bin/env python3
"""Breaking-news dashboard: policy choice under a live topic burst.

The paper's motivating application is news dissemination: users search
the freshest posts for both *trending* hashtags (easy — every policy
keeps them) and *niche* hashtags (hard — the long tail is the first
thing naive flushing evicts).  This example simulates a newsroom
dashboard that polls a mix of trending and niche tags while a burst of
traffic forces continuous flushing, and compares how much of the
dashboard each policy can serve from memory.

Run:  python examples/breaking_news_dashboard.py
"""

from repro import KeywordQuery, MicroblogSystem, OrQuery, SystemConfig
from repro.workload import MicroblogStream, StreamConfig

POLICIES = ("fifo", "lru", "kflushing")
MEMORY_BYTES = 3_000_000
VOCAB = 8_000


def dashboard_queries(vocabulary):
    """The tag panel a newsroom would pin: head topics plus beat-specific
    long-tail tags (a city district, a minor league, a local outage)."""
    trending = [vocabulary.tag(rank) for rank in (0, 1, 2, 5, 9)]
    # Beat tags sit past what a recency window retains (FIFO k-fills
    # only the first ~100-150 ranks here) but well within reach of a
    # policy that spends memory on breadth instead of depth.
    niche = [vocabulary.tag(rank) for rank in (160, 240, 320, 400, 480)]
    queries = [KeywordQuery(tag, k=20) for tag in trending + niche]
    # An OR panel: "anything on either of these two storm tags".
    queries.append(OrQuery([vocabulary.tag(3), vocabulary.tag(260)], k=20))
    return queries


def main() -> None:
    print(f"{'policy':12s} {'dashboard hits':>14s} {'hit ratio':>10s} "
          f"{'k-filled tags':>14s} {'flushes':>8s}")
    for policy in POLICIES:
        system = MicroblogSystem(
            SystemConfig(
                policy=policy,
                k=20,
                memory_capacity_bytes=MEMORY_BYTES,
                flush_fraction=0.10,
            )
        )
        stream = MicroblogStream(
            StreamConfig(seed=99, vocabulary_size=VOCAB, with_locations=False)
        )
        # Warm into steady state, then poll the dashboard between bursts.
        system.ingest_many(stream.take(60_000))
        queries = dashboard_queries(stream.vocabulary)
        hits = 0
        polls = 0
        for _burst in range(10):
            system.ingest_many(stream.take(2_000))
            for query in queries:
                result = system.search(query)
                polls += 1
                hits += result.memory_hit
        print(
            f"{policy:12s} {hits:7d}/{polls:<6d} {hits / polls:>9.0%} "
            f"{system.k_filled_count():>14d} {len(system.flush_reports()):>8d}"
        )
    print()
    print("kFlushing serves the niche half of the dashboard from memory by")
    print("evicting the useless beyond-top-k bulk of the trending tags.")


if __name__ == "__main__":
    main()
