#!/usr/bin/env python3
"""Geo heatmap: spatial top-k search over a grid index (Section IV-A).

Models the paper's rescue-services scenario: microblogs carry point
locations, the store indexes them by equal-area grid tile, and queries
ask "the most recent k posts in this tile" — both over dense city
hotspots and over the sparse countryside where fresh eyewitness posts
matter most.  Renders a small ASCII heatmap of in-memory coverage and
compares kFlushing with FIFO on tile hit rates.

Run:  python examples/geo_heatmap.py
"""

from repro import MicroblogSystem, SpatialQuery, SystemConfig
from repro.model.attributes import SpatialGridAttribute
from repro.workload import MicroblogStream, StreamConfig

TILE_SIDE = 0.1  # degrees; fine enough that mid-density suburbs get own tiles
K = 10


def build(policy):
    system = MicroblogSystem(
        SystemConfig(
            policy=policy,
            attribute="spatial",
            k=K,
            memory_capacity_bytes=2_500_000,
            flush_fraction=0.10,
            tile_side_degrees=TILE_SIDE,
        )
    )
    stream = MicroblogStream(StreamConfig(seed=4, vocabulary_size=2_000))
    system.ingest_many(stream.take(50_000))
    return system


def ascii_heatmap(system, grid):
    """Coverage map over the continental-US bounding box: how many of the
    most recent K posts of each tile are provably in memory."""
    lat_range = range(24, 50, 2)
    lon_range = range(-125, -66, 3)
    lines = []
    for lat in reversed(lat_range):
        row = []
        for lon in lon_range:
            # Best coverage among the tiles inside this 2x3 degree block.
            best = "."
            for dlat in (0.05, 0.45, 0.85, 1.25, 1.65):
                for dlon in (0.05, 0.65, 1.25, 1.85, 2.45):
                    tile = grid.tile_of(lat + dlat, lon + dlon)
                    lookup = system.engine.lookup(tile, depth=K)
                    if lookup.provable_top(K):
                        best = "#"
                        break
                    if lookup.candidates and best == ".":
                        best = "+"
                if best == "#":
                    break
            row.append(best)
        lines.append("".join(row))
    return "\n".join(lines)


def main() -> None:
    grid = SpatialGridAttribute(TILE_SIDE)
    for policy in ("fifo", "kflushing"):
        system = build(policy)
        print(f"=== {policy} ===")
        print(ascii_heatmap(system, grid))
        # Query a mix of hotspot and rural tiles.
        probes = [
            (40.71, -74.00, "New York core"),
            (34.05, -118.24, "Los Angeles core"),
            (41.88, -87.63, "Chicago core"),
            (47.35, -122.65, "Seattle west suburb"),
            (47.95, -122.45, "Everett outskirts"),
            (41.30, -87.30, "Chicago exurb"),
            (44.50, -100.30, "rural South Dakota"),
            (31.00, -92.00, "rural Louisiana"),
        ]
        hits = 0
        for lat, lon, name in probes:
            result = system.search(SpatialQuery(grid.tile_of(lat, lon), k=K))
            hits += result.memory_hit
            print(
                f"  {name:20s} -> {len(result.postings):2d} posts "
                f"({'memory' if result.memory_hit else 'disk visit'})"
            )
        print(f"  k-filled tiles: {system.k_filled_count()}, "
              f"probe hits: {hits}/{len(probes)}")
        print()
    print("legend: '#' full top-k in memory, '+' partial, '.' nothing")


if __name__ == "__main__":
    main()
