#!/usr/bin/env python3
"""Quickstart: build a microblog store, stream data in, search it.

Walks the full public API in a minute of runtime:

1. configure a system with the kFlushing policy and a modest memory
   budget;
2. digest a synthetic Twitter-shaped stream until flushing kicks in;
3. run single-keyword, AND, and OR top-k searches;
4. inspect the hit-ratio / k-filled metrics the ICDE 2016 paper reports.

Run:  python examples/quickstart.py
"""

from repro import (
    AndQuery,
    KeywordQuery,
    MicroblogSystem,
    OrQuery,
    SystemConfig,
)
from repro.workload import MicroblogStream, StreamConfig


def main() -> None:
    # One system = one policy + one attribute + one memory budget.
    # 5 MB of modelled memory is ~25k tweets: small enough that the
    # flushing policy has real work to do within this demo.
    config = SystemConfig(
        policy="kflushing",
        attribute="keyword",
        ranking="temporal",
        k=20,
        memory_capacity_bytes=5_000_000,
        flush_fraction=0.10,
    )
    system = MicroblogSystem(config)

    # A deterministic synthetic stream standing in for the Twitter API:
    # Zipf-skewed hashtags, correlated tag pairs, Zipf user activity.
    stream = MicroblogStream(
        StreamConfig(seed=2016, vocabulary_size=10_000, with_locations=False)
    )

    print("digesting 120,000 microblogs ...")
    system.ingest_many(stream.take(120_000))
    print(
        f"  memory {system.memory_utilization():.0%} full, "
        f"{len(system.flush_reports())} flushes, "
        f"{system.disk.record_count} records archived to disk"
    )

    # --- top-k searches -------------------------------------------------
    hot = stream.vocabulary.tag(0)  # the most popular hashtag
    cold = stream.vocabulary.tag(8_000)  # a long-tail hashtag

    for query in (
        KeywordQuery(hot),
        KeywordQuery(cold),
        AndQuery([hot, stream.vocabulary.tag(1)]),
        OrQuery([hot, cold]),
    ):
        result = system.search(query)
        source = "memory" if result.memory_hit else "memory+disk"
        print(
            f"  {query.mode.value:6s} {str(query.keys):42s} "
            f"-> {len(result.postings):2d} results from {source}"
        )

    # Materialize the actual record bodies of the last result.
    records = system.fetch_records(result)
    if records:
        print(f"  newest match: {records[0]}")

    # --- the paper's metrics --------------------------------------------
    print()
    print(f"memory hit ratio so far : {system.hit_ratio():.0%}")
    print(f"k-filled keywords       : {system.k_filled_count()}")
    print(f"policy overhead (bytes) : {system.policy_overhead_bytes()}")
    summary = system.stats.flush_summary(system.flush_reports())
    print(
        f"flushes                 : {summary['flushes']} "
        f"(mean freed {summary['mean_freed_fraction']:.0%} of budget)"
    )


if __name__ == "__main__":
    main()
