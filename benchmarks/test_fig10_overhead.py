"""Bench: regenerate Figure 10 — flushing overhead vs k.

Panel (a): policy bookkeeping memory.  Paper claims it is stable in k,
LRU is the most expensive (a global per-item list; ~2-2.5x the kFlushing
variants, which pay per-entry timestamps plus a temporary flush buffer),
FIFO the cheapest (segment headers only).

Panel (b): digestion rate under unbounded arrival with wall-clock-paced
queries.  Paper claims FIFO ~120K/s > kFlushing ~100K/s > kFlushing-MK
~80K/s >> LRU ~29K/s.  Single-threaded Python cannot reproduce the lock
*contention* that buries the paper's LRU, so the assertion here is the
part that does transfer: FIFO is fastest and the per-item/per-check
policies (LRU, kFlushing-MK) pay a clear penalty against plain
kFlushing.  See EXPERIMENTS.md for the deviation discussion.
"""

from conftest import series_at

from repro.experiments.figures import fig10_overhead


#: Per-k wall-clock rates at tiny scale still jitter a few percent even
#: after seed averaging; the per-k assertions allow that band while the
#: k-averaged means (far more stable) must hold the strict ordering.
NOISE_TOLERANCE = 0.95


def _mean_series(panel, name):
    return sum(series_at(panel, name, k) for k in panel.xs) / len(panel.xs)


def test_fig10_overhead(benchmark, preset, record_figure):
    # Panel (b) is a wall-clock measurement, so single-seed runs are
    # noisy at tiny scale; averaging the digestion rate over 5 seeds
    # keeps the ordering assertions below stable.
    figure = benchmark.pedantic(
        fig10_overhead,
        args=(preset,),
        kwargs={"digestion_seeds": 5},
        rounds=1,
        iterations=1,
    )
    record_figure(figure)
    by_id = {panel.panel_id: panel for panel in figure.panels}

    overhead = by_id["fig10a"]
    for k in overhead.xs:
        lru = series_at(overhead, "lru", k)
        fifo = series_at(overhead, "fifo", k)
        kf = series_at(overhead, "kflushing", k)
        assert lru > kf > fifo, f"overhead ordering violated at k={k}"

    digestion = by_id["fig10b"]
    for k in digestion.xs:
        fifo = series_at(digestion, "fifo", k)
        kf = series_at(digestion, "kflushing", k)
        mk = series_at(digestion, "kflushing-mk", k)
        lru = series_at(digestion, "lru", k)
        assert fifo > kf * NOISE_TOLERANCE, f"FIFO should digest fastest (k={k})"
        assert kf > mk * NOISE_TOLERANCE, f"MK checks should cost (k={k})"
        assert kf > lru * NOISE_TOLERANCE, f"per-item LRU should trail (k={k})"
    # The k-averaged ordering is the paper's actual claim and must hold
    # strictly.
    fifo = _mean_series(digestion, "fifo")
    kf = _mean_series(digestion, "kflushing")
    mk = _mean_series(digestion, "kflushing-mk")
    lru = _mean_series(digestion, "lru")
    assert fifo > kf > mk, "k-averaged digestion ordering violated"
    assert kf > lru, "k-averaged digestion ordering violated"
