"""Benches for the two extension experiments (beyond the paper's figures).

* **ext1 — skew sensitivity**: kFlushing's advantage over FIFO is a
  function of keyword-frequency skew (the useless beyond-top-k mass
  temporal flushing wastes).  At Zipf exponent 0 the policies converge;
  the margin grows monotonically with skew.  This is the controlled
  version of the paper's implicit premise and explains why raw-Twitter
  margins (>75% useless memory) exceed our synthetic ones.

* **ext2 — AND accounting**: the gap between the paper's operational AND
  hit definition and this repo's provable (strict) criterion, i.e. how
  much of kFlushing-MK's AND win rests on unprovable-but-served answers.
"""

from repro.experiments.extensions import ext_and_semantics, ext_skew_sensitivity


def test_ext1_skew_sensitivity(benchmark, preset, record_figure):
    figure = benchmark.pedantic(
        ext_skew_sensitivity, args=(preset,), rounds=1, iterations=1
    )
    record_figure(figure)
    panel = figure.panels[0]
    gains = panel.series["kflushing-gain-pts"]
    # The hit-ratio margin is a hump: near-flat at zero skew, peaking at
    # moderate skew (where the mid-tail both matters and is salvageable),
    # and narrowing again at extreme skew where a correlated load is
    # served off the head by any policy.  Assert the hump: some non-zero
    # skew point carries a clear margin and no point is strongly negative.
    assert max(gains[1:]) > 1.0
    assert max(gains) >= gains[0]
    assert min(gains) > -1.0
    kf = panel.series["kflushing"]
    assert kf[-1] > kf[0]  # absolute hit ratio grows with skew


def test_ext2_and_semantics(benchmark, preset, record_figure):
    figure = benchmark.pedantic(
        ext_and_semantics, args=(preset,), rounds=1, iterations=1
    )
    record_figure(figure)
    panel = figure.panels[0]
    for policy in ("kflushing", "kflushing-mk"):
        operational, strict = panel.series[policy]
        assert strict <= operational + 1e-9, f"{policy}: strict above operational"
    # MK's raison d'être: a clear operational AND win over plain kFlushing.
    assert panel.series["kflushing-mk"][0] > panel.series["kflushing"][0]
