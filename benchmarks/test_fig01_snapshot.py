"""Bench: regenerate the Section V-A / Figure 1 memory snapshot.

Paper claim: under temporal (FIFO) flushing, most of the memory (>75% on
real tweets at k=20) is consumed by postings beyond their keyword's top-k
— microblogs that can never appear in any top-k answer — while kFlushing
drives the snapshot toward "every keyword holds exactly k".
"""

from repro.experiments.figures import fig1_snapshot


def test_fig1_snapshot(benchmark, preset, record_figure):
    figure = benchmark.pedantic(
        fig1_snapshot, args=(preset,), rounds=1, iterations=1
    )
    record_figure(figure)
    panel = figure.panels[0]
    rows = {row[0]: row for row in panel.rows}
    fifo_useless_pct = rows["fifo"][3]
    kf_useless_pct = rows["kflushing"][3]
    # Shape: FIFO wastes a large share of memory on useless postings;
    # kFlushing reduces it by an order of magnitude and k-fills more keys.
    assert fifo_useless_pct > 25.0
    assert kf_useless_pct < fifo_useless_pct / 3
    assert rows["kflushing"][7] > rows["fifo"][7]
