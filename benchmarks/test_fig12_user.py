"""Bench: regenerate Figure 12 — kFlushing on the user attribute.

Records are indexed by posting user for timeline queries ("most recent k
microblogs by user U").  Paper claims the same improvement pattern as the
keyword and spatial attributes — in fact stronger on the correlated load,
because user activity is even more skewed than keyword frequency (highly
active users produce more useless beyond-top-k microblogs).
"""

from conftest import series_at

from repro.experiments.figures import fig12_user


def test_fig12_user(benchmark, preset, record_figure):
    figure = benchmark.pedantic(
        fig12_user, args=(preset,), rounds=1, iterations=1
    )
    record_figure(figure)
    by_id = {panel.panel_id: panel for panel in figure.panels}

    k_filled = by_id["fig12a"]
    for gb in k_filled.xs:
        assert series_at(k_filled, "kflushing", gb) > series_at(k_filled, "fifo", gb)

    hit = by_id["fig12b"]
    for gb in hit.xs:
        kf = series_at(hit, "kflushing-correlated", gb)
        fifo = series_at(hit, "fifo-correlated", gb)
        assert kf >= fifo, f"kFlushing below FIFO (correlated, {gb}GB)"
