"""Ablation bench: Phase 1 victim discovery — overflow list L vs full
index scan.

Section III-A: "Maintaining L saves significant efforts of iterating over
all keywords when Phase 1 is invoked."  Keyword skew means only a handful
of entries overflow while the index holds (in the paper) millions of
keys.  This ablation builds a skewed index and times finding the
over-full entries via the maintained list against scanning every entry.
"""

import pytest

from repro.storage.inverted_index import HashInvertedIndex
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting

N_KEYS = 100_000
K = 20
#: Zipf-ish: the first few keys overflow, the tail holds 1-3 postings.
N_HOT = 40


@pytest.fixture(scope="module")
def index():
    idx = HashInvertedIndex(MemoryModel(), k=K)
    ts = 0.0
    for key in range(N_HOT):
        for i in range(K + 30):
            ts += 1.0
            idx.insert(f"hot{key}", Posting(ts, ts, int(ts)), now=ts)
    for key in range(N_KEYS - N_HOT):
        ts += 1.0
        idx.insert(f"cold{key}", Posting(ts, ts, int(ts)), now=ts)
    return idx


def _via_overflow_list(index):
    return [index.get(key) for key in index.overflow_keys]


def _via_full_scan(index):
    k = index.k
    return [entry for entry in index.entries() if len(entry) > k]


def test_ablation_overflow_list(benchmark, index):
    entries = benchmark(_via_overflow_list, index)
    assert len(entries) == N_HOT


def test_ablation_full_scan(benchmark, index):
    entries = benchmark(_via_full_scan, index)
    assert len(entries) == N_HOT


def test_both_find_identical_victims(index):
    via_list = {entry.key for entry in _via_overflow_list(index)}
    via_scan = {entry.key for entry in _via_full_scan(index)}
    assert via_list == via_scan
