"""Bench: regenerate Figure 7 — the number of k-filled keywords under
FIFO, kFlushing, kFlushing-MK, and LRU.

Paper claims: (a) k-filled keys decrease with k for every policy, with
the kFlushing variants several times above FIFO (>=7x in the paper) and
LRU (up to 3x); (b) they decrease with the flushing budget; (c) the
kFlushing advantage is largest at tight memory budgets.
"""

from conftest import series_at

from repro.experiments.figures import fig7_k_filled


def test_fig7_k_filled(benchmark, preset, record_figure):
    figure = benchmark.pedantic(
        fig7_k_filled, args=(preset,), rounds=1, iterations=1
    )
    record_figure(figure)
    by_id = {panel.panel_id: panel for panel in figure.panels}

    # (a) vs k: decreasing, kFlushing above both baselines at every k.
    panel_a = by_id["fig7a"]
    for policy in ("fifo", "kflushing", "lru"):
        ys = panel_a.series[policy]
        assert ys[0] > ys[-1], f"{policy} should decrease with k"
    for k in panel_a.xs:
        assert series_at(panel_a, "kflushing", k) > series_at(panel_a, "fifo", k)
        assert series_at(panel_a, "kflushing", k) > series_at(panel_a, "lru", k)

    # At the paper's default k=20 the margin is a multiple, not a sliver.
    assert series_at(panel_a, "kflushing", 20) > 2 * series_at(panel_a, "fifo", 20)

    # (b) vs flushing budget: at 100% everything is flushed -> all equal-ish;
    # at 20% kFlushing dominates.
    panel_b = by_id["fig7b"]
    assert series_at(panel_b, "kflushing", 20) > series_at(panel_b, "fifo", 20)

    # (c) vs memory: kFlushing wins at the tightest budget too.
    panel_c = by_id["fig7c"]
    assert series_at(panel_c, "kflushing", 10.0) > series_at(panel_c, "fifo", 10.0)
    assert series_at(panel_c, "kflushing", 10.0) > series_at(panel_c, "lru", 10.0)
