"""Bench: regenerate Figure 11 — kFlushing on the spatial attribute.

Records are indexed by equal-area grid tile (paper: 4 mi^2 tiles); the
query loads ask "most recent k microblogs posted in tile T".  Paper
claims: kFlushing k-fills 2-5x more tiles than FIFO/LRU across memory
budgets, and beats both on hit ratio for the uniform and correlated
loads, with the biggest margins at tight budgets.  kFlushing-MK is
omitted: spatial AND queries are semantically invalid, so it degenerates
to plain kFlushing (Section V-D).
"""

from conftest import series_at

from repro.experiments.figures import fig11_spatial


def test_fig11_spatial(benchmark, preset, record_figure):
    figure = benchmark.pedantic(
        fig11_spatial, args=(preset,), rounds=1, iterations=1
    )
    record_figure(figure)
    by_id = {panel.panel_id: panel for panel in figure.panels}

    k_filled = by_id["fig11a"]
    for gb in k_filled.xs:
        assert series_at(k_filled, "kflushing", gb) > series_at(k_filled, "fifo", gb)
        assert series_at(k_filled, "kflushing", gb) > series_at(k_filled, "lru", gb)

    hit = by_id["fig11b"]
    for mode in ("correlated", "uniform"):
        for gb in hit.xs:
            kf = series_at(hit, f"kflushing-{mode}", gb)
            fifo = series_at(hit, f"fifo-{mode}", gb)
            assert kf >= fifo, f"kFlushing below FIFO ({mode}, {gb}GB)"
