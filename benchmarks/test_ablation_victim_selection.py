"""Ablation bench: Phase 2/3 victim selection — bounded heap vs sort.

Section III-B motivates the O(n) bounded-heap selection over the
"straightforward" O(n log n) sort when memory holds millions of keyword
entries.  This ablation times both on the same candidate population and
checks they choose equivalent victim sets.
"""

import random

import pytest

from repro.core.victim_selection import select_victims_heap, select_victims_sort

N_CANDIDATES = 200_000
#: Budget covering ~1% of candidates: the regime where the bounded heap
#: stays tiny while the sort still pays for the full population.
BUDGET = 200_000


def _candidates(seed=13):
    rng = random.Random(seed)
    return [
        (float(ts), rng.randint(64, 256), i)
        for i, ts in enumerate(rng.sample(range(10 * N_CANDIDATES), N_CANDIDATES))
    ]


@pytest.fixture(scope="module")
def population():
    return _candidates()


def test_ablation_heap_selection(benchmark, population):
    chosen = benchmark(select_victims_heap, population, BUDGET)
    assert sum(c[1] for c in chosen) >= BUDGET


def test_ablation_sort_selection(benchmark, population):
    chosen = benchmark(select_victims_sort, population, BUDGET)
    assert sum(c[1] for c in chosen) >= BUDGET


def test_ablation_equivalent_victims(population):
    heap_set = {c[2] for c in select_victims_heap(population, BUDGET)}
    sort_set = {c[2] for c in select_victims_sort(population, BUDGET)}
    # The heap may keep a seed member the sort prefix does not need, but
    # the overwhelming majority of victims must coincide.
    overlap = len(heap_set & sort_set) / max(1, len(sort_set))
    assert overlap > 0.95
