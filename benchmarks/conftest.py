"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one paper figure at the fidelity selected by
``REPRO_SCALE`` (tiny/small/full; default tiny so the whole suite runs in
minutes) and writes the resulting tables to ``benchmarks/results/`` in
addition to printing them (visible with ``pytest -s``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.export import export_figure
from repro.experiments.report import format_figure
from repro.experiments.scale import preset_from_env

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def preset():
    return preset_from_env(default="tiny")


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_figure(preset, results_dir):
    """Persist a figure's tables and echo them to stdout."""

    def _record(figure):
        text = format_figure(figure)
        path = results_dir / f"{figure.figure_id}_{preset.name}.txt"
        path.write_text(text)
        export_figure(figure, results_dir, tag=preset.name)
        print()
        print(text)
        print(f"[written to {path} + json/csv]")
        return figure

    return _record


def series_at(panel, series_name, x):
    """Read one y-value out of a sweep panel (shape assertions)."""
    return panel.series[series_name][panel.xs.index(x)]
