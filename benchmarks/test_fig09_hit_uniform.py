"""Bench: regenerate Figure 9 — memory hit ratio on the uniform query
load (keys drawn uniformly from the whole key space, the worst-case /
quality-of-service workload).

Paper claims: absolute hit ratios are low for every policy (<9% on their
data) because a uniform load is dominated by rare keys; the kFlushing
variants nevertheless deliver 100-330% *relative* improvement over FIFO
and 26-240% over LRU.
"""

from conftest import series_at

from repro.experiments.figures import fig9_hit_uniform


def test_fig9_hit_uniform(benchmark, preset, record_figure):
    figure = benchmark.pedantic(
        fig9_hit_uniform, args=(preset,), rounds=1, iterations=1
    )
    record_figure(figure)
    by_id = {panel.panel_id: panel for panel in figure.panels}

    panel_a = by_id["fig9a"]
    # Uniform-load hit ratios sit far below the correlated ones for every
    # policy, but kFlushing still gives a large relative gain over FIFO.
    for k in panel_a.xs:
        fifo = series_at(panel_a, "fifo", k)
        kf = series_at(panel_a, "kflushing", k)
        assert kf >= fifo
    k20_fifo = series_at(panel_a, "fifo", 20)
    k20_kf = series_at(panel_a, "kflushing", 20)
    if k20_fifo > 0:
        assert k20_kf / k20_fifo > 1.25, "relative gain should be large"

    # Memory sweep: increasing with memory for kFlushing.
    panel_c = by_id["fig9c"]
    assert panel_c.series["kflushing"][-1] >= panel_c.series["kflushing"][0]
