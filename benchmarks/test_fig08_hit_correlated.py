"""Bench: regenerate Figure 8 — memory hit ratio on the correlated
query load (1/3 single-keyword, 1/3 AND, 1/3 OR queries drawn with
occurrence-proportional probabilities).

Paper claims: kFlushing variants beat FIFO by 12-20 absolute points and
LRU by 2-18; hit ratio decreases with k and flushing budget, increases
with memory budget; kFlushing-MK adds 7-9 points over plain kFlushing
by serving AND queries from memory.
"""

from conftest import series_at

from repro.experiments.figures import fig8_hit_correlated


def test_fig8_hit_correlated(benchmark, preset, record_figure):
    figure = benchmark.pedantic(
        fig8_hit_correlated, args=(preset,), rounds=1, iterations=1
    )
    record_figure(figure)
    by_id = {panel.panel_id: panel for panel in figure.panels}

    panel_a = by_id["fig8a"]
    # kFlushing above FIFO at every k; decreasing trend in k.
    for k in panel_a.xs:
        assert series_at(panel_a, "kflushing", k) > series_at(panel_a, "fifo", k)
    assert panel_a.series["kflushing"][0] > panel_a.series["kflushing"][-1]

    # At the paper's default k=20 the kFlushing variants also beat LRU.
    assert series_at(panel_a, "kflushing", 20) > series_at(panel_a, "lru", 20)

    # Memory sweep: increasing in memory, kFlushing above FIFO throughout.
    panel_c = by_id["fig8c"]
    assert panel_c.series["kflushing"][-1] > panel_c.series["kflushing"][0]
    for gb in panel_c.xs:
        assert series_at(panel_c, "kflushing", gb) > series_at(panel_c, "fifo", gb)
