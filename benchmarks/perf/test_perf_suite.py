"""Perf suite: assertions about the PR's fast paths on tiny workloads.

These run under the benchmarks tree (not tier-1) because they time real
work.  Assertions are deliberately conservative — they check *ordering*
(incremental sampler beats brute force by a wide margin, parallel equals
serial bit-for-bit), never absolute wall-clock, so they hold on slow CI
runners and single-core containers alike.
"""

from __future__ import annotations

from repro.experiments.bench import (
    bench_digestion_and_flush,
    bench_disk_tier,
    bench_kfilled_sampling,
    bench_sweep_wallclock,
    run_bench,
)
from repro.experiments.scale import PRESETS

TINY = PRESETS["tiny"]


def _by_metric(records):
    return {(r.metric, r.policy): r.value for r in records}


def test_kfilled_sampling_speedup_at_least_2x():
    # The incremental counter is O(1) vs an O(entries) rescan with two
    # slice allocations per entry; 2x is a very loose floor (measured
    # speedups are in the thousands).
    records = _by_metric(bench_kfilled_sampling(TINY, seed=42, repeats=50))
    speedup = records[("kfilled_sampling_speedup", "kflushing")]
    assert speedup >= 2.0, f"incremental sampler only {speedup:.1f}x faster"


def test_digestion_suite_covers_all_policies():
    records = _by_metric(bench_digestion_and_flush(TINY, seed=42))
    for policy in ("fifo", "kflushing", "kflushing-mk", "lru"):
        assert records[("digestion_rate", policy)] > 0
        # Every policy flushes at tiny scale, so the flush-cost metric
        # must be present and positive too.
        assert records[("flush_cost_per_freed_mb", policy)] > 0


def test_sweep_parallel_matches_serial():
    # bench_sweep_wallclock asserts internally that the parallel hit
    # ratios equal the serial ones; reaching the speedup record proves
    # the assertion passed.
    records = _by_metric(bench_sweep_wallclock(TINY, seed=42, jobs=2))
    assert ("sweep_serial_wallclock", "all") in records
    assert ("sweep_parallel_speedup_j2", "all") in records


def test_disk_commit_speedup_at_least_5x():
    # PR 4's headline: segmented posting runs append each flush batch
    # O(1) where the flat layout insorted every posting into a growing
    # list (O(n) memmove each).  On the skewed workload the hot key
    # accumulates 60K postings, so the gap is wide; 5x is the
    # acceptance-criterion floor (measured ~7x here).
    records = _by_metric(bench_disk_tier(TINY, seed=42))
    speedup = records[("disk_commit_speedup", "runs-vs-flat")]
    assert speedup >= 5.0, f"segmented commit only {speedup:.1f}x faster"


def test_disk_unbounded_lookup_view_beats_copy():
    # The unbounded lookup used to eagerly build a full reversed copy of
    # the posting list; the merged view is O(runs) to construct.  The
    # bench also asserts internally that both layouts agree on every
    # lookup answer.
    records = _by_metric(bench_disk_tier(TINY, seed=42, batches=60))
    speedup = records[("disk_lookup_unbounded_speedup", "view-vs-copy")]
    assert speedup >= 2.0, f"merged view only {speedup:.1f}x faster"
    for layout in ("segmented-runs", "flat-insort"):
        assert records[("disk_commit_postings_per_s", layout)] > 0
        assert records[("disk_lookup_top20_us", layout)] > 0


def test_run_bench_writes_schema(tmp_path):
    out = tmp_path / "bench.json"
    records = run_bench(preset="tiny", seed=42, out=out, jobs=1, suites=["kfilled"])
    assert out.exists()
    import json

    payload = json.loads(out.read_text(encoding="utf-8"))
    assert len(payload) == len(records) == 3
    for row in payload:
        assert set(row) == {"metric", "policy", "value", "unit", "seed"}
