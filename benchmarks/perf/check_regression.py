"""Gate a fresh BENCH_*.json against a checked-in baseline.

Usage::

    python benchmarks/perf/check_regression.py BENCH_PR2.json \
        benchmarks/perf/baseline_tiny.json --tolerance 0.30

Only throughput records are compared (wall-clock suites vary too much
across machines to gate on): ``digestion_rate`` plus the disk-tier
commit/lookup throughput metrics.  For every (metric, policy) pair
present in both files, the new rate must be at least ``(1 - tolerance)``
of the baseline rate.  Faster is always fine; pairs missing from either
file are reported but not fatal.  Exits non-zero on any regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GATED_METRICS = (
    "digestion_rate",
    # Disk-tier throughput/speedup gates (PR 4): commit must stay fast
    # under the segmented-runs layout, and its advantage over the flat
    # reference layout must hold.
    "disk_commit_postings_per_s",
    "disk_commit_speedup",
    "disk_lookup_unbounded_speedup",
    # Columnar memory-tier gates (PR 7): absolute digestion rate under
    # the columnar layout, and its advantage over the legacy
    # tuple-per-posting layout on the identical workload.
    "columnar_digestion_rate",
    "columnar_speedup",
    # Adaptive-controller gates (PR 9): the hit-ratio advantage over
    # static kFlushing on the skewed/shifting matrix cells must hold,
    # and the controller's digestion-rate cost must stay near 1.0x.
    # The single-shard deltas are bit-deterministic given the seed; the
    # flash-crowd cell (4 shards) drifts a few hundredths of a point
    # with the interpreter's hash seed (PR 3 scatter-gather tie-breaks),
    # so its baseline is pinned at the observed minimum.
    "adaptive_hit_delta_zipf-hot_tight",
    "adaptive_hit_delta_multi-key_tight",
    "adaptive_hit_delta_flash-crowd_tight",
    "adaptive_hit_delta_multi-key_normal",
    "adaptive_digestion_ratio_zipf-hot_tight",
    "adaptive_digestion_ratio_multi-key_tight",
    # Observability gates (PR 10): absolute digestion rate with the SLO
    # tracker + flight recorder enabled, and the tight ratio proving the
    # tax of flush-boundary ticking stays within 2% of the disabled
    # side (the ratio is measured on one host in one process, so the
    # machine-variance argument for the global tolerance does not
    # apply — both sides see the same noise).
    "obs_overhead_digestion_rate",
    "obs_overhead_digestion_ratio",
)

#: Per-metric tolerance overrides: ratios measured against an in-run
#: control are gated far tighter than cross-machine throughput numbers.
TOLERANCE_OVERRIDES = {
    "obs_overhead_digestion_ratio": 0.02,
}


def _load(path: Path) -> dict[tuple[str, str], float]:
    records = json.loads(path.read_text(encoding="utf-8"))
    return {
        (r["metric"], r["policy"]): r["value"]
        for r in records
        if r["metric"] in GATED_METRICS
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="freshly generated BENCH_*.json")
    parser.add_argument("baseline", type=Path, help="checked-in baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional slowdown vs baseline (default 0.30)",
    )
    args = parser.parse_args(argv)

    current = _load(args.current)
    baseline = _load(args.baseline)
    regressions: list[str] = []
    for key, base_value in sorted(baseline.items()):
        metric, policy = key
        if key not in current:
            print(f"  MISSING {metric} [{policy}] (baseline {base_value:.0f})")
            continue
        new_value = current[key]
        tolerance = TOLERANCE_OVERRIDES.get(metric, args.tolerance)
        floor = base_value * (1.0 - tolerance)
        status = "ok" if new_value >= floor else "REGRESSED"
        print(
            f"  {status:9s} {metric} [{policy}]: "
            f"{new_value:.0f} vs baseline {base_value:.0f} "
            f"(floor {floor:.0f})"
        )
        if new_value < floor:
            regressions.append(f"{metric} [{policy}]")
    for key in sorted(set(current) - set(baseline)):
        print(f"  NEW     {key[0]} [{key[1]}] = {current[key]:.0f} (no baseline)")

    if regressions:
        print(f"FAIL: {len(regressions)} regression(s): {', '.join(regressions)}")
        return 1
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
