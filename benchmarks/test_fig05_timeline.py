"""Bench: regenerate Figure 5, the memory-consumption behaviour of the
kFlushing phases.

Paper claim: flushing with Phase 1 alone saturates — each flush frees
less until the policy is invoked constantly for almost nothing (Fig 5a) —
while the full three-phase policy settles into freeing the configured
budget every cycle (Fig 5b).
"""

from repro.experiments.figures import fig5_timeline


def test_fig5_timeline(benchmark, preset, record_figure):
    figure = benchmark.pedantic(
        fig5_timeline, args=(preset,), rounds=1, iterations=1
    )
    record_figure(figure)
    panel = figure.panels[0]
    phase1 = panel.series["phase1-only"]
    full = panel.series["phases-1+2+3"]
    # Saturation: phase-1-only frees ever less.
    assert phase1[-1] < phase1[0] / 4
    # Steady state: the full policy keeps meeting (approximately) the
    # 10% budget on late flushes.
    assert full[-1] > 8.0
