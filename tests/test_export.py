"""Tests for result export (JSON/CSV) and sparkline rendering."""

import csv
import json

from repro.experiments.export import export_figure, figure_to_dict
from repro.experiments.figures import FigureResult, SweepResult, TableResult
from repro.experiments.report import format_panel, sparkline


def demo_figure():
    return FigureResult(
        figure_id="figX",
        title="demo figure",
        panels=[
            SweepResult(
                panel_id="figXa",
                title="a sweep",
                x_label="k",
                y_label="stuff",
                xs=[1.0, 2.0, 3.0],
                series={"fifo": [10.0, 20.0, 30.0], "lru": [1.0, 2.0, 3.0]},
                expectation="fifo above lru",
            ),
            TableResult(
                panel_id="figXb",
                title="a table",
                headers=["policy", "value"],
                rows=[["fifo", 1], ["lru", 2]],
            ),
        ],
    )


class TestFigureToDict:
    def test_round_trippable_json(self):
        data = figure_to_dict(demo_figure())
        text = json.dumps(data)
        back = json.loads(text)
        assert back["figure_id"] == "figX"
        assert back["panels"][0]["kind"] == "sweep"
        assert back["panels"][1]["kind"] == "table"
        assert back["panels"][0]["series"]["fifo"] == [10.0, 20.0, 30.0]


class TestExportFigure:
    def test_writes_json_and_csvs(self, tmp_path):
        written = export_figure(demo_figure(), tmp_path, tag="tiny")
        names = {p.name for p in written}
        assert names == {"figX_tiny.json", "figXa_tiny.csv", "figXb_tiny.csv"}
        for path in written:
            assert path.exists()

    def test_sweep_csv_contents(self, tmp_path):
        export_figure(demo_figure(), tmp_path)
        with open(tmp_path / "figXa.csv") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["k", "fifo", "lru"]
        assert rows[1] == ["1.0", "10.0", "1.0"]
        assert len(rows) == 4

    def test_table_csv_contents(self, tmp_path):
        export_figure(demo_figure(), tmp_path)
        with open(tmp_path / "figXb.csv") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["policy", "value"]
        assert rows[1] == ["fifo", "1"]

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        export_figure(demo_figure(), target)
        assert (target / "figX.json").exists()


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([7, 7, 7]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_width_cap(self):
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_panel_rendering_includes_sparklines(self):
        text = format_panel(demo_figure().panels[0])
        assert "▁" in text or "█" in text
