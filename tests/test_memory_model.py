"""Unit tests for the byte-cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.memory_model import MemoryModel
from tests.conftest import make_blog


class TestRecordBytes:
    def test_overhead_plus_payload(self):
        model = MemoryModel(record_overhead=100, text_byte_cost=1, keyword_byte_cost=1)
        blog = make_blog(keywords=("ab", "cde"), text="hello")
        assert model.record_bytes(blog) == 100 + 5 + 2 + 3

    def test_empty_record(self):
        model = MemoryModel(record_overhead=96)
        blog = make_blog(keywords=("x",), text="")
        assert model.record_bytes(blog) == 96 + 1

    def test_text_cost_scales(self):
        model = MemoryModel(text_byte_cost=2)
        blog = make_blog(text="abcd", keywords=())
        base = MemoryModel(text_byte_cost=1).record_bytes(blog)
        assert model.record_bytes(blog) == base + 4

    def test_longer_text_costs_more(self):
        model = MemoryModel()
        short = make_blog(text="ab", keywords=("k",))
        long = make_blog(text="ab" * 50, keywords=("k",))
        assert model.record_bytes(long) > model.record_bytes(short)


class TestEntryBytes:
    def test_entry_bytes(self):
        model = MemoryModel(entry_overhead=64, posting_bytes=8)
        assert model.entry_bytes(0) == 64
        assert model.entry_bytes(10) == 64 + 80

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel().entry_bytes(-1)

    def test_postings_bytes(self):
        model = MemoryModel(posting_bytes=8)
        assert model.postings_bytes(5) == 40
        assert model.postings_bytes(0) == 0


class TestValidation:
    def test_negative_field_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(record_overhead=-1)

    def test_zero_cost_records_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(record_overhead=0, text_byte_cost=0)

    def test_frozen(self):
        model = MemoryModel()
        with pytest.raises(AttributeError):
            model.posting_bytes = 1
