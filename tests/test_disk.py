"""Unit tests for the simulated disk archive and its I/O accounting."""

import pytest

from repro.storage.disk import DiskArchive, DiskCostModel
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting
from tests.conftest import make_blog


def posting(i):
    return Posting(float(i), float(i), i)


@pytest.fixture
def model():
    return MemoryModel()


@pytest.fixture
def disk(model):
    return DiskArchive(model)


class TestCommitFlush:
    def test_records_and_postings_persist(self, disk):
        blogs = [make_blog(keywords=("a",)) for _ in range(3)]
        disk.commit_flush(blogs, {"a": [posting(b.blog_id) for b in blogs]})
        assert disk.record_count == 3
        assert disk.posting_count("a") == 3
        assert disk.contains_record(blogs[0].blog_id)

    def test_returns_bytes_written(self, disk, model):
        blog = make_blog(keywords=("a",))
        written = disk.commit_flush([blog], {"a": [posting(blog.blog_id)]})
        assert written == model.record_bytes(blog) + model.postings_bytes(1)

    def test_duplicate_record_commit_idempotent(self, disk):
        blog = make_blog(keywords=("a",))
        disk.commit_flush([blog], {})
        disk.commit_flush([blog], {})
        assert disk.record_count == 1

    def test_postings_kept_sorted(self, disk):
        disk.commit_flush([], {"a": [posting(5), posting(1)]})
        disk.commit_flush([], {"a": [posting(3)]})
        result = disk.lookup("a")
        assert [p.blog_id for p in result] == [5, 3, 1]

    def test_stats_counters(self, disk):
        blog = make_blog(keywords=("a",))
        disk.commit_flush([blog], {"a": [posting(blog.blog_id)]})
        assert disk.stats.flush_batches == 1
        assert disk.stats.records_written == 1
        assert disk.stats.postings_written == 1
        assert disk.stats.bytes_written > 0
        assert disk.stats.simulated_io_seconds > 0


class TestLookup:
    def test_best_first(self, disk):
        disk.commit_flush([], {"a": [posting(i) for i in range(1, 6)]})
        assert [p.blog_id for p in disk.lookup("a")] == [5, 4, 3, 2, 1]

    def test_limit(self, disk):
        disk.commit_flush([], {"a": [posting(i) for i in range(1, 6)]})
        assert [p.blog_id for p in disk.lookup("a", limit=2)] == [5, 4]

    def test_missing_key_empty(self, disk):
        assert disk.lookup("ghost") == []
        assert disk.stats.index_lookups == 1

    def test_lookup_charges_io(self, disk):
        disk.commit_flush([], {"a": [posting(1)]})
        before = disk.stats.simulated_io_seconds
        disk.lookup("a")
        assert disk.stats.simulated_io_seconds > before
        assert disk.stats.bytes_read > 0


class TestFetchRecord:
    def test_fetch_returns_record_and_charges(self, disk):
        blog = make_blog(keywords=("a",))
        disk.commit_flush([blog], {})
        fetched = disk.fetch_record(blog.blog_id)
        assert fetched is blog
        assert disk.stats.record_fetches == 1

    def test_fetch_missing_returns_none(self, disk):
        assert disk.fetch_record(404) is None
        assert disk.stats.record_fetches == 0

    def test_peek_does_not_charge(self, disk):
        blog = make_blog(keywords=("a",))
        disk.commit_flush([blog], {})
        before = disk.stats.bytes_read
        assert disk.peek_record(blog.blog_id) is blog
        assert disk.stats.bytes_read == before


class TestCostModel:
    def test_write_cost_monotone_in_bytes(self):
        cost = DiskCostModel()
        assert cost.write_cost(1_000_000) > cost.write_cost(10)
        assert cost.write_cost(0) == pytest.approx(cost.seek_seconds)

    def test_read_cost_includes_seek(self):
        cost = DiskCostModel(seek_seconds=0.01)
        assert cost.read_cost(0) == pytest.approx(0.01)

    def test_custom_cost_model_applied(self, model):
        slow = DiskArchive(model, DiskCostModel(seek_seconds=1.0))
        fast = DiskArchive(model, DiskCostModel(seek_seconds=1e-6))
        slow.lookup("x")
        fast.lookup("x")
        assert slow.stats.simulated_io_seconds > fast.stats.simulated_io_seconds

    def test_key_count(self, disk):
        disk.commit_flush([], {"a": [posting(1)], "b": [posting(2)]})
        assert disk.key_count == 2
