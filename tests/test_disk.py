"""Unit tests for the simulated disk archive and its I/O accounting."""

import pytest

from repro.storage.disk import DiskArchive, DiskCostModel
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting
from tests.conftest import make_blog


def posting(i):
    return Posting(float(i), float(i), i)


@pytest.fixture
def model():
    return MemoryModel()


@pytest.fixture
def disk(model):
    return DiskArchive(model)


class TestCommitFlush:
    def test_records_and_postings_persist(self, disk):
        blogs = [make_blog(keywords=("a",)) for _ in range(3)]
        disk.commit_flush(blogs, {"a": [posting(b.blog_id) for b in blogs]})
        assert disk.record_count == 3
        assert disk.posting_count("a") == 3
        assert disk.contains_record(blogs[0].blog_id)

    def test_returns_bytes_written(self, disk, model):
        blog = make_blog(keywords=("a",))
        written = disk.commit_flush([blog], {"a": [posting(blog.blog_id)]})
        assert written == model.record_bytes(blog) + model.postings_bytes(1)

    def test_duplicate_record_commit_idempotent(self, disk):
        blog = make_blog(keywords=("a",))
        disk.commit_flush([blog], {})
        disk.commit_flush([blog], {})
        assert disk.record_count == 1

    def test_postings_kept_sorted(self, disk):
        disk.commit_flush([], {"a": [posting(5), posting(1)]})
        disk.commit_flush([], {"a": [posting(3)]})
        result = disk.lookup("a")
        assert [p.blog_id for p in result] == [5, 3, 1]

    def test_stats_counters(self, disk):
        blog = make_blog(keywords=("a",))
        disk.commit_flush([blog], {"a": [posting(blog.blog_id)]})
        assert disk.stats.flush_batches == 1
        assert disk.stats.records_written == 1
        assert disk.stats.postings_written == 1
        assert disk.stats.bytes_written > 0
        assert disk.stats.simulated_io_seconds > 0


class TestLookup:
    def test_best_first(self, disk):
        disk.commit_flush([], {"a": [posting(i) for i in range(1, 6)]})
        assert [p.blog_id for p in disk.lookup("a")] == [5, 4, 3, 2, 1]

    def test_limit(self, disk):
        disk.commit_flush([], {"a": [posting(i) for i in range(1, 6)]})
        assert [p.blog_id for p in disk.lookup("a", limit=2)] == [5, 4]

    def test_missing_key_empty(self, disk):
        assert disk.lookup("ghost") == []
        assert disk.stats.index_lookups == 1

    def test_lookup_charges_io(self, disk):
        disk.commit_flush([], {"a": [posting(1)]})
        before = disk.stats.simulated_io_seconds
        disk.lookup("a")
        assert disk.stats.simulated_io_seconds > before
        assert disk.stats.bytes_read > 0


class TestFetchRecord:
    def test_fetch_returns_record_and_charges(self, disk):
        blog = make_blog(keywords=("a",))
        disk.commit_flush([blog], {})
        fetched = disk.fetch_record(blog.blog_id)
        assert fetched is blog
        assert disk.stats.record_fetches == 1

    def test_fetch_missing_returns_none(self, disk):
        assert disk.fetch_record(404) is None
        assert disk.stats.record_fetches == 0

    def test_peek_does_not_charge(self, disk):
        blog = make_blog(keywords=("a",))
        disk.commit_flush([blog], {})
        before = disk.stats.bytes_read
        assert disk.peek_record(blog.blog_id) is blog
        assert disk.stats.bytes_read == before


class TestPostingIdempotency:
    """commit_flush must be idempotent per (key, blog_id).

    Regression tests: before PR 4 a posting trimmed in one flush and
    re-flushed later (e.g. alongside its record body) was appended to
    the disk index twice, inflating ``posting_count`` and the merge
    inputs of every later lookup.
    """

    def test_reflushed_posting_written_once(self, disk):
        disk.commit_flush([], {"a": [posting(1)]})
        disk.commit_flush([], {"a": [posting(1)]})
        assert disk.posting_count("a") == 1
        assert [p.blog_id for p in disk.lookup("a")] == [1]
        assert disk.stats.postings_written == 1

    def test_reflush_charges_no_posting_bytes(self, disk, model):
        disk.commit_flush([], {"a": [posting(1)]})
        written = disk.commit_flush([], {"a": [posting(1)]})
        assert written == 0

    def test_duplicate_within_one_batch(self, disk):
        disk.commit_flush([], {"a": [posting(1), posting(1), posting(2)]})
        assert disk.posting_count("a") == 2

    def test_flat_layout_also_idempotent(self, model):
        flat = DiskArchive(model, use_runs=False)
        flat.commit_flush([], {"a": [posting(1)]})
        flat.commit_flush([], {"a": [posting(1), posting(2)]})
        assert flat.posting_count("a") == 2
        assert [p.blog_id for p in flat.lookup("a")] == [2, 1]


class TestSegmentedRuns:
    def test_each_batch_is_one_run(self, disk):
        # Overlapping score ranges: neither batch extends the other.
        disk.commit_flush([], {"a": [posting(2), posting(6)]})
        disk.commit_flush([], {"a": [posting(1), posting(4)]})
        assert disk.run_count("a") == 2
        assert [p.blog_id for p in disk.lookup("a")] == [6, 4, 2, 1]

    def test_rank_ordered_batch_extends_newest_run(self, disk):
        disk.commit_flush([], {"a": [posting(1), posting(2)]})
        disk.commit_flush([], {"a": [posting(3), posting(4)]})
        assert disk.run_count("a") == 1
        assert [p.blog_id for p in disk.lookup("a")] == [4, 3, 2, 1]

    def test_unsorted_batch_is_sorted_once(self, disk):
        disk.commit_flush([], {"a": [posting(5), posting(1), posting(3)]})
        assert disk.run_count("a") == 1
        assert [p.blog_id for p in disk.lookup("a")] == [5, 3, 1]

    def test_compaction_bounds_run_count(self, model):
        disk = DiskArchive(model, max_runs_per_key=4)
        # Descending batches: every batch opens a new run.
        for i in range(20, 0, -1):
            disk.commit_flush([], {"a": [posting(i)]})
        assert disk.run_count("a") <= 4
        assert disk.stats.compactions > 0
        assert [p.blog_id for p in disk.lookup("a")] == list(range(20, 0, -1))

    def test_bounded_lookup_walks_run_tails(self, disk):
        disk.commit_flush([], {"a": [posting(2), posting(8)]})
        disk.commit_flush([], {"a": [posting(5), posting(9)]})
        assert [p.blog_id for p in disk.lookup("a", limit=3)] == [9, 8, 5]

    def test_unbounded_lookup_is_lazy_view(self, disk):
        from repro.storage.topk import MergedRunsView

        disk.commit_flush([], {"a": [posting(1), posting(2)]})
        view = disk.lookup("a")
        assert isinstance(view, MergedRunsView)
        assert len(view) == 2
        assert view == [posting(2), posting(1)]

    def test_flat_and_runs_layouts_agree(self, model):
        runs = DiskArchive(model, use_runs=True)
        flat = DiskArchive(model, use_runs=False)
        batches = [
            {"a": [posting(3), posting(7)], "b": [posting(2)]},
            {"a": [posting(1), posting(5)]},
            {"a": [posting(9)], "b": [posting(4)]},
        ]
        for batch in batches:
            runs.commit_flush([], batch)
            flat.commit_flush([], batch)
        for key in ("a", "b", "ghost"):
            assert list(runs.lookup(key)) == list(flat.lookup(key))
            assert list(runs.lookup(key, limit=2)) == list(flat.lookup(key, limit=2))
        assert runs.stats.simulated_io_seconds == pytest.approx(
            flat.stats.simulated_io_seconds
        )


class TestReadCache:
    @pytest.fixture
    def cached(self, model):
        return DiskArchive(model, cache_bytes=10_000)

    def test_repeat_lookup_hits(self, cached):
        cached.commit_flush([], {"a": [posting(i) for i in range(1, 6)]})
        first = cached.lookup("a", limit=3)
        second = cached.lookup("a", limit=3)
        assert list(first) == list(second)
        assert cached.stats.cache_misses == 1
        assert cached.stats.cache_hits == 1

    def test_hit_skips_the_seek(self, cached, model):
        cost = DiskCostModel()
        cached.commit_flush([], {"a": [posting(i) for i in range(1, 6)]})
        cached.lookup("a", limit=3)
        before = cached.stats.simulated_io_seconds
        cached.lookup("a", limit=3)
        delta = cached.stats.simulated_io_seconds - before
        nbytes = model.postings_bytes(3)
        assert delta == pytest.approx(cost.read_transfer_cost(nbytes))
        assert delta < cost.read_cost(nbytes)

    def test_commit_invalidates_key(self, cached):
        cached.commit_flush([], {"a": [posting(1)]})
        cached.lookup("a", limit=2)
        cached.commit_flush([], {"a": [posting(2)]})
        result = cached.lookup("a", limit=2)
        assert [p.blog_id for p in result] == [2, 1]
        assert cached.stats.cache_misses == 2
        assert cached.stats.cache_hits == 0

    def test_unbounded_lookup_bypasses_cache(self, cached):
        cached.commit_flush([], {"a": [posting(1)]})
        cached.lookup("a")
        cached.lookup("a")
        assert cached.stats.cache_hits == 0
        assert cached.stats.cache_misses == 0

    def test_eviction_under_tiny_budget(self, model):
        # Budget fits roughly one block (entry overhead + a few postings).
        small = DiskArchive(model, cache_bytes=100)
        small.commit_flush(
            [], {key: [posting(i)] for i, key in enumerate(("a", "b", "c"))}
        )
        for key in ("a", "b", "c", "a", "b", "c"):
            small.lookup(key, limit=1)
        assert small.stats.cache_evictions > 0
        assert small.stats.cache_misses > 3  # LRU churn under pressure

    def test_cache_off_by_default(self, disk):
        disk.commit_flush([], {"a": [posting(1)]})
        disk.lookup("a", limit=1)
        disk.lookup("a", limit=1)
        assert disk.cache is None
        assert disk.stats.cache_hits == 0
        assert disk.stats.cache_misses == 0

    def test_counters_reach_registry(self, model):
        cached = DiskArchive(model, cache_bytes=10_000)
        cached.commit_flush([], {"a": [posting(1)]})
        cached.lookup("a", limit=1)
        cached.lookup("a", limit=1)
        counters = cached.obs.registry.snapshot()["counters"]
        assert counters["disk.cache.hits"] == 1
        assert counters["disk.cache.misses"] == 1


class TestNegativeLookupElision:
    def test_off_by_default(self, disk):
        assert disk.elides("ghost") is False
        assert disk.stats.lookups_elided == 0

    def test_elides_missing_key(self, model):
        disk = DiskArchive(model, elide_empty=True)
        assert disk.elides("ghost") is True
        assert disk.stats.lookups_elided == 1
        counters = disk.obs.registry.snapshot()["counters"]
        assert counters["disk.lookups_elided"] == 1

    def test_never_elides_indexed_key(self, model):
        disk = DiskArchive(model, elide_empty=True)
        disk.commit_flush([], {"a": [posting(1)]})
        assert disk.elides("a") is False
        assert disk.stats.lookups_elided == 0

    def test_elision_charges_no_io(self, model):
        disk = DiskArchive(model, elide_empty=True)
        assert disk.elides("ghost") is True
        assert disk.stats.index_lookups == 0
        assert disk.stats.simulated_io_seconds == 0.0


class TestCostModel:
    def test_write_cost_monotone_in_bytes(self):
        cost = DiskCostModel()
        assert cost.write_cost(1_000_000) > cost.write_cost(10)
        assert cost.write_cost(0) == pytest.approx(cost.seek_seconds)

    def test_read_cost_includes_seek(self):
        cost = DiskCostModel(seek_seconds=0.01)
        assert cost.read_cost(0) == pytest.approx(0.01)

    def test_custom_cost_model_applied(self, model):
        slow = DiskArchive(model, DiskCostModel(seek_seconds=1.0))
        fast = DiskArchive(model, DiskCostModel(seek_seconds=1e-6))
        slow.lookup("x")
        fast.lookup("x")
        assert slow.stats.simulated_io_seconds > fast.stats.simulated_io_seconds

    def test_key_count(self, disk):
        disk.commit_flush([], {"a": [posting(1)], "b": [posting(2)]})
        assert disk.key_count == 2
