"""Unit tests for the kFlushing engine and its three phases."""

import pytest

from repro.core.kflushing import KFlushingEngine
from repro.storage.disk import DiskArchive
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import MIN_SORT_KEY
from tests.conftest import engine_kwargs, make_blog, make_blogs


@pytest.fixture
def model():
    return MemoryModel()


@pytest.fixture
def disk(model):
    return DiskArchive(model)


def engine(model, disk, **overrides):
    kwargs = engine_kwargs(
        model,
        disk,
        k=overrides.pop("k", 3),
        capacity=overrides.pop("capacity", 100_000),
        flush_fraction=overrides.pop("flush_fraction", 0.2),
    )
    kwargs.update(overrides)
    return KFlushingEngine(mk=False, **kwargs)


class TestInsert:
    def test_indexes_under_every_keyword(self, model, disk):
        eng = engine(model, disk)
        blog = make_blog(keywords=("a", "b"))
        assert eng.insert(blog)
        assert eng.lookup("a").candidates[0].blog_id == blog.blog_id
        assert eng.lookup("b").candidates[0].blog_id == blog.blog_id
        assert eng.raw.pcount(blog.blog_id) == 2

    def test_keywordless_record_skipped(self, model, disk):
        eng = engine(model, disk)
        assert not eng.insert(make_blog(keywords=()))
        assert eng.record_count() == 0

    def test_memory_bytes_grow(self, model, disk):
        eng = engine(model, disk)
        before = eng.memory_bytes
        eng.insert(make_blog())
        assert eng.memory_bytes > before

    def test_needs_flush_at_capacity(self, model, disk):
        eng = engine(model, disk, capacity=500)
        assert not eng.needs_flush()
        while not eng.needs_flush():
            eng.insert(make_blog())
        assert eng.memory_bytes >= 500


class TestPhase1:
    def test_trims_overflow_to_k(self, model, disk):
        eng = engine(model, disk, k=3)
        for blog in make_blogs(10, keywords=("hot",)):
            eng.insert(blog)
        report = eng.run_flush(now=100.0)
        assert len(eng.index.get("hot")) == 3
        assert report.phase_freed.get("phase1-regular", 0) > 0
        eng.check_integrity()

    def test_keeps_most_recent_k(self, model, disk):
        eng = engine(model, disk, k=3)
        blogs = make_blogs(10, keywords=("hot",))
        for blog in blogs:
            eng.insert(blog)
        eng.run_flush(now=100.0)
        kept = [p.blog_id for p in eng.lookup("hot").candidates]
        expected = sorted((b.blog_id for b in blogs), reverse=True)[:3]
        assert kept == expected

    def test_single_keyword_victim_flushed_to_disk(self, model, disk):
        eng = engine(model, disk, k=3)
        blogs = make_blogs(5, keywords=("hot",))
        for blog in blogs:
            eng.insert(blog)
        eng.run_flush(now=100.0)
        oldest = blogs[0]
        assert oldest.blog_id not in eng.raw
        assert disk.contains_record(oldest.blog_id)
        assert disk.posting_count("hot") == 2

    def test_shared_record_stays_while_referenced(self, model, disk):
        eng = engine(model, disk, k=1)
        shared = make_blog(keywords=("hot", "cold"))
        eng.insert(shared)
        for blog in make_blogs(3, keywords=("hot",)):
            eng.insert(blog)
        eng.run_flush(now=100.0)
        # Trimmed from "hot" (beyond top-1) but still top-1 of "cold":
        # the record must remain memory-resident with pcount 1.
        assert shared.blog_id in eng.raw
        assert eng.raw.pcount(shared.blog_id) == 1
        assert not eng.lookup("hot").candidates or (
            shared.blog_id not in [p.blog_id for p in eng.lookup("hot").candidates]
        )
        assert eng.lookup("cold").candidates[0].blog_id == shared.blog_id
        # Its hot posting is findable on disk for exactness.
        assert disk.posting_count("hot") >= 1
        eng.check_integrity()

    def test_overflow_list_wiped_after_flush(self, model, disk):
        eng = engine(model, disk, k=2)
        for blog in make_blogs(6, keywords=("hot",)):
            eng.insert(blog)
        assert "hot" in eng.index.overflow_keys
        eng.run_flush(now=100.0)
        assert eng.index.overflow_keys == frozenset()

    def test_floor_makes_trimmed_range_unprovable(self, model, disk):
        eng = engine(model, disk, k=3)
        for blog in make_blogs(10, keywords=("hot",)):
            eng.insert(blog)
        eng.run_flush(now=100.0)
        lookup = eng.lookup("hot")
        assert lookup.provable_top(3) is not None
        assert lookup.provable_top(4) is None


class TestPhase2:
    def _saturate_phase1(self, eng, n_keys=30):
        """Build memory with no overflow: every key holds < k postings."""
        for i in range(n_keys):
            eng.insert(make_blog(keywords=(f"kw{i}",)))

    def test_flushes_low_frequency_keys_when_phase1_insufficient(self, model, disk):
        eng = engine(model, disk, k=3, capacity=100_000, flush_fraction=0.3)
        self._saturate_phase1(eng, n_keys=40)
        report = eng.run_flush(now=1000.0)
        assert report.met_target
        assert report.phase_freed.get("phase2-aggressive", 0) > 0
        eng.check_integrity()

    def test_least_recently_arrived_flushed_first(self, model, disk):
        eng = engine(model, disk, k=5, capacity=100_000, flush_fraction=0.1)
        keys = [f"kw{i}" for i in range(20)]
        for i, key in enumerate(keys):
            eng.insert(make_blog(keywords=(key,), timestamp=float(i), blog_id=1000 + i))
        eng.run_flush(now=1000.0)
        surviving = {key for key in keys if eng.index.get(key) is not None}
        flushed = [key for key in keys if key not in surviving]
        assert flushed, "phase 2 should have flushed something"
        # Flushed keys must be a prefix of the arrival order (oldest first).
        oldest_surviving = min(keys.index(k) for k in surviving)
        assert all(keys.index(k) < oldest_surviving for k in flushed)

    def test_entries_removed_wholesale(self, model, disk):
        eng = engine(model, disk, k=5, capacity=100_000, flush_fraction=0.2)
        self._saturate_phase1(eng, n_keys=30)
        eng.run_flush(now=1000.0)
        for key, entry in eng.index.items():
            assert len(entry) > 0

    def test_k_filled_keys_not_flushed_by_phase2(self, model, disk):
        eng = engine(model, disk, k=3, capacity=100_000, flush_fraction=0.15)
        for blog in make_blogs(3, keywords=("filled",), start_id=1):
            eng.insert(blog)
        for i in range(30):
            eng.insert(
                make_blog(keywords=(f"kw{i}",), blog_id=100 + i, timestamp=100.0 + i)
            )
        eng.run_flush(now=1000.0)
        # "filled" has exactly k postings: it is in neither phase-1 nor
        # phase-2 victim sets (phase 3 never ran: budget was met).
        assert eng.index.get("filled") is not None
        assert len(eng.index.get("filled")) == 3


class TestPhase3:
    def test_runs_when_all_keys_k_filled(self, model, disk):
        eng = engine(model, disk, k=2, capacity=100_000, flush_fraction=0.3)
        for i in range(25):
            for blog in make_blogs(2, keywords=(f"kw{i}",)):
                eng.insert(blog)
        report = eng.run_flush(now=1000.0)
        assert report.met_target
        assert report.phase_freed.get("phase3-forced", 0) > 0

    def test_least_recently_queried_flushed_first(self, model, disk):
        eng = engine(model, disk, k=2, capacity=100_000, flush_fraction=0.2)
        keys = [f"kw{i}" for i in range(10)]
        for key in keys:
            for blog in make_blogs(2, keywords=(key,)):
                eng.insert(blog)
        # Touch all but the first three keys recently.
        for key in keys[3:]:
            eng.note_query([key], [], now=500.0)
        eng.run_flush(now=1000.0)
        flushed = [key for key in keys if eng.index.get(key) is None]
        assert flushed
        assert set(flushed) <= set(keys[:3])

    def test_global_floor_rises_after_wholesale_flush(self, model, disk):
        eng = engine(model, disk, k=2, capacity=100_000, flush_fraction=0.5)
        for i in range(20):
            for blog in make_blogs(2, keywords=(f"kw{i}",)):
                eng.insert(blog)
        assert eng.global_floor == MIN_SORT_KEY
        eng.run_flush(now=1000.0)
        assert eng.global_floor > MIN_SORT_KEY

    def test_recreated_entry_not_falsely_complete(self, model, disk):
        eng = engine(model, disk, k=3, capacity=100_000, flush_fraction=0.9)
        for blog in make_blogs(3, keywords=("victim",)):
            eng.insert(blog)
        eng.run_flush(now=1000.0)
        assert eng.index.get("victim") is None
        # Re-create the entry; auto timestamps continue increasing, so the
        # new postings arrive after the flush horizon.
        for blog in make_blogs(3, keywords=("victim",)):
            eng.insert(blog)
        lookup = eng.lookup("victim")
        # New postings arrived after the flush: they are provable.
        assert lookup.provable_top(3) is not None


class TestFullEscalation:
    def test_phase_freed_has_all_three_phases(self, model, disk):
        """A flush that escalates to Phase 3 attributes freed bytes to
        every phase: regular, aggressive, and forced."""
        eng = engine(model, disk, k=3, capacity=100_000, flush_fraction=1.0)
        # Overflow entry for Phase 1, under-k entries for Phase 2, and
        # exactly-k entries only Phase 3 will take.
        for blog in make_blogs(6, keywords=("hot",)):
            eng.insert(blog)
        for i in range(5):
            eng.insert(make_blog(keywords=(f"rare{i}",)))
        for i in range(5):
            for blog in make_blogs(3, keywords=(f"mid{i}",)):
                eng.insert(blog)
        report = eng.run_flush(now=1e6)
        assert set(report.phase_freed) == {
            "phase1-regular",
            "phase2-aggressive",
            "phase3-forced",
        }
        assert all(freed > 0 for freed in report.phase_freed.values())
        assert sum(report.phase_freed.values()) == report.freed_bytes
        eng.check_integrity()

    def test_phase_freed_composition_under_mk(self, model, disk):
        eng = KFlushingEngine(
            mk=True, **engine_kwargs(model, disk, k=3, flush_fraction=1.0)
        )
        for blog in make_blogs(6, keywords=("hot",)):
            eng.insert(blog)
        for i in range(5):
            eng.insert(make_blog(keywords=(f"rare{i}",)))
        for i in range(5):
            for blog in make_blogs(3, keywords=(f"mid{i}",)):
                eng.insert(blog)
        report = eng.run_flush(now=1e6)
        assert set(report.phase_freed) == {
            "phase1-regular",
            "phase2-aggressive",
            "phase3-forced",
        }
        assert sum(report.phase_freed.values()) == report.freed_bytes


class TestBudget:
    def test_flush_meets_budget(self, model, disk):
        eng = engine(model, disk, k=3, capacity=50_000, flush_fraction=0.25)
        i = 0
        while not eng.needs_flush():
            eng.insert(make_blog(keywords=(f"kw{i % 50}",)))
            i += 1
        report = eng.run_flush(now=1e6)
        assert report.freed_bytes >= report.target_bytes

    def test_flush_report_recorded(self, model, disk):
        eng = engine(model, disk, k=2)
        for blog in make_blogs(5, keywords=("hot",)):
            eng.insert(blog)
        eng.run_flush(now=10.0)
        assert len(eng.flush_reports) == 1
        assert eng.flush_reports[0].wall_seconds >= 0.0

    def test_max_phase_1_saturates(self, model, disk):
        eng = engine(model, disk, k=3, capacity=100_000, flush_fraction=0.5)
        eng.max_phase = 1
        for i in range(50):
            eng.insert(make_blog(keywords=(f"kw{i}",)))
        report = eng.run_flush(now=1000.0)
        # Nothing exceeds k: phase 1 alone cannot free anything.
        assert report.freed_bytes == 0
        assert not report.met_target

    def test_invalid_max_phase_rejected(self, model, disk):
        with pytest.raises(ValueError):
            KFlushingEngine(mk=False, max_phase=4, **engine_kwargs(model, disk))


class TestDynamicK:
    def test_decreasing_k_trims_next_flush(self, model, disk):
        eng = engine(model, disk, k=5)
        for blog in make_blogs(5, keywords=("hot",)):
            eng.insert(blog)
        eng.set_k(2)
        assert eng.k == 2
        eng.run_flush(now=100.0)
        assert len(eng.index.get("hot")) == 2

    def test_increasing_k_keeps_more(self, model, disk):
        eng = engine(model, disk, k=2)
        for blog in make_blogs(8, keywords=("hot",)):
            eng.insert(blog)
        eng.set_k(4)
        eng.run_flush(now=100.0)
        assert len(eng.index.get("hot")) == 4

    def test_invalid_k_rejected(self, model, disk):
        eng = engine(model, disk)
        with pytest.raises(Exception):
            eng.set_k(0)


class TestBookkeeping:
    def test_note_query_stamps_entries(self, model, disk):
        eng = engine(model, disk)
        eng.insert(make_blog(keywords=("a",)))
        eng.note_query(["a"], [1], now=1e9)
        assert eng.index.get("a").last_query == 1e9

    def test_policy_overhead_scales_with_entries(self, model, disk):
        eng = engine(model, disk)
        base = eng.policy_overhead_bytes
        for i in range(10):
            eng.insert(make_blog(keywords=(f"kw{i}",)))
        assert eng.policy_overhead_bytes >= base + 10 * 2 * model.timestamp_bytes

    def test_get_record(self, model, disk):
        eng = engine(model, disk)
        blog = make_blog()
        eng.insert(blog)
        assert eng.get_record(blog.blog_id) is blog
        assert eng.get_record(424242) is None

    def test_frequency_snapshot(self, model, disk):
        eng = engine(model, disk)
        eng.insert(make_blog(keywords=("a", "b")))
        eng.insert(make_blog(keywords=("a",)))
        assert eng.frequency_snapshot() == {"a": 2, "b": 1}
