"""Tests for the simulated latency model and its percentile histogram."""

import pytest

from repro.engine.latency import LatencyHistogram, QueryCostModel
from repro.engine.queries import KeywordQuery
from tests.conftest import make_blogs, tiny_system


class TestQueryCostModel:
    def test_memory_cost_scales_with_keys(self):
        cost = QueryCostModel(base_seconds=10e-6, per_key_seconds=5e-6)
        assert cost.memory_cost(1) == pytest.approx(15e-6)
        assert cost.memory_cost(3) == pytest.approx(25e-6)


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert len(hist) == 0
        assert hist.percentile(95) == 0.0
        assert hist.mean == 0.0

    def test_single_value_percentiles(self):
        hist = LatencyHistogram()
        hist.record(100e-6)
        p50 = hist.percentile(50)
        assert 100e-6 <= p50 <= 400e-6  # factor-of-two bucket bound

    def test_percentiles_separate_fast_and_slow(self):
        hist = LatencyHistogram()
        for _ in range(95):
            hist.record(50e-6)  # memory hits
        for _ in range(5):
            hist.record(10e-3)  # disk visits
        assert hist.percentile(90) < 1e-3
        assert hist.percentile(99) > 5e-3

    def test_mean_and_max(self):
        hist = LatencyHistogram()
        hist.record(1e-3)
        hist.record(3e-3)
        assert hist.mean == pytest.approx(2e-3)
        assert hist.max == 3e-3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1.0)

    def test_bad_percentile_rejected(self):
        hist = LatencyHistogram()
        hist.record(1e-3)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_monotone_percentiles(self):
        hist = LatencyHistogram()
        for i in range(1, 200):
            hist.record(i * 1e-5)
        assert hist.percentile(50) <= hist.percentile(90) <= hist.percentile(99.9)


class TestSystemLatency:
    def test_memory_hits_are_microseconds(self):
        system = tiny_system()
        for blog in make_blogs(5, keywords=("hot",)):
            system.ingest(blog)
        result = system.search(KeywordQuery("hot", k=3))
        assert result.memory_hit
        assert result.simulated_latency < 1e-3

    def test_misses_pay_disk_io(self):
        system = tiny_system()
        system.ingest(make_blogs(1, keywords=("rare",))[0])
        result = system.search(KeywordQuery("rare", k=3))
        assert not result.memory_hit
        assert result.simulated_latency > 1e-3  # at least one simulated seek

    def test_latency_percentile_reflects_miss_mix(self):
        system = tiny_system()
        for blog in make_blogs(10, keywords=("hot",)):
            system.ingest(blog)
        for _ in range(19):
            system.search(KeywordQuery("hot", k=3))  # hits
        system.search(KeywordQuery("ghost", k=3))  # one miss
        assert system.latency_percentile(50) < 1e-3
        assert system.latency_percentile(99) > 1e-3
