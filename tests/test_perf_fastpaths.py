"""Equivalence tests for the PR's fast paths.

Every optimization here is required to be behaviour-preserving, and these
tests are the proof obligations:

* the incremental k-filled counter must equal a brute-force recount after
  any interleaving of inserts, trims, evictions, and ``set_k``;
* a trial run with the flush-cycle cache disabled must be bit-identical
  to one with it enabled;
* ``BestFirstView`` must behave like the tuple it replaced without
  copying the posting list;
* the process-parallel runner must return exactly what the serial loop
  returned, in the same order.
"""

import random

import pytest

from repro.core.kflushing import KFlushingEngine
from repro.experiments.parallel import resolve_jobs, run_trials
from repro.experiments.runner import TrialSpec, run_digestion_stress, run_trial
from repro.storage.inverted_index import HashInvertedIndex
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import BestFirstView, Posting, PostingList
from tests.test_experiments import MICRO


def posting(i):
    return Posting(float(i), float(i), i)


class TestKFilledIncremental:
    """The incremental counter vs a brute-force recount, adversarially."""

    def test_insert_turns_entries_on(self):
        index = HashInvertedIndex(MemoryModel(), k=3)
        for i in range(1, 4):
            index.insert("a", posting(i), now=float(i))
            assert index.k_filled_count() == index.k_filled_count_bruteforce()
        assert index.k_filled_count() == 1

    def test_keyless_charge_falls_back_to_recount(self):
        index = HashInvertedIndex(MemoryModel(), k=3)
        for i in range(1, 5):
            index.insert("a", posting(i), now=float(i))
        entry = index.get("a")
        entry.remove_id(4)
        index.charge_removed_postings(1)  # legacy keyless call: dirty flag
        assert index.k_filled_count() == index.k_filled_count_bruteforce()
        index.check_integrity()

    def test_random_workload_never_drifts(self):
        rng = random.Random(1234)
        index = HashInvertedIndex(MemoryModel(), k=4)
        keys = [f"kw{i}" for i in range(12)]
        next_id = 1
        for step in range(600):
            op = rng.random()
            key = rng.choice(keys)
            entry = index.get(key)
            if op < 0.55 or entry is None:
                index.insert(key, posting(next_id), now=float(next_id))
                next_id += 1
            elif op < 0.75 and len(entry) > index.k:
                removed = entry.trim_beyond(index.k)
                index.charge_removed_postings(len(removed), key, entry=entry)
            elif op < 0.85 and len(entry) > 0:
                victim = rng.choice([p.blog_id for p in entry])
                entry.remove_id(victim)
                index.charge_removed_postings(1, key, entry=entry)
            elif op < 0.95:
                index.remove_entry(key)
            else:
                index.set_k(rng.choice((2, 3, 4, 6)))
            assert index.k_filled_count() == index.k_filled_count_bruteforce()
        index.check_integrity()

    def test_check_integrity_catches_corruption(self):
        index = HashInvertedIndex(MemoryModel(), k=2)
        for i in range(1, 4):
            index.insert("a", posting(i), now=float(i))
        index._k_filled.discard("a")  # simulate a missed refresh
        with pytest.raises(AssertionError):
            index.check_integrity()

    def test_explicit_threshold_bypasses_counter(self):
        index = HashInvertedIndex(MemoryModel(), k=3)
        for i in range(1, 6):
            index.insert("a", posting(i), now=float(i))
        assert index.k_filled_count(5) == index.k_filled_count_bruteforce(5) == 1
        assert index.k_filled_count(6) == 0


class TestBestFirstView:
    def test_matches_reversed_tuple(self):
        entry = PostingList("kw", created_at=0.0)
        for i in (5, 2, 9, 1, 7):
            entry.insert(posting(i))
        view = entry.best_first()
        materialized = tuple(reversed(list(entry)))
        assert isinstance(view, BestFirstView)
        assert len(view) == 5
        assert tuple(view) == materialized
        assert view == materialized
        assert view[0].blog_id == 9
        assert view[-1].blog_id == 1
        assert view[1:3] == materialized[1:3]
        assert list(entry.iter_best_first()) == list(materialized)

    def test_lookup_depth_none_is_zero_copy(self, model_disk_engine):
        """Unbounded lookup must not materialize the posting list."""
        eng = model_disk_engine
        from tests.conftest import make_blogs

        blogs = make_blogs(500, keywords=("hot",))
        for blog in blogs:
            eng.insert(blog)
        result = eng.lookup("hot")
        assert isinstance(result.candidates, BestFirstView)
        assert len(result.candidates) == 500
        best = max(b.blog_id for b in blogs)
        assert result.candidates[0].blog_id == best
        # Slicing (how the executor consumes candidates) yields tuples.
        head = result.candidates[:3]
        assert isinstance(head, tuple)
        assert [p.blog_id for p in head] == sorted(
            (b.blog_id for b in blogs), reverse=True
        )[:3]
        # Bounded lookups still return plain tuples.
        bounded = eng.lookup("hot", depth=3)
        assert isinstance(bounded.candidates, tuple)
        assert tuple(head) == bounded.candidates


@pytest.fixture
def model_disk_engine():
    from repro.storage.disk import DiskArchive
    from tests.conftest import engine_kwargs

    model = MemoryModel()
    kwargs = engine_kwargs(
        model, DiskArchive(model), k=3, capacity=100_000_000, flush_fraction=0.2
    )
    return KFlushingEngine(mk=False, **kwargs)


class TestFlushCacheDifferential:
    """Cached flushes must be indistinguishable from brute-force ones."""

    @pytest.mark.parametrize("policy", ["kflushing", "kflushing-mk"])
    def test_trial_identical_with_cache_off(self, policy, monkeypatch):
        spec = TrialSpec(policy=policy, scale=MICRO, seed=3)
        cached = run_trial(spec)
        monkeypatch.setattr(KFlushingEngine, "use_flush_cache", False)
        brute = run_trial(spec)
        assert cached.hit_ratio == brute.hit_ratio
        assert cached.k_filled == brute.k_filled
        assert cached.flush_count == brute.flush_count
        assert cached.hit_ratio_by_mode == brute.hit_ratio_by_mode
        assert cached.records_ingested == brute.records_ingested
        assert cached.memory_utilization == brute.memory_utilization
        assert cached.mean_flush_freed_fraction == brute.mean_flush_freed_fraction

    def test_cache_scoped_to_flush(self):
        spec = TrialSpec(policy="kflushing", scale=MICRO, seed=3)
        system = spec.build_system()
        stream = spec.build_stream()
        system.ingest_many(stream.take(2000))
        assert system.engine.flush_cache is None  # only live inside flush()


class TestParallelRunner:
    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-1) >= 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(2) == 2

    def test_parallel_equals_serial(self):
        specs = [
            TrialSpec(policy=policy, scale=MICRO, seed=3, k=k)
            for policy in ("fifo", "kflushing")
            for k in (3, 10)
        ]
        serial = run_trials(specs, jobs=1)
        parallel = run_trials(specs, jobs=2)
        assert [r.spec for r in parallel] == specs  # ordered merge
        for s, p in zip(serial, parallel):
            assert s.hit_ratio == p.hit_ratio
            assert s.k_filled == p.k_filled
            assert s.flush_count == p.flush_count
            assert s.records_ingested == p.records_ingested

    def test_parallel_stress_runner(self):
        # run_digestion_stress paces queries off *wall-clock* time, so its
        # query-side numbers are not bit-deterministic even serially; the
        # parallel contract for it is ordered merge plus a deterministic
        # ingest path.
        specs = [
            TrialSpec(policy="fifo", scale=MICRO, seed=3),
            TrialSpec(policy="kflushing", scale=MICRO, seed=3),
        ]
        serial = run_trials(specs, jobs=1, runner=run_digestion_stress)
        parallel = run_trials(specs, jobs=2, runner=run_digestion_stress)
        assert [r.spec for r in parallel] == specs
        assert [r.records_ingested for r in serial] == [
            r.records_ingested for r in parallel
        ]
        for result in parallel:
            assert result.effective_digestion_rate > 0
            assert "queries_issued" in result.extras


class TestCollectResult:
    def test_stress_reports_freed_fraction(self):
        """The old path hard-coded mean_flush_freed_fraction=0.0."""
        result = run_digestion_stress(
            TrialSpec(policy="fifo", scale=MICRO, seed=3),
            query_rate_per_wall_second=1000.0,
        )
        assert result.flush_count > 0
        assert result.mean_flush_freed_fraction > 0.0
        assert result.extras["queries_issued"] >= 0.0

    def test_trial_and_stress_share_schema(self):
        trial = run_trial(TrialSpec(policy="fifo", scale=MICRO, seed=3))
        stress = run_digestion_stress(
            TrialSpec(policy="fifo", scale=MICRO, seed=3),
            query_rate_per_wall_second=1000.0,
        )
        assert set(vars(trial)) == set(vars(stress))
