"""Unit tests for the MicroblogSystem facade."""

import pytest

from repro.config import SystemConfig
from repro.engine.queries import KeywordQuery, UserQuery
from repro.engine.system import MicroblogSystem
from repro.errors import CapacityError, ConfigurationError
from tests.conftest import make_blog, make_blogs, tiny_system


class TestIngest:
    def test_ingest_advances_clock(self):
        system = tiny_system()
        system.ingest(make_blog(timestamp=5.0))
        assert system.now == 5.0

    def test_skipped_records_counted(self):
        system = tiny_system()
        assert not system.ingest(make_blog(keywords=()))
        assert system.stats.ingest.skipped == 1
        assert system.stats.ingest.indexed == 0

    def test_ingest_many_returns_indexed_count(self):
        system = tiny_system()
        blogs = make_blogs(3) + [make_blog(keywords=())]
        assert system.ingest_many(blogs) == 3

    def test_flush_triggered_at_capacity(self):
        system = tiny_system(memory_capacity_bytes=5_000)
        for blog in make_blogs(60):
            system.ingest(blog)
        assert len(system.flush_reports()) >= 1
        assert system.memory_utilization() < 1.0

    def test_timeline_sampled_around_flushes(self):
        system = tiny_system(memory_capacity_bytes=5_000)
        for blog in make_blogs(60):
            system.ingest(blog)
        kinds = [p.kind for p in system.stats.timeline]
        assert "before" in kinds and "after" in kinds

    def test_timeline_before_after_pairs_bracket_each_flush(self):
        system = tiny_system(memory_capacity_bytes=5_000)
        for blog in make_blogs(120):
            system.ingest(blog)
        flush_samples = [
            p for p in system.stats.timeline if p.kind in ("before", "after")
        ]
        # Every flush contributes exactly one before/after pair, in order.
        assert len(flush_samples) == 2 * len(system.flush_reports())
        for before, after in zip(flush_samples[::2], flush_samples[1::2]):
            assert (before.kind, after.kind) == ("before", "after")
            assert before.time == after.time
            assert after.bytes_used < before.bytes_used
        # The "before" samples sit at (or above) the trigger threshold.
        capacity = system.config.memory_capacity_bytes
        assert all(p.bytes_used >= capacity for p in flush_samples[::2])

    def test_oversized_records_survive_via_immediate_flush(self):
        # A record larger than the whole budget triggers a flush right
        # after its insert; the policy evicts it and the system keeps
        # running instead of raising CapacityError.
        system = tiny_system(memory_capacity_bytes=300)
        for blog in make_blogs(5, text="x" * 400):
            system.ingest(blog)
        assert len(system.flush_reports()) == 5
        assert system.disk.record_count >= 4


class TestSearch:
    def test_search_updates_stats(self):
        system = tiny_system()
        for blog in make_blogs(5, keywords=("hot",)):
            system.ingest(blog)
        result = system.search(KeywordQuery("hot", k=3))
        assert result.memory_hit
        assert system.stats.queries.queries == 1
        assert system.hit_ratio() == 1.0

    def test_search_miss_counts(self):
        system = tiny_system()
        system.search(KeywordQuery("ghost", k=3))
        assert system.hit_ratio() == 0.0
        assert system.stats.queries.disk_reads == 1

    def test_search_uses_system_clock_by_default(self):
        system = tiny_system()
        system.ingest(make_blog(timestamp=9.0))
        result = system.search(KeywordQuery("alpha", k=1))
        assert result.executed_at == 9.0

    def test_fetch_records(self):
        system = tiny_system()
        blogs = make_blogs(3, keywords=("hot",))
        for blog in blogs:
            system.ingest(blog)
        result = system.search(KeywordQuery("hot", k=3))
        records = system.fetch_records(result)
        assert {r.blog_id for r in records} == set(result.blog_ids)


class TestConfigurationPlumbing:
    def test_policy_selection(self):
        for policy in ("fifo", "kflushing", "kflushing-mk", "lru"):
            system = tiny_system(policy=policy)
            assert system.engine.name == policy

    def test_user_attribute_system(self):
        system = tiny_system(attribute="user")
        for blog in make_blogs(4, user_id=9):
            system.ingest(blog)
        result = system.search(UserQuery(9, k=3))
        assert result.memory_hit

    def test_popularity_ranking_orders_results(self):
        system = tiny_system(ranking="popularity", k=2)
        star = make_blog(keywords=("k",), followers=1 << 30)
        for blog in make_blogs(3, keywords=("k",)):
            system.ingest(blog)
        system.ingest(star)
        # Give the star an old timestamp? It is newest here; just check
        # it ranks first.
        result = system.search(KeywordQuery("k", k=2))
        assert result.blog_ids[0] == star.blog_id

    def test_set_k(self):
        system = tiny_system(k=5)
        system.set_k(2)
        assert system.engine.k == 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(policy="bogus")
        with pytest.raises(ConfigurationError):
            SystemConfig(k=0)
        with pytest.raises(ConfigurationError):
            SystemConfig(flush_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SystemConfig(and_scan_depth=3, k=10)

    def test_with_overrides(self):
        config = SystemConfig(k=20)
        other = config.with_overrides(k=5, policy="fifo")
        assert other.k == 5
        assert other.policy == "fifo"
        assert config.k == 20


class TestMetrics:
    def test_digestion_rates_positive_after_ingest(self):
        system = tiny_system()
        for blog in make_blogs(50):
            system.ingest(blog)
        assert system.digestion_rate() > 0
        assert system.effective_digestion_rate() > 0

    def test_k_filled_count(self):
        system = tiny_system(k=3)
        for blog in make_blogs(4, keywords=("hot",)):
            system.ingest(blog)
        system.ingest(make_blog(keywords=("cold",)))
        assert system.k_filled_count() == 1

    def test_integrity_after_mixed_workload(self):
        system = tiny_system(memory_capacity_bytes=8_000)
        for i, blog in enumerate(make_blogs(200, keywords=("a", "b"))):
            system.ingest(blog)
            if i % 10 == 0:
                system.search(KeywordQuery("a", k=3))
        system.check_integrity()
