"""Tests for the query-string parser."""

import pytest

from repro.engine.parser import parse_query
from repro.engine.queries import CombineMode
from repro.errors import QueryError


class TestSingle:
    def test_bare_keyword(self):
        q = parse_query("Obama")
        assert q.keys == ("obama",)
        assert q.mode is CombineMode.SINGLE
        assert q.k == 20

    def test_k_override(self):
        assert parse_query("obama k:5").k == 5

    def test_k_anywhere(self):
        q = parse_query("k:7 obama")
        assert q.k == 7
        assert q.keys == ("obama",)

    def test_default_k_parameter(self):
        assert parse_query("obama", default_k=3).k == 3

    def test_user_query(self):
        q = parse_query("user:42")
        assert q.keys == (42,)
        assert q.mode is CombineMode.SINGLE

    def test_tile_query(self):
        q = parse_query("tile:12,-34 k:9")
        assert q.keys == ((12, -34),)
        assert q.k == 9


class TestMultiKeyword:
    def test_implicit_and(self):
        q = parse_query("obama nba")
        assert q.mode is CombineMode.AND
        assert q.keys == ("obama", "nba")

    def test_explicit_and(self):
        q = parse_query("obama AND nba")
        assert q.mode is CombineMode.AND
        assert q.keys == ("obama", "nba")

    def test_or(self):
        q = parse_query("obama OR nba OR finals")
        assert q.mode is CombineMode.OR
        assert q.keys == ("obama", "nba", "finals")

    def test_lowercase_operators(self):
        assert parse_query("a or b").mode is CombineMode.OR
        assert parse_query("a and b").mode is CombineMode.AND

    def test_operator_then_single_keyword_degenerates(self):
        # "AND nba" leaves a single keyword -> single-key query.
        q = parse_query("AND nba")
        assert q.mode is CombineMode.SINGLE


class TestErrors:
    def test_empty_string(self):
        with pytest.raises(QueryError):
            parse_query("")

    def test_only_k(self):
        with pytest.raises(QueryError):
            parse_query("k:10")

    def test_mixed_operators(self):
        with pytest.raises(QueryError, match="mix"):
            parse_query("a AND b OR c")

    def test_zero_k(self):
        with pytest.raises(QueryError):
            parse_query("obama k:0")

    def test_user_mixed_with_keywords(self):
        with pytest.raises(QueryError):
            parse_query("user:3 obama")
