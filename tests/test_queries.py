"""Unit tests for query types and validation."""

import pytest

from repro.engine.queries import (
    AndQuery,
    CombineMode,
    KeywordQuery,
    OrQuery,
    SpatialQuery,
    TopKQuery,
    UserQuery,
)
from repro.errors import QueryError


class TestKeywordQuery:
    def test_normalises_keyword(self):
        q = KeywordQuery("#Obama", k=5)
        assert q.keys == ("obama",)
        assert q.k == 5
        assert q.mode is CombineMode.SINGLE

    def test_default_k_is_20(self):
        assert KeywordQuery("x").k == 20

    def test_empty_keyword_rejected(self):
        with pytest.raises(QueryError):
            KeywordQuery("#")


class TestMultiKeywordQueries:
    def test_and_query(self):
        q = AndQuery(["NBA", "#Finals"], k=10)
        assert q.keys == ("nba", "finals")
        assert q.mode is CombineMode.AND

    def test_or_query(self):
        q = OrQuery(["a", "b", "c"])
        assert q.mode is CombineMode.OR
        assert len(q.keys) == 3

    def test_needs_two_keys(self):
        with pytest.raises(QueryError):
            AndQuery(["only"])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(QueryError):
            OrQuery(["same", "#Same"])

    def test_empty_keyword_in_list_rejected(self):
        with pytest.raises(QueryError):
            AndQuery(["ok", "  "])


class TestOtherAttributes:
    def test_user_query(self):
        q = UserQuery(42, k=7)
        assert q.keys == (42,)
        assert q.mode is CombineMode.SINGLE

    def test_spatial_query(self):
        q = SpatialQuery((3, -4))
        assert q.keys == ((3, -4),)


class TestTopKQueryValidation:
    def test_non_positive_k_rejected(self):
        with pytest.raises(QueryError):
            TopKQuery(keys=("a",), k=0)

    def test_no_keys_rejected(self):
        with pytest.raises(QueryError):
            TopKQuery(keys=(), k=5)

    def test_single_mode_with_many_keys_rejected(self):
        with pytest.raises(QueryError):
            TopKQuery(keys=("a", "b"), k=5, mode=CombineMode.SINGLE)

    def test_and_mode_with_one_key_rejected(self):
        with pytest.raises(QueryError):
            TopKQuery(keys=("a",), k=5, mode=CombineMode.AND)

    def test_frozen(self):
        q = KeywordQuery("a")
        with pytest.raises(AttributeError):
            q.k = 5
