"""Unit tests for Phase 2/3 victim selection (heap and sort variants)."""

import pytest

from repro.core.phases import entry_flush_cost
from repro.core.victim_selection import select_victims_heap, select_victims_sort


def cands(*triples):
    return [(float(ts), cost, name) for ts, cost, name in triples]


class TestEntryFlushCost:
    def test_fractional_record_share_rounds_up(self):
        """Regression: Phases 2/3 used int(), truncating the fractional
        mean-record-share and under-estimating every victim's cost."""
        assert entry_flush_cost(3, 16, 10.5) == 16 + 32  # not 16 + 31
        assert entry_flush_cost(2, 0, 10.6) == 22  # not 21

    def test_integral_share_unchanged(self):
        assert entry_flush_cost(4, 8, 12.0) == 8 + 48

    def test_ceil_estimates_select_minimal_victim_set(self):
        """With ceil'd costs the heap stops as soon as the budget is
        covered; the truncated estimates needed one victim more."""
        per_posting = 10.6
        candidates = cands(
            *[(i, entry_flush_cost(2, 0, per_posting), f"k{i}") for i in range(4)]
        )
        victims = select_victims_heap(candidates, 44)
        # 2 victims at ceil(21.2)=22 bytes cover 44; the pre-fix estimate
        # of int(21.2)=21 would have needed a third.
        assert len(victims) == 2
        assert sum(c[1] for c in victims) >= 44


class TestHeapSelection:
    def test_covers_budget_with_oldest(self):
        chosen = select_victims_heap(
            cands((1, 10, "a"), (5, 10, "b"), (3, 10, "c"), (9, 10, "d")), 20
        )
        names = {c[2] for c in chosen}
        assert names == {"a", "c"}

    def test_budget_zero_selects_nothing(self):
        assert select_victims_heap(cands((1, 10, "a")), 0) == []

    def test_insufficient_candidates_returns_all(self):
        chosen = select_victims_heap(cands((1, 10, "a"), (2, 10, "b")), 100)
        assert {c[2] for c in chosen} == {"a", "b"}

    def test_total_meets_budget_when_coverable(self):
        candidates = cands(*[(i, 7, f"k{i}") for i in range(50)])
        chosen = select_victims_heap(candidates, 100)
        assert sum(c[1] for c in chosen) >= 100

    def test_keeps_extra_member_when_needed_for_coverage(self):
        # An old large candidate cannot be dropped if removing it breaks
        # the budget; the paper's rule inserts without removing then.
        chosen = select_victims_heap(cands((10, 100, "big"), (1, 5, "small")), 100)
        names = {c[2] for c in chosen}
        assert "big" in names

    def test_replacement_prefers_older(self):
        # Seed covers budget with a recent key; an older one must displace it.
        chosen = select_victims_heap(
            cands((100, 50, "recent"), (1, 50, "old")), 50
        )
        assert {c[2] for c in chosen} == {"old"}

    def test_non_positive_cost_rejected(self):
        with pytest.raises(ValueError):
            select_victims_heap(cands((1, 0, "a")), 10)

    def test_duplicate_timestamps_no_payload_comparison(self):
        # Payloads are dicts (unorderable): the tie-break must not compare
        # them.
        candidates = [(1.0, 10, {"k": i}) for i in range(5)]
        chosen = select_victims_heap(candidates, 30)
        assert sum(c[1] for c in chosen) >= 30

    def test_empty_candidates(self):
        assert select_victims_heap([], 10) == []


class TestSortSelection:
    def test_prefix_of_sorted_order(self):
        chosen = select_victims_sort(
            cands((5, 10, "b"), (1, 10, "a"), (9, 10, "d"), (3, 10, "c")), 25
        )
        assert [c[2] for c in chosen] == ["a", "c", "b"]

    def test_budget_zero(self):
        assert select_victims_sort(cands((1, 5, "a")), 0) == []

    def test_non_positive_cost_rejected(self):
        with pytest.raises(ValueError):
            select_victims_sort(cands((1, -3, "a")), 10)


class TestEquivalence:
    @pytest.mark.parametrize("budget", [1, 17, 40, 95, 1000])
    def test_heap_matches_sort_for_distinct_timestamps(self, budget):
        import random

        rng = random.Random(7)
        candidates = [
            (float(ts), rng.randint(1, 20), f"k{ts}")
            for ts in rng.sample(range(1000), 60)
        ]
        heap_names = {c[2] for c in select_victims_heap(candidates, budget)}
        sort_names = {c[2] for c in select_victims_sort(candidates, budget)}
        # The heap variant may retain one extra member it could not drop
        # without breaking coverage; the sorted prefix is always a subset.
        assert sort_names <= heap_names or heap_names == sort_names
        total_heap = sum(c[1] for c in select_victims_heap(candidates, budget))
        assert total_heap >= min(budget, sum(c[1] for c in candidates))

    def test_heap_not_wasteful(self):
        # With uniform costs the heap result should be exactly the minimal
        # covering prefix.
        candidates = cands(*[(i, 10, f"k{i}") for i in range(20)])
        chosen = select_victims_heap(candidates, 45)
        assert len(chosen) == 5
        assert {c[2] for c in chosen} == {f"k{i}" for i in range(5)}
