"""PR 6 pipelined-ingest invariants: rotation, backpressure, parity.

Four families of guarantees:

* **Differential** — with ``pipelined_ingest=True, flush_workers=0``
  (inline drain) every ``TrialResult`` field the paper's accounting
  depends on is bit-identical to the synchronous flush path, for every
  policy and through the sharded facade.
* **Answer equality** — while a rotation window is held open (worker
  deliberately wedged), strict-AND queries over active + immutable +
  disk return exactly the answers a synchronous reference system fed
  the identical stream returns; the same holds after the window closes.
* **Backpressure & lifecycle** — a full worker queue blocks ``submit``
  until a slot frees; an overlay that outgrows its budget stalls the
  ingest path (and the stall is accounted); ``close()`` drains in-flight
  work, reconciles the overlay, and joins the worker threads.
* **Satellite bugfixes** — elided disk probes no longer inflate
  ``QueryStats.disk_reads``; sharded flushes emit *paired* system-level
  before/after timeline points; ``FlushReport.wall_seconds`` times only
  the eviction work, not the observability wrappers around it.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.config import SystemConfig
from repro.engine.pipeline import FlushWorkerPool
from repro.engine.queries import KeywordQuery
from repro.engine.sharded import ShardedMicroblogSystem, build_system
from repro.engine.system import MicroblogSystem
from repro.experiments.runner import TrialSpec, run_trial
from repro.experiments.scale import ScalePreset
from repro.obs import Instrumentation
from repro.obs.events import EventSink
from repro.workload.queryload import QueryLoad, QueryLoadConfig
from repro.workload.stream import MicroblogStream, StreamConfig
from tests.conftest import make_blogs, tiny_system

POLICIES = ["fifo", "kflushing", "kflushing-mk", "lru"]

#: TrialResult fields that must be bit-identical across equivalent
#: configurations (same tuple the sharding/disk-tier differentials use).
DETERMINISTIC_FIELDS = (
    "hit_ratio",
    "hit_ratio_by_mode",
    "k_filled",
    "flush_count",
    "records_ingested",
    "queries_run",
    "policy_overhead_bytes",
    "mean_flush_freed_fraction",
    "memory_utilization",
)

MICRO = ScalePreset(
    name="micro",
    bytes_per_gb=8_000,
    vocabulary_size=400,
    user_count=400,
    warm_flushes=2,
    max_warm_records=30_000,
    eval_records=800,
    queries_per_record=1.0,
    and_scan_depth=100,
    and_disk_limit=100,
)


def _wait_queue_empty(pool: FlushWorkerPool, timeout: float = 2.0) -> None:
    """Wait until the wedged worker has picked up the pause gate."""
    deadline = time.perf_counter() + timeout
    while not pool._queue.empty():
        if time.perf_counter() > deadline:  # pragma: no cover - diagnostic
            raise AssertionError("worker never picked up the pause gate")
        time.sleep(0.001)


def _window_open(system) -> bool:
    """True if any engine in the system has a rotation window open."""
    if isinstance(system, ShardedMicroblogSystem):
        return any(
            s.pipeline is not None and s.pipeline.flushing for s in system.shards
        )
    return system._pipeline is not None and system._pipeline.flushing


# ----------------------------------------------------------------------
# Differential: inline pipelined drain vs the synchronous flush path
# ----------------------------------------------------------------------


class TestPipelinedDifferential:
    """flush_workers=0 runs the full rotate/drain/reconcile cycle inside
    the ingest call; the trial must be bit-identical to the synchronous
    path for every policy."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_inline_trial_identical(self, policy):
        sync = run_trial(TrialSpec(policy=policy, scale=MICRO, seed=11))
        piped = run_trial(
            TrialSpec(
                policy=policy,
                scale=MICRO,
                seed=11,
                pipelined_ingest=True,
                flush_workers=0,
            )
        )
        for name in DETERMINISTIC_FIELDS:
            assert getattr(piped, name) == getattr(sync, name), name

    def test_inline_trial_identical_sharded(self):
        sync = run_trial(TrialSpec(policy="kflushing", scale=MICRO, seed=11, shards=2))
        piped = run_trial(
            TrialSpec(
                policy="kflushing",
                scale=MICRO,
                seed=11,
                shards=2,
                pipelined_ingest=True,
                flush_workers=0,
            )
        )
        for name in DETERMINISTIC_FIELDS:
            assert getattr(piped, name) == getattr(sync, name), name

    def test_inline_stall_accounting_matches_sync(self):
        # Inline mode must account exactly one stall per flush, the same
        # cadence the synchronous path records.
        sync = run_trial(TrialSpec(policy="kflushing", scale=MICRO, seed=11))
        piped = run_trial(
            TrialSpec(
                policy="kflushing",
                scale=MICRO,
                seed=11,
                pipelined_ingest=True,
                flush_workers=0,
            )
        )
        assert piped.extras["ingest_stalls"] == sync.extras["ingest_stalls"]
        assert sync.extras["ingest_stalls"] == float(sync.flush_count)


# ----------------------------------------------------------------------
# Answer equality: active + immutable + disk during an open window
# ----------------------------------------------------------------------


def _paired_answers(policy: str, shards: int, seed: int = 23):
    """A synchronous reference and a pipelined system fed in lockstep.

    Strict AND with unbounded scan/disk depth makes every answer
    provably exact, and exact answers over a unique sort key are unique
    — so answer-list equality is a meaningful oracle even while the
    pipelined system holds a rotation window open.
    """
    config = SystemConfig(
        policy=policy,
        memory_capacity_bytes=150_000,
        and_scan_depth=None,
        and_disk_limit=None,
    )
    reference = build_system(config, strict_and=True)
    pipelined = build_system(
        config.with_overrides(
            shards=shards,
            pipelined_ingest=True,
            flush_workers=1,
            flush_queue_limit=8,
        ),
        strict_and=True,
    )
    stream_a = iter(
        MicroblogStream(
            StreamConfig(seed=seed, vocabulary_size=300, with_locations=False)
        )
    )
    stream_b = iter(
        MicroblogStream(
            StreamConfig(seed=seed, vocabulary_size=300, with_locations=False)
        )
    )
    load = QueryLoad(
        QueryLoadConfig(seed=seed + 1, mode="correlated"),
        MicroblogStream(
            StreamConfig(seed=seed, vocabulary_size=300, with_locations=False)
        ),
    )
    return reference, pipelined, stream_a, stream_b, load


def _assert_same_answers(reference, pipelined, load, count: int) -> None:
    for _ in range(count):
        query = load.next_query()
        a = reference.search(query)
        b = pipelined.search(query)
        assert a.provably_exact and b.provably_exact
        assert [
            (p.score, p.timestamp, p.blog_id) for p in a.postings
        ] == [(p.score, p.timestamp, p.blog_id) for p in b.postings], (
            f"answer mismatch on {query!r}"
        )


class TestRotationWindowAnswers:
    """Property: queries during AND after an open rotation window match
    a synchronous reference, for every policy and shard count."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("shards", [1, 4])
    def test_answers_identical(self, policy, shards):
        reference, pipelined, stream_a, stream_b, load = _paired_answers(
            policy, shards
        )
        pool = pipelined._pool
        try:
            for _ in range(4_000):
                reference.ingest(next(stream_a))
                pipelined.ingest(next(stream_b))
            # Wedge the worker so the next rotation stays open, then
            # ingest (lockstep) until a window opens.
            pool.pause()
            _wait_queue_empty(pool)
            for _ in range(1_500):
                reference.ingest(next(stream_a))
                pipelined.ingest(next(stream_b))
                if _window_open(pipelined):
                    break
            assert _window_open(pipelined), "no rotation window opened"
            _assert_same_answers(reference, pipelined, load, 120)
            # Close the window and compare again from a quiesced state.
            pool.resume()
            for _ in range(400):
                reference.ingest(next(stream_a))
                pipelined.ingest(next(stream_b))
            pipelined.quiesce()
            assert not _window_open(pipelined)
            _assert_same_answers(reference, pipelined, load, 120)
            pipelined.check_integrity()
            reference.check_integrity()
        finally:
            pool.resume()
            pipelined.close()


# ----------------------------------------------------------------------
# Backpressure and lifecycle
# ----------------------------------------------------------------------


class TestFlushWorkerPool:
    def test_submit_blocks_at_queue_limit(self):
        obs = Instrumentation()
        pool = FlushWorkerPool(workers=1, queue_limit=1, obs=obs)
        ran = []
        try:
            pool.pause()
            _wait_queue_empty(pool)
            assert pool.submit(lambda: ran.append(1)) == 0.0  # fills the slot
            timer = threading.Timer(0.2, pool.resume)
            timer.start()
            blocked = pool.submit(lambda: ran.append(2))  # queue full: blocks
            assert blocked > 0.0
            assert obs.registry.counter("pipeline.queue_full_waits").value == 1
            pool.drain()
            assert ran == [1, 2]
        finally:
            pool.resume()
            pool.close()

    def test_inline_pool_runs_synchronously(self):
        pool = FlushWorkerPool(workers=0, queue_limit=4)
        ran = []
        assert pool.inline
        assert pool.submit(lambda: ran.append(1)) == 0.0
        assert ran == [1]
        with pytest.raises(RuntimeError):
            pool.pause()

    def test_close_is_idempotent(self):
        pool = FlushWorkerPool(workers=2, queue_limit=4)
        threads = list(pool._threads)
        pool.close()
        pool.close()
        assert all(not t.is_alive() for t in threads)


class TestBackpressure:
    def test_overlay_budget_stalls_ingest(self):
        # Wedge the worker and shrink the overlay budget so continued
        # ingest must hit the overlay-full wait; a timer releases the
        # worker, after which ingest completes and the stall is on the
        # books.
        system = tiny_system(
            pipelined_ingest=True,
            flush_workers=1,
            flush_queue_limit=4,
            memory_capacity_bytes=20_000,
            pipelined_overlay_fraction=0.05,
        )
        pool = system._pool
        try:
            pool.pause()
            _wait_queue_empty(pool)
            timer = threading.Timer(0.25, pool.resume)
            timer.start()
            for blog in make_blogs(400):
                system.ingest(blog)
            registry = system.obs.registry
            assert registry.counter("pipeline.backpressure_waits").value >= 1
            assert system.stats.ingest.stalls >= 1
            assert system.stats.ingest.stall_seconds > 0.0
            assert registry.histogram("ingest.stall_seconds").count >= 1
        finally:
            pool.resume()
            system.close()


class TestShutdown:
    def test_close_drains_open_window(self):
        system = tiny_system(
            pipelined_ingest=True,
            flush_workers=1,
            flush_queue_limit=4,
            memory_capacity_bytes=20_000,
        )
        pool = system._pool
        pipeline = system._pipeline
        threads = list(pool._threads)
        pool.pause()
        _wait_queue_empty(pool)
        for blog in make_blogs(600):
            system.ingest(blog)
            if pipeline.flushing:
                break
        assert pipeline.flushing, "no rotation window opened"
        pool.resume()
        system.close()
        assert not pipeline.flushing  # overlay reconciled
        assert all(not t.is_alive() for t in threads)  # workers joined
        assert len(system.flush_reports()) >= 1
        system.engine.check_integrity()

    def test_quiesce_is_noop_on_sync_system(self):
        system = tiny_system()
        system.quiesce()
        system.close()  # must not raise


# ----------------------------------------------------------------------
# Satellite 1: elided disk probes must not count as disk reads
# ----------------------------------------------------------------------


class TestDiskReadsAccounting:
    def test_elided_miss_counts_zero_disk_reads(self):
        # A miss on a key that is neither in memory nor on disk: with
        # negative-lookup elision on, the executor performs zero disk
        # index lookups, so disk_reads must stay 0.
        system = tiny_system(disk_elide_empty=True)
        for blog in make_blogs(5, keywords=("hot",)):
            system.ingest(blog)
        result = system.search(KeywordQuery("ghost", k=3))
        assert not result.memory_hit
        assert result.disk_lookups == 0
        assert system.stats.queries.queries == 1
        assert system.stats.queries.disk_reads == 0

    def test_paid_miss_still_counts(self):
        # Force everything to disk, then query it: the miss pays a real
        # disk lookup and must still be counted.
        system = tiny_system(disk_elide_empty=True, memory_capacity_bytes=300)
        for blog in make_blogs(5, keywords=("hot",), text="x" * 400):
            system.ingest(blog)
        result = system.search(KeywordQuery("hot", k=3))
        assert not result.memory_hit
        assert result.disk_lookups >= 1
        assert system.stats.queries.disk_reads >= 1


# ----------------------------------------------------------------------
# Satellite 2: sharded flushes emit paired system-level timeline points
# ----------------------------------------------------------------------


class TestShardTimelinePairing:
    def _flushed_sharded(self, shards=2):
        system = build_system(
            SystemConfig(
                policy="kflushing", shards=shards, memory_capacity_bytes=30_000
            )
        )
        stream = MicroblogStream(
            StreamConfig(seed=3, vocabulary_size=100, with_locations=False)
        )
        system.ingest_many(stream.take(3_000))
        assert len(system.flush_reports()) >= 1
        return system

    def test_system_level_points_paired(self):
        system = self._flushed_sharded()
        kinds = [
            p.kind
            for p in system.stats.shard_timeline(None)
            if p.kind in ("before", "after")
        ]
        assert kinds, "no flush samples on the system-level timeline"
        assert len(kinds) % 2 == 0
        assert kinds == ["before", "after"] * (len(kinds) // 2)

    def test_per_shard_points_paired(self):
        system = self._flushed_sharded()
        for shard in system.shards:
            kinds = [
                p.kind
                for p in system.stats.shard_timeline(shard.shard_id)
                if p.kind in ("before", "after")
            ]
            assert kinds == ["before", "after"] * (len(kinds) // 2)


# ----------------------------------------------------------------------
# Satellite 3: flush wall time excludes observability overhead
# ----------------------------------------------------------------------


class _SlowFlushSink(EventSink):
    """Sleeps on the events the flush *wrapper* emits (the outer
    ``flush`` trace/span and the ``flush`` event) — never on the
    per-phase spans inside the timed eviction work."""

    def __init__(self, delay: float) -> None:
        self.delay = delay
        self.slept = 0

    def emit(self, event: dict) -> None:
        type_ = event.get("type")
        if type_ == "flush" or (
            type_ in ("span", "trace") and event.get("name") == "flush"
        ):
            self.slept += 1
            time.sleep(self.delay)


class TestFlushWallTiming:
    def test_wall_seconds_excludes_obs_overhead(self):
        sink = _SlowFlushSink(delay=0.05)
        obs = Instrumentation(sink=sink, tracing=True)
        system = MicroblogSystem(
            SystemConfig(policy="kflushing", memory_capacity_bytes=20_000), obs=obs
        )
        for blog in make_blogs(250):
            system.ingest(blog)
        reports = system.flush_reports()
        assert reports, "no flush happened"
        assert sink.slept >= 3  # the slow wrapper events really fired
        # The eviction work at this scale is ~1ms; had the timer wrapped
        # the trace/span managers (the old bug), every report would
        # carry >= one 50ms sleep.
        for report in reports:
            assert report.wall_seconds < 0.05, report.wall_seconds
