"""Unit tests for ranking functions."""

import pytest

from repro.model.ranking import (
    CallableRanking,
    PopularityRanking,
    TemporalRanking,
    WeightedRanking,
    ranking_from_name,
)
from tests.conftest import make_blog


class TestTemporalRanking:
    def test_score_is_timestamp(self):
        blog = make_blog(timestamp=42.5)
        assert TemporalRanking().score(blog) == 42.5

    def test_newer_scores_higher(self):
        r = TemporalRanking()
        older = make_blog(timestamp=1.0)
        newer = make_blog(timestamp=2.0)
        assert r.score(newer) > r.score(older)

    def test_sort_key_breaks_ties_by_id(self):
        r = TemporalRanking()
        a = make_blog(timestamp=1.0, blog_id=100)
        b = make_blog(timestamp=1.0, blog_id=200)
        assert r.sort_key(b) > r.sort_key(a)


class TestPopularityRanking:
    def test_zero_weight_degenerates_to_temporal(self):
        r = PopularityRanking(popularity_weight=0.0)
        blog = make_blog(timestamp=5.0, followers=1_000_000)
        assert r.score(blog) == 5.0

    def test_followers_boost(self):
        r = PopularityRanking(popularity_weight=60.0)
        nobody = make_blog(timestamp=100.0, followers=0)
        star = make_blog(timestamp=100.0, followers=1_000_000)
        assert r.score(star) > r.score(nobody)
        assert r.score(nobody) == 100.0

    def test_boost_is_logarithmic(self):
        r = PopularityRanking(popularity_weight=1.0)
        t = 0.0
        one = r.score(make_blog(timestamp=t, followers=1))
        three = r.score(make_blog(timestamp=t, followers=3))
        assert three == pytest.approx(one + 1.0)  # log2(4) - log2(2) == 1

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            PopularityRanking(popularity_weight=-1.0)

    def test_popular_old_post_can_outrank_new_post(self):
        r = PopularityRanking(popularity_weight=60.0)
        old_star = make_blog(timestamp=0.0, followers=1 << 20)
        fresh = make_blog(timestamp=30.0, followers=0)
        assert r.score(old_star) > r.score(fresh)


class TestWeightedRanking:
    def test_combination(self):
        r = WeightedRanking([(1.0, TemporalRanking()), (2.0, TemporalRanking())])
        blog = make_blog(timestamp=10.0)
        assert r.score(blog) == pytest.approx(30.0)

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            WeightedRanking([])

    def test_negative_weights_allowed(self):
        r = WeightedRanking([(-1.0, TemporalRanking())])
        assert r.score(make_blog(timestamp=3.0)) == -3.0


class TestCallableRanking:
    def test_wraps_callable(self):
        r = CallableRanking(lambda blog: float(blog.user_id), name="by-user")
        assert r.score(make_blog(user_id=7)) == 7.0
        assert r.name == "by-user"

    def test_coerces_to_float(self):
        r = CallableRanking(lambda blog: blog.user_id)
        assert isinstance(r.score(make_blog(user_id=3)), float)


class TestRankingFromName:
    def test_builtins(self):
        assert isinstance(ranking_from_name("temporal"), TemporalRanking)
        assert isinstance(ranking_from_name("popularity"), PopularityRanking)

    def test_unknown_name_lists_options(self):
        with pytest.raises(ValueError, match="temporal"):
            ranking_from_name("bogus")
