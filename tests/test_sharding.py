"""Sharded-architecture tests: routing, equivalence, and metrics merging.

The correctness anchors of the hash-partitioned system:

* **shards=1 differential** — a trial run through the sharded facade at
  N=1 must be bit-identical (in every deterministic ``TrialResult``
  field) to the plain :class:`MicroblogSystem` path;
* **answer equality** — for any shard count, scatter-gather answers on
  single-, OR-, and AND-mode queries must equal the unsharded system's
  exactly (same postings, same order), under the strict/unbounded
  configuration where every answer is provably exact;
* **metrics shard merge** — ``run_trials`` with ``jobs > 1`` and a
  metrics path must produce the same JSONL event stream a serial run
  writes, with no worker shard files left behind.
"""

import json

import pytest

from repro.config import SystemConfig
from repro.engine.sharded import (
    Shard,
    ShardAttributeView,
    ShardedMicroblogSystem,
    ShardRouter,
    build_system,
    stable_key_hash,
)
from repro.engine.system import MicroblogSystem
from repro.errors import ConfigurationError
from repro.experiments.parallel import run_trials
from repro.experiments.runner import TrialSpec, run_trial
from repro.obs import Instrumentation, JsonlSink, activated
from repro.storage.posting_list import Posting
from repro.storage.topk import merge_run_tails, merge_topk
from repro.workload.queryload import QueryLoad, QueryLoadConfig
from repro.workload.stream import MicroblogStream, StreamConfig
from tests.test_experiments import MICRO

#: Deterministic TrialResult fields (wall-clock rates excluded).
DETERMINISTIC_FIELDS = (
    "hit_ratio",
    "hit_ratio_by_mode",
    "k_filled",
    "flush_count",
    "records_ingested",
    "queries_run",
    "policy_overhead_bytes",
    "mean_flush_freed_fraction",
    "memory_utilization",
)


class TestStableHash:
    def test_deterministic_per_type(self):
        assert stable_key_hash("kw1") == stable_key_hash("kw1")
        assert stable_key_hash(42) == stable_key_hash(42)
        assert stable_key_hash((3, 4)) == stable_key_hash((3, 4))

    def test_not_python_hash(self):
        # The whole point: routing must not depend on the per-process
        # salt of builtin str hashing.
        assert stable_key_hash("kw1") != hash("kw1") or stable_key_hash(
            "kw2"
        ) != hash("kw2")

    def test_distinct_keys_spread(self):
        shards = {stable_key_hash(f"kw{i}") % 4 for i in range(100)}
        assert shards == {0, 1, 2, 3}


class TestShardRouter:
    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(0)

    def test_shard_of_in_range_and_cached(self):
        router = ShardRouter(3)
        for key in ["a", "b", 7, (1, 2)]:
            shard = router.shard_of(key)
            assert 0 <= shard < 3
            assert router.shard_of(key) == shard  # memoised, stable

    def test_shards_for_distinct_sorted(self):
        router = ShardRouter(4)
        keys = [f"kw{i}" for i in range(40)]
        owners = router.shards_for(keys)
        assert list(owners) == sorted(set(owners))
        assert set(owners) == {router.shard_of(k) for k in keys}

    def test_group_by_shard_partitions_in_order(self):
        router = ShardRouter(4)
        keys = [f"kw{i}" for i in range(40)]
        groups = router.group_by_shard(keys)
        regrouped = [k for shard in sorted(groups) for k in groups[shard]]
        assert sorted(regrouped) == sorted(keys)
        for shard, group in groups.items():
            assert all(router.shard_of(k) == shard for k in group)
            # Original key order is preserved within each group.
            assert list(group) == [k for k in keys if router.shard_of(k) == shard]


class TestShardConfig:
    def test_shards_validated(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(shards=0)

    def test_even_split_with_remainder(self):
        config = SystemConfig(shards=4, memory_capacity_bytes=1_000_003)
        budgets = [config.shard_capacity(i) for i in range(4)]
        assert sum(budgets) == 1_000_003
        assert max(budgets) - min(budgets) <= 1
        assert config.total_capacity_bytes == 1_000_003

    def test_explicit_budgets(self):
        config = SystemConfig(
            shards=2, shard_capacity_bytes=(600_000, 400_000)
        )
        assert config.shard_capacity(0) == 600_000
        assert config.shard_capacity(1) == 400_000
        assert config.total_capacity_bytes == 1_000_000

    def test_explicit_budgets_validated(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(shards=2, shard_capacity_bytes=(1_000,))
        with pytest.raises(ConfigurationError):
            SystemConfig(shards=2, shard_capacity_bytes=(1_000, 0))

    def test_shard_capacity_bounds_checked(self):
        config = SystemConfig(shards=2)
        with pytest.raises(ConfigurationError):
            config.shard_capacity(2)


class TestShardAttributeView:
    def test_filters_to_owned_keys(self):
        config = SystemConfig(shards=3)
        base = config.build_attribute()
        router = ShardRouter(3)
        stream = MicroblogStream(StreamConfig(seed=5, vocabulary_size=200))
        views = [ShardAttributeView(base, router, i) for i in range(3)]
        for record in stream.take(50):
            keys = base.keys(record)
            partitioned = [view.keys(record) for view in views]
            assert sorted(k for part in partitioned for k in part) == sorted(keys)
            for shard_id, part in enumerate(partitioned):
                assert all(router.shard_of(k) == shard_id for k in part)


class TestBuildSystem:
    def test_unsharded_by_default(self):
        assert isinstance(build_system(SystemConfig()), MicroblogSystem)

    def test_sharded_when_asked(self):
        system = build_system(SystemConfig(shards=3))
        assert isinstance(system, ShardedMicroblogSystem)
        assert len(system.shards) == 3
        assert all(isinstance(s, Shard) for s in system.shards)

    def test_force_sharded_at_n1(self):
        system = build_system(SystemConfig(), force_sharded=True)
        assert isinstance(system, ShardedMicroblogSystem)
        assert len(system.shards) == 1


class TestShardedDifferential:
    """shards=1 through the sharded facade == the plain system, bit for bit."""

    @pytest.mark.parametrize("policy", ["fifo", "kflushing", "kflushing-mk", "lru"])
    def test_forced_n1_trial_identical(self, policy):
        plain = run_trial(TrialSpec(policy=policy, scale=MICRO, seed=11))
        forced = run_trial(
            TrialSpec(policy=policy, scale=MICRO, seed=11, shards=1, force_sharded=True)
        )
        for name in DETERMINISTIC_FIELDS:
            assert getattr(plain, name) == getattr(forced, name), name


def _ingested_pair(shards: int, policy: str = "kflushing", seed: int = 21):
    """An unsharded and an N-sharded system fed the identical stream.

    Both run strict AND semantics with unbounded scan/disk depth, so
    every answer either system produces is provably exact — and exact
    answers over a unique sort key are unique, which is what makes
    answer-set equality a meaningful oracle.
    """
    config = SystemConfig(
        policy=policy,
        memory_capacity_bytes=250_000,
        and_scan_depth=None,
        and_disk_limit=None,
    )
    unsharded = build_system(config, strict_and=True)
    sharded = build_system(config.with_overrides(shards=shards), strict_and=True)
    assert isinstance(sharded, (ShardedMicroblogSystem, MicroblogSystem))
    for system in (unsharded, sharded):
        stream = MicroblogStream(
            StreamConfig(seed=seed, vocabulary_size=300, with_locations=False)
        )
        system.ingest_many(stream.take(9_000))
    query_stream = MicroblogStream(
        StreamConfig(seed=seed, vocabulary_size=300, with_locations=False)
    )
    load = QueryLoad(
        QueryLoadConfig(seed=seed + 1, mode="correlated"), query_stream
    )
    queries = [load.next_query() for _ in range(400)]
    return unsharded, sharded, queries


class TestScatterGatherEquality:
    """Property: sharded answers == unsharded answers, any mode, any N."""

    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_answers_identical(self, shards):
        unsharded, sharded, queries = _ingested_pair(shards)
        modes_seen = set()
        for query in queries:
            modes_seen.add(query.mode.value)
            a = unsharded.search(query)
            b = sharded.search(query)
            assert a.provably_exact and b.provably_exact
            assert [
                (p.score, p.timestamp, p.blog_id) for p in a.postings
            ] == [(p.score, p.timestamp, p.blog_id) for p in b.postings], (
                f"answer mismatch on {query!r}"
            )
        assert modes_seen == {"single", "and", "or"}

    @pytest.mark.parametrize("shards", [2, 4])
    def test_materialized_records_identical(self, shards):
        unsharded, sharded, queries = _ingested_pair(shards)
        for query in queries[:80]:
            a = unsharded.search(query)
            b = sharded.search(query)
            ids_a = [r.blog_id for r in unsharded.fetch_records(a)]
            ids_b = [r.blog_id for r in sharded.fetch_records(b)]
            assert ids_a == ids_b

    def test_lru_answers_identical(self):
        # LRU exercises the fanned note_query path (touches on every
        # owning shard); answers must still match.
        unsharded, sharded, queries = _ingested_pair(4, policy="lru")
        for query in queries[:150]:
            a = unsharded.search(query)
            b = sharded.search(query)
            assert a.blog_ids == b.blog_ids


class TestShardedSystem:
    def _loaded(self, shards=4, policy="kflushing"):
        system = build_system(SystemConfig(policy=policy, shards=shards,
                                           memory_capacity_bytes=400_000))
        stream = MicroblogStream(
            StreamConfig(seed=9, vocabulary_size=300, with_locations=False)
        )
        system.ingest_many(stream.take(12_000))
        return system

    def test_integrity_and_ownership(self):
        system = self._loaded()
        system.check_integrity()  # per-engine invariants + key ownership
        for shard in system.shards:
            for key in shard.engine.frequency_snapshot():
                assert system.router.shard_of(key) == shard.shard_id

    def test_ownership_violation_detected(self):
        system = self._loaded()
        # Re-map one resident key to a different shard: the ownership
        # invariant must now fail.
        shard = next(s for s in system.shards if s.engine.frequency_snapshot())
        key = next(iter(shard.engine.frequency_snapshot()))
        system.router._cache[key] = (shard.shard_id + 1) % len(system.shards)
        with pytest.raises(AssertionError):
            system.check_integrity()

    def test_per_shard_flushing_and_metrics(self):
        system = self._loaded()
        assert len(system.flush_reports()) > 0
        snap = system.snapshot()
        assert set(snap["shards"]) == {"0", "1", "2", "3"}
        total_flushes = sum(
            info["flush_count"] for info in snap["shards"].values()
        )
        assert total_flushes == len(system.flush_reports())
        assert snap["counters"]["flush.count"] == total_flushes
        flushed_shards = [
            i for i in range(4)
            if snap["counters"].get(f"shard.{i}.flush.count", 0) > 0
        ]
        assert flushed_shards, "no per-shard flush counters recorded"
        skew = snap["shard_skew"]
        assert skew["shards"] == 4
        assert skew["record_skew"] >= 1.0
        assert 0 <= skew["hot_shard"] < 4
        # Gauges land in the registry for the prometheus/json exporters.
        assert "shard.0.memory.bytes_used" in snap["gauges"]

    def test_shard_timeline_samples(self):
        system = self._loaded()
        per_shard = [system.stats.shard_timeline(i) for i in range(4)]
        assert any(points for points in per_shard)
        for shard_id, points in enumerate(per_shard):
            assert all(p.shard == shard_id for p in points)
        # System-level samples carry shard=None.
        assert all(p.shard is None for p in system.stats.shard_timeline(None))

    def test_set_k_propagates(self):
        system = self._loaded()
        system.set_k(7)
        assert all(shard.engine.k == 7 for shard in system.shards)

    def test_frequency_snapshot_merges_disjoint_keys(self):
        system = self._loaded()
        merged = system.frequency_snapshot()
        per_shard_total = sum(
            len(shard.engine.frequency_snapshot()) for shard in system.shards
        )
        assert len(merged) == per_shard_total  # keys are partitioned


class TestMergeTopk:
    """The shared top-k merge (executor, scatter-gather, segments)."""

    def _posting(self, score, blog_id):
        return Posting(score, float(blog_id), blog_id)

    def test_orders_and_truncates(self):
        a = [self._posting(3.0, 1), self._posting(1.0, 2)]
        b = [self._posting(2.0, 3), self._posting(0.5, 4)]
        merged = merge_topk([a, b], k=3)
        assert [p.blog_id for p in merged] == [1, 3, 2]

    def test_first_occurrence_wins_dedup(self):
        a = [self._posting(3.0, 1)]
        b = [self._posting(9.0, 1), self._posting(2.0, 2)]
        merged = merge_topk([a, b], k=None)
        # blog 1 keeps its first-seen posting (score 3.0), so it sorts
        # below nothing else here but is not duplicated.
        assert [p.blog_id for p in merged] == [1, 2]
        assert merged[0].score == 3.0

    def test_unlimited_when_k_none(self):
        groups = [[self._posting(float(i), i)] for i in range(10)]
        assert len(merge_topk(groups, k=None)) == 10

    def test_executor_and_segments_share_impl(self):
        # All merge sites draw from repro.storage.topk: the executor uses
        # the dedupping merge, the segmented index the duplicate-free
        # stream merge (segments are temporally disjoint).
        from repro.engine import executor as executor_mod
        from repro.storage import segmented_index as seg_mod

        assert executor_mod._merge_topk is merge_topk
        assert seg_mod.merge_run_tails is merge_run_tails


class TestParallelMetricsMerge:
    """--jobs now composes with --metrics-out: shards merge into one file."""

    def _specs(self):
        return [
            TrialSpec(policy="fifo", scale=MICRO, seed=s) for s in (1, 2)
        ] + [TrialSpec(policy="kflushing", scale=MICRO, seed=3, shards=2)]

    def test_parallel_matches_serial_events(self, tmp_path):
        specs = self._specs()
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        serial = run_trials(specs, jobs=1, metrics_path=serial_path)
        parallel = run_trials(specs, jobs=2, metrics_path=parallel_path)
        for a, b in zip(serial, parallel):
            for name in DETERMINISTIC_FIELDS:
                assert getattr(a, name) == getattr(b, name)
        serial_events = [json.loads(l) for l in serial_path.read_text().splitlines()]
        parallel_events = [
            json.loads(l) for l in parallel_path.read_text().splitlines()
        ]
        # Trials are merged in spec order, so modulo wall-clock fields the
        # streams should describe the same events; cheap invariants:
        assert len(serial_events) == len(parallel_events)
        snaps = [e for e in parallel_events if e["type"] == "trial_snapshot"]
        assert len(snaps) == len(specs)
        assert not list(tmp_path.glob("parallel.jsonl.w*")), "shards left behind"

    def test_activated_scope_discovery(self, tmp_path):
        specs = self._specs()[:2]
        path = tmp_path / "scope.jsonl"
        obs = Instrumentation(sink=JsonlSink(path))
        with activated(obs):
            run_trials(specs, jobs=2)
        obs.close()
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert sum(1 for e in events if e["type"] == "trial_snapshot") == len(specs)
        assert not list(tmp_path.glob("scope.jsonl.w*"))
