"""Columnar memory tier: interner, column entries, block commits, and
the legacy-vs-columnar differential.

The columnar layout is only allowed to change *speed*, never *answers*:
every test here pins some slice of that contract, from single-entry
operation equivalence (property-based) up to bit-identical steady-state
``TrialResult``s per policy.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.engine.system import MicroblogSystem
from repro.errors import ConfigurationError
from repro.experiments.runner import TrialSpec, run_trial
from repro.obs import Instrumentation
from repro.storage.columnar import (
    COLUMN_BYTES_PER_POSTING,
    ColumnarPostingList,
    PostingBlock,
)
from repro.storage.disk import DiskArchive
from repro.storage.interner import (
    KeyInterner,
    get_global_interner,
    reset_global_interner,
)
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting, PostingList
from repro.storage.raw_store import RawDataStore
from repro.workload.queryload import QueryLoad, QueryLoadConfig
from repro.workload.stream import MicroblogStream, StreamConfig
from tests.test_experiments import MICRO


# ----------------------------------------------------------------------
# KeyInterner
# ----------------------------------------------------------------------


class TestKeyInterner:
    def test_round_trip(self):
        interner = KeyInterner()
        ids = [interner.intern(k) for k in ("alpha", "beta", "alpha", "gamma")]
        assert ids == [0, 1, 0, 2]
        assert [interner.unintern(i) for i in (0, 1, 2)] == [
            "alpha",
            "beta",
            "gamma",
        ]
        assert len(interner) == 3
        assert "beta" in interner and "delta" not in interner

    def test_maybe_never_allocates(self):
        interner = KeyInterner()
        assert interner.maybe("never-seen") is None
        assert len(interner) == 0
        kid = interner.intern("seen")
        assert interner.maybe("seen") == kid

    def test_intern_many_matches_intern(self):
        interner = KeyInterner()
        keys = ["a", "b", "a", "c", "b", "d"]
        batch = interner.intern_many(keys)
        fresh = KeyInterner()
        assert batch == [fresh.intern(k) for k in keys]
        interner.check_integrity()

    def test_keys_iterates_in_id_order(self):
        interner = KeyInterner()
        for key in ("x", "y", "z"):
            interner.intern(key)
        assert list(interner.keys()) == ["x", "y", "z"]

    def test_global_interner_reset(self):
        reset_global_interner()
        first = get_global_interner()
        first.intern("sticky")
        assert get_global_interner() is first
        reset_global_interner()
        assert get_global_interner().maybe("sticky") is None


# ----------------------------------------------------------------------
# ColumnarPostingList vs PostingList: operation-level equivalence
# ----------------------------------------------------------------------


def _pair():
    return (
        PostingList("k", created_at=0.0),
        ColumnarPostingList("k", created_at=0.0),
    )


def _assert_same_state(legacy: PostingList, columnar: ColumnarPostingList):
    assert list(columnar) == list(legacy)
    assert columnar.floor == legacy.floor
    assert len(columnar) == len(legacy)
    columnar.check_columns()


def _assert_same_removed(block: PostingBlock, removed: list):
    assert isinstance(block, PostingBlock)
    assert block.postings() == list(removed)


postings_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
    ),
    min_size=0,
    max_size=50,
).map(lambda pairs: [Posting(s, t, i) for i, (s, t) in enumerate(pairs)])

# One random operation: (op-name, argument).
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.tuples(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
        ),
        st.tuples(st.just("trim"), st.integers(min_value=0, max_value=12)),
        st.tuples(st.just("trim_if"), st.integers(min_value=0, max_value=12)),
        st.tuples(st.just("drain"), st.none()),
        st.tuples(st.just("drain_if"), st.none()),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=60)),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops_strategy)
def test_columnar_equivalent_under_random_interleavings(ops):
    """The tentpole contract: every mutation sequence leaves the two
    layouts with identical postings, floors, and removed batches."""
    legacy, columnar = _pair()
    next_id = 0
    for op, arg in ops:
        if op == "insert":
            score, ts = arg
            posting = Posting(score, ts, next_id)
            next_id += 1
            legacy.insert(posting)
            columnar.insert_scalar(score, ts, posting.blog_id)
        elif op == "trim":
            _assert_same_removed(
                columnar.trim_beyond(arg), legacy.trim_beyond(arg)
            )
        elif op == "trim_if":
            # Spare even ids: exercises the id-predicate MK trim.
            keep = lambda bid: bid % 2 == 0
            _assert_same_removed(
                columnar.trim_if_ids(arg, keep_id=keep),
                legacy.trim_if(arg, keep=lambda p: keep(p.blog_id)),
            )
        elif op == "drain":
            _assert_same_removed(columnar.drain(), legacy.drain())
        elif op == "drain_if":
            keep = lambda bid: bid % 3 == 0
            _assert_same_removed(
                columnar.drain_if_ids(keep_id=keep),
                legacy.drain_if(keep=lambda p: keep(p.blog_id)),
            )
        else:  # remove
            assert columnar.remove_id(arg) == legacy.remove_id(arg)
        _assert_same_state(legacy, columnar)
        assert columnar.last_arrival == legacy.last_arrival


@settings(max_examples=40, deadline=None)
@given(postings_strategy, st.integers(min_value=1, max_value=55))
def test_columnar_query_surface_matches_legacy(postings, k):
    # k >= 1 mirrors the query contract (TopKQuery rejects k <= 0).
    """top / best_first / iteration / k-filled agree posting-for-posting."""
    legacy, columnar = _pair()
    for p in postings:
        legacy.insert(p)
        columnar.insert(p)
    assert columnar.top(k) == legacy.top(k)
    assert list(columnar.iter_best_first()) == list(legacy.iter_best_first())
    assert columnar.is_k_filled(k) == legacy.is_k_filled(k)
    assert columnar.best() == legacy.best()
    assert columnar.worst() == legacy.worst()
    assert columnar.provable_top(k) == legacy.provable_top(k)
    view_c, view_l = columnar.best_first(), legacy.best_first()
    assert len(view_c) == len(view_l)
    assert tuple(view_c) == tuple(view_l)
    n = len(postings)
    # Slice paths (the satellite fix): step-1, stepped, and point access.
    assert view_c[:k] == tuple(view_l[:k])
    assert view_c[1:n:2] == tuple(view_l[1:n:2])
    if n:
        assert view_c[n - 1] == view_l[n - 1]
        assert view_c[-1] == view_l[-1]
        assert columnar.contains_id(postings[0].blog_id)
        assert columnar.contains_in_top(
            postings[0].blog_id, n
        ) == legacy.contains_in_top(postings[0].blog_id, n)
        assert columnar.topk_id_set(k) == legacy.topk_id_set(k)


def test_best_first_view_slice_returns_tuple_without_full_copy():
    columnar = ColumnarPostingList("k", created_at=0.0)
    for i in range(10):
        columnar.insert_scalar(float(i), float(i), i)
    view = columnar.best_first()
    assert view[:3] == (
        Posting(9.0, 9.0, 9),
        Posting(8.0, 8.0, 8),
        Posting(7.0, 7.0, 7),
    )
    assert view[8:20] == (Posting(1.0, 1.0, 1), Posting(0.0, 0.0, 0))
    assert view[3:3] == ()
    with pytest.raises(IndexError):
        view[10]


def test_check_columns_catches_misalignment():
    columnar = ColumnarPostingList("k", created_at=0.0)
    columnar.insert_scalar(1.0, 1.0, 1)
    columnar._ids.append(2)  # force drift
    with pytest.raises(AssertionError):
        columnar.check_columns()


def test_check_columns_catches_sort_violation():
    columnar = ColumnarPostingList("k", created_at=0.0)
    for value in (2.0, 1.0):  # descending: violates storage order
        columnar._scores.append(value)
        columnar._times.append(value)
        columnar._ids.append(int(value))
    with pytest.raises(AssertionError):
        columnar.check_columns()


# ----------------------------------------------------------------------
# Raw store byte-accounting memoization (satellite bugfix)
# ----------------------------------------------------------------------


@pytest.fixture
def stream_records():
    stream = MicroblogStream(
        StreamConfig(seed=11, vocabulary_size=500, with_locations=False)
    )
    return stream.take(64)


def test_raw_store_releases_memoized_cost_not_recomputed(
    stream_records, monkeypatch
):
    model = MemoryModel()
    store = RawDataStore(model)
    record = stream_records[0]
    charged = store.add(record, pcount=2)
    assert charged == model.record_bytes(record)
    assert store.bytes_used == charged
    # A mid-run change in model pricing must not skew release accounting:
    # the store frees exactly what it charged at insert time.
    original = MemoryModel.record_bytes
    monkeypatch.setattr(
        MemoryModel, "record_bytes", lambda self, r: original(self, r) + 1_000
    )
    assert store.decref(record.blog_id) is None
    released = store.decref(record.blog_id)
    assert released is record
    assert store.bytes_used == 0


def test_raw_store_decref_many_matches_serial_decrefs(stream_records):
    model = MemoryModel()
    serial, batched = RawDataStore(model), RawDataStore(model)
    for record in stream_records:
        serial.add(record, pcount=2)
        batched.add(record, pcount=2)
    ids = [r.blog_id for r in stream_records]
    serial_released, serial_freed = [], 0
    for _ in range(2):
        for blog_id in ids:
            record = serial.decref(blog_id)
            if record is not None:
                serial_released.append(record)
                serial_freed += model.record_bytes(record)
    batch_first = batched.decref_many(ids)
    batch_second = batched.decref_many(ids)
    assert batch_first == ([], 0)
    assert batch_second[0] == serial_released
    assert batch_second[1] == serial_freed
    assert batched.bytes_used == serial.bytes_used == 0
    serial.check_integrity()
    batched.check_integrity()


# ----------------------------------------------------------------------
# Disk commits of posting blocks
# ----------------------------------------------------------------------


def _block(rows):
    return PostingBlock(
        array("d", [r[0] for r in rows]),
        array("d", [r[1] for r in rows]),
        array("q", [r[2] for r in rows]),
    )


class TestDiskBlockCommits:
    def _archives(self):
        interner = KeyInterner()
        legacy = DiskArchive(MemoryModel())
        columnar = DiskArchive(MemoryModel(), interner=interner)
        return legacy, columnar, interner

    def test_block_commit_reads_identical_to_list_commit(self):
        legacy, columnar, interner = self._archives()
        kid = interner.intern("tag")
        rows = [(float(i), float(i), i) for i in range(6)]
        legacy.commit_flush([], {"tag": [Posting(*r) for r in rows]})
        columnar.commit_flush([], {kid: _block(rows)}, keys_interned=True)
        assert columnar.lookup("tag", 4) == legacy.lookup("tag", 4)
        assert list(columnar.lookup("tag")) == list(legacy.lookup("tag"))
        assert columnar.posting_count("tag") == legacy.posting_count("tag") == 6

    def test_mixed_block_and_list_batches_stay_identical(self):
        legacy, columnar, interner = self._archives()
        kid = interner.intern("tag")
        first = [(float(i), float(i), i) for i in range(4)]
        second = [(float(i), float(i), i) for i in range(10, 13)]
        third = [(2.5, 2.5, 50)]  # overlaps the first batch's range
        legacy.commit_flush([], {"tag": [Posting(*r) for r in first]})
        legacy.commit_flush([], {"tag": [Posting(*r) for r in second]})
        legacy.commit_flush([], {"tag": [Posting(*r) for r in third]})
        columnar.commit_flush([], {kid: _block(first)}, keys_interned=True)
        columnar.commit_flush([], {kid: _block(second)}, keys_interned=True)
        columnar.commit_flush([], {kid: _block(third)}, keys_interned=True)
        assert columnar.lookup("tag", 8) == legacy.lookup("tag", 8)
        assert list(columnar.lookup("tag")) == list(legacy.lookup("tag"))

    def test_duplicate_ids_in_block_fall_back_and_stay_idempotent(self):
        legacy, columnar, interner = self._archives()
        kid = interner.intern("tag")
        rows = [(1.0, 1.0, 1), (2.0, 2.0, 2)]
        for _ in range(2):
            legacy.commit_flush([], {"tag": [Posting(*r) for r in rows]})
            columnar.commit_flush([], {kid: _block(rows)}, keys_interned=True)
        assert columnar.posting_count("tag") == legacy.posting_count("tag") == 2
        assert columnar.lookup("tag", 5) == legacy.lookup("tag", 5)

    def test_keys_interned_requires_interned_archive(self):
        archive = DiskArchive(MemoryModel())
        with pytest.raises(ValueError):
            archive.commit_flush(
                [], {0: _block([(1.0, 1.0, 1)])}, keys_interned=True
            )

    def test_compaction_over_block_runs_matches_legacy(self):
        legacy, columnar, interner = self._archives()
        kid = interner.intern("tag")
        batches = [
            [(float(i + 10 * b), float(i), 100 * b + i) for i in range(5)]
            for b in range(12)  # > max_runs_per_key: forces compaction
        ]
        random.Random(5).shuffle(batches)
        for rows in batches:
            legacy.commit_flush([], {"tag": [Posting(*r) for r in rows]})
            columnar.commit_flush([], {kid: _block(rows)}, keys_interned=True)
        assert columnar.run_count("tag") == legacy.run_count("tag")
        assert list(columnar.lookup("tag")) == list(legacy.lookup("tag"))


# ----------------------------------------------------------------------
# Engine-level: gauges, integrity, fast paths
# ----------------------------------------------------------------------


def _tiny_config(columnar: bool, **overrides) -> SystemConfig:
    return SystemConfig(
        policy=overrides.pop("policy", "kflushing"),
        k=5,
        memory_capacity_bytes=300_000,
        and_scan_depth=50,
        and_disk_limit=50,
        columnar=columnar,
        **overrides,
    )


def _drive(system, records=4_000, seed=3):
    stream = MicroblogStream(
        StreamConfig(seed=seed, vocabulary_size=800, with_locations=False)
    )
    system.ingest_many(stream.take(records))


def test_columnar_gauges_and_integrity():
    reset_global_interner()
    obs = Instrumentation()
    system = MicroblogSystem(_tiny_config(True), obs=obs)
    _drive(system)
    assert system.engine.flush_reports, "workload too small to flush"
    system.check_integrity()
    gauges = obs.registry.snapshot()["gauges"]
    assert gauges["memory.columnar.interner_keys"] > 0
    assert gauges["memory.columnar.column_bytes"] > 0
    assert gauges["memory.columnar.column_bytes"] % COLUMN_BYTES_PER_POSTING == 0
    system.close()


@pytest.mark.parametrize("columnar", [False, True])
def test_needs_flush_fast_path_agrees_with_property(columnar):
    reset_global_interner()
    system = MicroblogSystem(_tiny_config(columnar))
    engine = system.engine
    stream = MicroblogStream(
        StreamConfig(seed=9, vocabulary_size=500, with_locations=False)
    )
    for record in stream.take(1_500):
        system.ingest(record)
        assert engine.needs_flush() == (
            engine.memory_bytes >= engine.capacity_bytes
        )
    system.close()


def test_columnar_cost_prices_columnar_layout():
    config = _tiny_config(True, columnar_cost=True)
    assert (
        config.effective_memory_model().posting_bytes == COLUMN_BYTES_PER_POSTING
    )
    with pytest.raises(ConfigurationError):
        _tiny_config(False, columnar_cost=True)


# ----------------------------------------------------------------------
# Randomized query-answer equality, columnar vs legacy
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", ["kflushing", "kflushing-mk", "fifo", "lru"])
def test_query_answers_identical_columnar_vs_legacy(policy):
    answers = {}
    for columnar in (False, True):
        reset_global_interner()
        system = MicroblogSystem(_tiny_config(columnar, policy=policy))
        stream = MicroblogStream(
            StreamConfig(seed=21, vocabulary_size=600, with_locations=False)
        )
        load = QueryLoad(QueryLoadConfig(seed=22, mode="correlated"), stream)
        collected = []
        for i, record in enumerate(stream.take(5_000)):
            system.ingest(record)
            if i % 25 == 0:
                result = system.search(load.next_query())
                collected.append(
                    (
                        tuple(p.blog_id for p in result.postings),
                        result.memory_hit,
                        result.provably_exact,
                    )
                )
        system.check_integrity()
        system.close()
        answers[columnar] = collected
    assert answers[True] == answers[False]


# ----------------------------------------------------------------------
# Differential: bit-identical TrialResult per policy
# ----------------------------------------------------------------------

#: Wall-clock-dependent fields excluded from the bit-identical check
#: (they measure *time*, which the layouts legitimately change).
_WALL_CLOCK_FIELDS = ("spec", "insert_rate", "effective_digestion_rate")


def _comparable(result):
    payload = asdict(result)
    for field_name in _WALL_CLOCK_FIELDS:
        payload.pop(field_name, None)
    payload["extras"] = {
        key: value
        for key, value in payload.get("extras", {}).items()
        if "seconds" not in key and "rate" not in key
    }
    return payload


DIFFERENTIAL_SPECS = [
    pytest.param(dict(policy="fifo"), id="fifo"),
    pytest.param(dict(policy="lru"), id="lru"),
    pytest.param(dict(policy="kflushing"), id="kflushing"),
    pytest.param(dict(policy="kflushing-mk"), id="kflushing-mk"),
    pytest.param(dict(policy="kflushing", shards=4), id="kflushing-shards4"),
    pytest.param(
        dict(policy="kflushing", pipelined_ingest=True, flush_workers=0),
        id="kflushing-pipelined",
    ),
]


@pytest.mark.parametrize("overrides", DIFFERENTIAL_SPECS)
def test_trial_results_bit_identical_columnar_vs_legacy(overrides):
    results = {}
    for columnar in (False, True):
        reset_global_interner()
        spec = TrialSpec(scale=MICRO, seed=13, columnar=columnar, **overrides)
        results[columnar] = _comparable(run_trial(spec))
    assert results[True] == results[False]
