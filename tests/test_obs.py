"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    Instrumentation,
    JsonlSink,
    ListSink,
    MetricsRegistry,
    activated,
    get_active,
    to_json,
    to_prometheus_text,
)


class TestPrimitives:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_histogram_tracks_count_sum_extremes(self):
        hist = Histogram()
        for value in (0.001, 0.002, 0.004):
            hist.record(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(0.007)
        assert snap["min"] == pytest.approx(0.001)
        assert snap["max"] == pytest.approx(0.004)

    def test_histogram_accepts_zero(self):
        hist = Histogram()
        hist.record(0.0)
        assert hist.count == 1
        assert hist.snapshot()["min"] == 0.0

    def test_histogram_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram().record(-0.1)

    def test_histogram_percentile_brackets_samples(self):
        hist = Histogram()
        for _ in range(100):
            hist.record(1e-3)
        assert 1e-3 <= hist.percentile(95.0) <= 2e-3

    def test_histogram_percentile_interpolates_within_bucket(self):
        # 100 samples spread evenly through one log2 bucket
        # ((1.024ms, 2.048ms] at the default 1e-6 scale): the
        # interpolated p50 must land near the true median instead of
        # snapping to the bucket's upper edge (the pre-interpolation
        # behaviour returned ~2.0ms here, a 30% overestimate).
        hist = Histogram()
        samples = [1.05e-3 + i * (0.95e-3 / 99) for i in range(100)]
        for value in samples:
            hist.record(value)
        true_median = (samples[49] + samples[50]) / 2
        p50 = hist.percentile(50.0)
        assert p50 == pytest.approx(true_median, rel=0.05)
        assert p50 < max(samples)

    def test_histogram_percentile_clamps_to_observed_extremes(self):
        hist = Histogram()
        for _ in range(10):
            hist.record(1.5e-3)
        # Every percentile of a constant sample set is that constant:
        # interpolation would land elsewhere in the bucket, but the
        # observed min/max clamp pins it.
        for p in (1.0, 50.0, 99.0):
            assert hist.percentile(p) == pytest.approx(1.5e-3)

    def test_percentile_from_buckets_validates_p(self):
        from repro.obs import percentile_from_buckets

        with pytest.raises(ValueError):
            percentile_from_buckets((), 0, 0.0, 1e-6, 0.0, 0.0)
        with pytest.raises(ValueError):
            percentile_from_buckets((), 0, 101.0, 1e-6, 0.0, 0.0)
        assert percentile_from_buckets((), 0, 99.0, 1e-6, 0.0, 0.0) == 0.0

    def test_empty_histogram_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0
        assert snap["p99"] == 0.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert len(registry) == 2
        assert "a" in registry and "missing" not in registry

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("flush.count").inc(3)
        registry.gauge("memory.bytes").set(1024)
        registry.histogram("lat").record(0.5)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"]["flush.count"] == 3
        assert snap["gauges"]["memory.bytes"] == 1024
        assert snap["histograms"]["lat"]["count"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert len(registry) == 0


class TestSpans:
    def test_span_records_histogram_and_event(self):
        sink = ListSink()
        obs = Instrumentation(sink=sink)
        with obs.span("flush"):
            pass
        assert obs.registry.histogram("span.flush.seconds").count == 1
        events = sink.of_type("span")
        assert len(events) == 1
        assert events[0]["name"] == "flush"
        assert events[0]["parent"] is None
        assert events[0]["seconds"] >= 0.0

    def test_nested_spans_carry_parent(self):
        sink = ListSink()
        obs = Instrumentation(sink=sink)
        with obs.span("flush"):
            assert obs.current_span == "flush"
            with obs.span("flush.phase1"):
                assert obs.current_span == "flush.phase1"
        names = {e["name"]: e["parent"] for e in sink.of_type("span")}
        assert names == {"flush": None, "flush.phase1": "flush"}

    def test_span_pops_on_exception(self):
        obs = Instrumentation()
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        assert obs.current_span is None
        assert obs.registry.histogram("span.boom.seconds").count == 1


class TestSinks:
    def test_list_sink_filters_by_type(self):
        sink = ListSink()
        sink.emit({"type": "a"})
        sink.emit({"type": "b"})
        assert len(sink.of_type("a")) == 1

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"type": "flush", "freed": 10})
            sink.emit({"type": "query", "hit": True})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["type"] for line in lines] == ["flush", "query"]

    def test_jsonl_sink_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        JsonlSink(path).close()
        assert not path.exists()


class TestRuntime:
    def test_activated_scopes_the_instrumentation(self):
        obs = Instrumentation()
        assert get_active() is None
        with activated(obs) as active:
            assert active is obs
            assert get_active() is obs
        assert get_active() is None

    def test_activated_restores_on_exception(self):
        obs = Instrumentation()
        with pytest.raises(RuntimeError):
            with activated(obs):
                raise RuntimeError("x")
        assert get_active() is None


class TestExporters:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("flush.count").inc(2)
        registry.gauge("memory.bytes_used").set(512)
        registry.histogram("span.flush.seconds").record(0.25)
        return registry

    def test_to_json(self):
        data = json.loads(to_json(self._registry()))
        assert data["counters"]["flush.count"] == 2

    def test_prometheus_text_shape(self):
        text = to_prometheus_text(self._registry())
        assert "repro_flush_count_total 2" in text
        assert "repro_memory_bytes_used 512" in text
        assert "repro_span_flush_seconds_count 1" in text
        assert 'quantile="0.95"' in text
