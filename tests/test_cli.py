"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.figure == "all"
        assert args.scale == "small"
        assert args.seed == 42

    def test_run_with_options(self):
        args = build_parser().parse_args(
            ["run", "--figure", "fig5", "--scale", "tiny", "--seed", "7"]
        )
        assert args.figure == "fig5"
        assert args.scale == "tiny"
        assert args.seed == 7

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--figure", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "tiny" in out

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "fifo" in out
        assert "kflushing" in out
