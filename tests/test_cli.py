"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.figure == "all"
        assert args.scale == "small"
        assert args.seed == 42

    def test_run_with_options(self):
        args = build_parser().parse_args(
            ["run", "--figure", "fig5", "--scale", "tiny", "--seed", "7"]
        )
        assert args.figure == "fig5"
        assert args.scale == "tiny"
        assert args.seed == 7

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--figure", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.policy == "kflushing"
        assert args.format == "json"
        assert args.out is None

    def test_run_metrics_out(self):
        args = build_parser().parse_args(["run", "--metrics-out", "m.jsonl"])
        assert args.metrics_out == "m.jsonl"


class TestExecution:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "tiny" in out

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "fifo" in out
        assert "kflushing" in out

    def test_stats_command_emits_snapshot(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "stats",
                    "--records",
                    "12000",
                    "--queries",
                    "600",
                    "--capacity-bytes",
                    "1000000",
                    "--events-out",
                    str(events),
                ]
            )
            == 0
        )
        snap = json.loads(capsys.readouterr().out)
        counters = snap["counters"]
        # Per-phase flush attribution, per-mode query counters, disk I/O.
        assert counters["flush.count"] > 0
        assert counters["flush.phase1-regular.freed_bytes"] > 0
        assert any(name.startswith("query.single.") for name in counters)
        assert counters["disk.flush_batches"] > 0
        assert "span.flush.seconds" in snap["histograms"]
        lines = [json.loads(line) for line in events.read_text().splitlines()]
        assert {"flush", "query", "span"} <= {e["type"] for e in lines}

    def test_stats_prometheus_format_to_file(self, capsys, tmp_path):
        out = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "stats",
                    "--records",
                    "6000",
                    "--queries",
                    "300",
                    "--capacity-bytes",
                    "1000000",
                    "--format",
                    "prom",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        text = out.read_text()
        assert "repro_flush_count_total" in text
        assert "# TYPE" in text
