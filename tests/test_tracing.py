"""PR 5 observability: trace trees, eviction-cause miss attribution,
registry merging, the ops endpoint, and offline trace analysis."""

import json
import urllib.request

import pytest

from repro.config import SystemConfig
from repro.core.eviction_ledger import (
    ALL_CAUSES,
    CAUSE_NEVER_RESIDENT,
    EvictionLedger,
    EvictionRecord,
)
from repro.engine.queries import AndQuery, KeywordQuery, OrQuery
from repro.engine.sharded import ShardedMicroblogSystem, ShardRouter
from repro.engine.system import MicroblogSystem
from repro.obs import (
    Histogram,
    Instrumentation,
    ListSink,
    MetricsRegistry,
    OpsServer,
    merge_snapshots,
    to_prometheus_text,
)
from repro.obs.traceview import (
    build_traces,
    flush_attribution,
    load_events,
    merge_snapshot_events,
    miss_cause_table,
    query_summaries,
)
from tests.conftest import make_blog, make_blogs

POLICIES = ("fifo", "kflushing", "kflushing-mk", "lru")
WORDS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta")


def traced_system(policy="kflushing", shards=1, **overrides):
    defaults = dict(policy=policy, k=3, memory_capacity_bytes=6_000, shards=shards)
    defaults.update(overrides)
    sink = ListSink()
    obs = Instrumentation(sink=sink, tracing=True, attribution=True)
    config = SystemConfig(**defaults)
    if shards > 1:
        system = ShardedMicroblogSystem(config, obs=obs)
    else:
        system = MicroblogSystem(config, obs=obs)
    return system, obs, sink


def churn(system, records=240):
    """Ingest enough varied-keyword records to force flushes."""
    for i in range(records):
        system.ingest(make_blog(keywords=(WORDS[i % len(WORDS)],)))


def run_query_mix(system):
    for word in WORDS:
        system.search(KeywordQuery(word, k=3))
    system.search(OrQuery(("alpha", "beta"), k=3))
    system.search(OrQuery(("gamma", "nosuchword"), k=3))
    system.search(AndQuery(("alpha", "beta"), k=3))
    system.search(AndQuery(("delta", "epsilon"), k=3))
    system.search(KeywordQuery("neverseen", k=3))


class TestPercentileClamp:
    def test_percentile_never_exceeds_observed_max(self):
        # Regression: percentile used to return the bucket's upper bound
        # (scale * 2^(i+1)), which can overshoot the largest recorded
        # value — e.g. a single 7.0 sample landed in the bucket whose
        # bound is ~8.39, and p50 reported 8.39.
        hist = Histogram()
        hist.record(7.0)
        assert hist.percentile(50.0) == pytest.approx(7.0)
        assert hist.percentile(99.0) == pytest.approx(7.0)

    def test_percentile_still_brackets_from_below(self):
        hist = Histogram()
        for _ in range(100):
            hist.record(1e-3)
        assert 1e-3 <= hist.percentile(95.0) <= 1e-3 * (1 + 1e-9)


class TestEvictionLedger:
    def test_record_and_get(self):
        ledger = EvictionLedger()
        ledger.record("alpha", "phase1-regular", at=3.0, postings=5)
        record = ledger.get("alpha")
        assert record == EvictionRecord("phase1-regular", 3.0, 5)
        assert ledger.get("missing") is None
        assert "alpha" in ledger and len(ledger) == 1

    def test_rerecord_overwrites(self):
        ledger = EvictionLedger()
        ledger.record("alpha", "phase1-regular", at=1.0, postings=2)
        ledger.record("alpha", "phase3-forced", at=9.0, postings=1)
        assert ledger.get("alpha").cause == "phase3-forced"
        assert len(ledger) == 1

    def test_capacity_is_bounded_fifo_on_staleness(self):
        ledger = EvictionLedger(capacity=3)
        for i in range(5):
            ledger.record(f"k{i}", "whole-key-fifo", at=float(i), postings=1)
        assert len(ledger) == 3
        assert ledger.get("k0") is None and ledger.get("k1") is None
        assert ledger.get("k4") is not None

    def test_rerecord_refreshes_position(self):
        ledger = EvictionLedger(capacity=2)
        ledger.record("a", "whole-key-lru", at=1.0, postings=1)
        ledger.record("b", "whole-key-lru", at=2.0, postings=1)
        ledger.record("a", "whole-key-lru", at=3.0, postings=1)  # refresh a
        ledger.record("c", "whole-key-lru", at=4.0, postings=1)  # evicts b
        assert ledger.get("a") is not None and ledger.get("b") is None

    def test_cause_constants_match_phase_names(self):
        from repro.core.phases import PHASE_AGGRESSIVE, PHASE_FORCED, PHASE_REGULAR

        assert {PHASE_REGULAR, PHASE_AGGRESSIVE, PHASE_FORCED} <= set(ALL_CAUSES)
        assert CAUSE_NEVER_RESIDENT in ALL_CAUSES


class TestDeterministicTraceIds:
    def test_ids_are_reproducible_across_instances(self):
        def collect():
            sink = ListSink()
            obs = Instrumentation(sink=sink, tracing=True)
            for _ in range(3):
                with obs.trace("query"):
                    with obs.trace_span("disk.lookup"):
                        pass
            return [(e["trace"], e["span"], e["parent_span"]) for e in sink.events]

        assert collect() == collect()

    def test_trace_ids_are_serial_and_prefixed(self):
        sink = ListSink()
        obs = Instrumentation(sink=sink, tracing=True, trace_prefix="w007.")
        with obs.trace("query"):
            pass
        with obs.trace("flush"):
            pass
        ids = [e["trace"] for e in sink.events]
        assert ids == ["w007.query-1", "w007.flush-2"]

    def test_children_emitted_before_root(self):
        sink = ListSink()
        obs = Instrumentation(sink=sink, tracing=True)
        with obs.trace("query"):
            with obs.trace_span("child"):
                pass
            obs.trace_point("point")
        names = [e["name"] for e in sink.events]
        assert names == ["child", "point", "query"]
        root = sink.events[-1]
        assert root["span"] == 0 and root["parent_span"] is None
        assert all(e["parent_span"] == 0 for e in sink.events[:-1])

    def test_tracing_off_emits_nothing_and_yields_none(self):
        sink = ListSink()
        obs = Instrumentation(sink=sink)
        with obs.trace("query") as ctx:
            assert ctx is None
        with obs.trace_span("child") as extra:
            assert extra is None
        obs.trace_point("point")
        assert sink.events == []

    def test_span_events_join_open_trace(self):
        sink = ListSink()
        obs = Instrumentation(sink=sink, tracing=True)
        with obs.trace("flush"):
            with obs.span("flush.phase1-regular"):
                pass
        phase = [e for e in sink.events if e["name"] == "flush.phase1-regular"][0]
        assert phase["trace"] == "flush-1" and phase["parent_span"] == 0


class TestTracePropagation:
    def _query_traces(self, shards):
        system, obs, sink = traced_system(shards=shards)
        churn(system)
        run_query_mix(system)
        events = [e for e in sink.events if "trace" in e and "span" in e]
        traces = build_traces(events)
        queries = [t for t in traces if t.name == "query"]
        assert queries, "expected query traces"
        return system, queries

    @pytest.mark.parametrize("shards", [1, 4])
    def test_child_spans_sum_within_parent(self, shards):
        _, queries = self._query_traces(shards)
        for trace in queries:
            for node in trace.root.walk():
                assert node.child_seconds <= node.seconds + 1e-6

    def test_sharded_spans_reference_only_owning_shards(self):
        system, queries = self._query_traces(shards=4)
        router = ShardRouter(4)
        checked = 0
        for trace in queries:
            for node in trace.root.walk():
                if node.name in ("shard.memory.lookup", "shard.disk.lookup"):
                    assert node.fields["shard"] == router.shard_of(node.fields["key"])
                    checked += 1
        assert checked > 0

    def test_flush_traces_carry_phase_children(self):
        system, obs, sink = traced_system()
        churn(system)
        traces = build_traces([e for e in sink.events if "trace" in e and "span" in e])
        flushes = [t for t in traces if t.name == "flush"]
        assert flushes
        phases = {
            node.name
            for trace in flushes
            for node in trace.root.walk()
            if node.name.startswith("flush.phase")
        }
        assert "flush.phase1-regular" in phases
        for trace in flushes:
            assert trace.root.fields["policy"] == "kflushing"
            assert "freed_bytes" in trace.root.fields


class TestMissAttribution:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_per_cause_counts_sum_to_misses_per_mode(self, policy):
        system, obs, sink = traced_system(policy=policy)
        churn(system)
        for _ in range(3):
            run_query_mix(system)
        counters = obs.registry.snapshot()["counters"]
        total_misses = 0
        for mode in ("single", "or", "and"):
            misses = counters.get(f"query.{mode}.misses", 0)
            attributed = sum(
                value
                for name, value in counters.items()
                if name.startswith(f"query.{mode}.miss.cause.")
            )
            assert attributed == misses, (policy, mode)
            total_misses += misses
        assert total_misses > 0, "workload produced no misses"
        assert sum(system.miss_attribution().values()) == total_misses

    def test_causes_use_known_taxonomy(self):
        for policy in POLICIES:
            system, obs, sink = traced_system(policy=policy)
            churn(system)
            run_query_mix(system)
            assert set(system.miss_attribution()) <= set(ALL_CAUSES)

    def test_never_resident_key_attributed(self):
        system, obs, sink = traced_system()
        system.search(KeywordQuery("ghost", k=3))
        assert system.miss_attribution() == {CAUSE_NEVER_RESIDENT: 1}

    def test_miss_events_carry_cause(self):
        system, obs, sink = traced_system()
        churn(system)
        run_query_mix(system)
        misses = [e for e in sink.of_type("query") if not e["hit"]]
        assert misses
        assert all(e.get("miss_cause") in ALL_CAUSES for e in misses)

    def test_attribution_off_keeps_ledger_none(self):
        obs = Instrumentation()
        system = MicroblogSystem(
            SystemConfig(policy="kflushing", k=3, memory_capacity_bytes=6_000), obs=obs
        )
        churn(system)
        run_query_mix(system)
        assert system.miss_attribution() == {}
        assert system.engine.eviction_ledger is None


class TestRegistryMerge:
    def _loaded(self, values):
        registry = MetricsRegistry()
        registry.counter("query.single.hits").inc(3)
        registry.gauge("memory.bytes").set(7)
        hist = registry.histogram("lat")
        for value in values:
            hist.record(value)
        return registry

    def test_counters_sum_gauges_last_write(self):
        a = self._loaded([0.1])
        b = self._loaded([0.2])
        b.gauge("memory.bytes").set(99)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["query.single.hits"] == 6
        assert snap["gauges"]["memory.bytes"] == 99

    def test_histogram_merge_is_exact(self):
        left_values = [0.001 * (i + 1) for i in range(50)]
        right_values = [0.004 * (i + 1) for i in range(50)]
        a = self._loaded(left_values)
        b = self._loaded(right_values)
        combined = Histogram()
        for value in left_values + right_values:
            combined.record(value)
        a.merge(b.snapshot())
        merged = a.snapshot()["histograms"]["lat"]
        reference = combined.snapshot()
        for field in ("count", "sum", "min", "max", "p50", "p95", "p99", "buckets"):
            assert merged[field] == pytest.approx(reference[field]), field

    def test_merge_scale_mismatch_rejected(self):
        hist = Histogram(scale=1e-6)
        with pytest.raises(ValueError):
            hist.merge_snapshot({"count": 1, "sum": 1.0, "scale": 1e-3})

    def test_merge_legacy_snapshot_without_buckets(self):
        hist = Histogram()
        hist.merge_snapshot({"count": 4, "sum": 0.4, "min": 0.1, "max": 0.1, "mean": 0.1})
        assert hist.count == 4
        assert hist.percentile(50.0) == pytest.approx(0.1)

    def test_merge_snapshots_helper(self):
        snaps = [self._loaded([0.1]).snapshot() for _ in range(3)]
        merged = merge_snapshots(snaps)
        assert merged["counters"]["query.single.hits"] == 9
        assert merged["histograms"]["lat"]["count"] == 3

    def test_merge_snapshot_events_from_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        snap = self._loaded([0.1]).snapshot()
        with open(path, "w") as handle:
            handle.write(json.dumps({"type": "query", "hit": True}) + "\n")
            handle.write(json.dumps({"type": "trial_snapshot", "metrics": snap}) + "\n")
            handle.write(json.dumps({"type": "trial_snapshot", "metrics": snap}) + "\n")
            handle.write(json.dumps({"type": "run_snapshot", "metrics": snap}) + "\n")
        registry = merge_snapshot_events(str(path), types=("trial_snapshot",))
        assert registry.snapshot()["counters"]["query.single.hits"] == 6

    def test_counter_values_prefix_view(self):
        registry = MetricsRegistry()
        registry.counter("query.miss.cause.phase1-regular").inc(4)
        registry.counter("query.miss.cause.never-resident").inc()
        registry.counter("query.single.hits").inc()
        assert registry.counter_values("query.miss.cause.") == {
            "phase1-regular": 4,
            "never-resident": 1,
        }


class TestPrometheusGolden:
    def test_golden_text_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("query.single.hits").inc(3)
        registry.counter("shard.0.query.single.misses").inc(2)
        registry.gauge("memory.bytes").set(123)
        hist = registry.histogram("span.flush.seconds")
        hist.record(0.25)
        hist.record(0.5)
        expected = """\
# HELP repro_query_single_hits_total Query execution: per-mode hits/misses, disk lookups, latency
# TYPE repro_query_single_hits_total counter
repro_query_single_hits_total 3
# HELP repro_shard_0_query_single_misses_total Query execution: per-mode hits/misses, disk lookups, latency (per-shard twin)
# TYPE repro_shard_0_query_single_misses_total counter
repro_shard_0_query_single_misses_total 2
# HELP repro_memory_bytes In-memory index occupancy and capacity
# TYPE repro_memory_bytes gauge
repro_memory_bytes 123
# HELP repro_span_flush_seconds Wall-clock span timings
# TYPE repro_span_flush_seconds summary
repro_span_flush_seconds{quantile="0.50"} 0.262144
repro_span_flush_seconds{quantile="0.95"} 0.5
repro_span_flush_seconds{quantile="0.99"} 0.5
repro_span_flush_seconds_count 2
repro_span_flush_seconds_sum 0.75
repro_span_flush_seconds_min 0.25
repro_span_flush_seconds_max 0.5
repro_span_flush_seconds_mean 0.375
"""
        assert to_prometheus_text(registry) == expected

    def test_miss_cause_counters_have_help(self):
        registry = MetricsRegistry()
        registry.counter("query.miss.cause.phase1-regular").inc()
        text = to_prometheus_text(registry)
        assert "# HELP repro_query_miss_cause_phase1_regular_total" in text


class TestOpsServer:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")

    def test_endpoints(self):
        registry = MetricsRegistry()
        registry.counter("query.single.hits").inc(5)
        with OpsServer(
            registry, port=0, snapshot_provider=lambda: {"extra": True}
        ) as server:
            status, body = self._get(f"{server.url}/healthz")
            assert (status, body) == (200, "ok\n")
            status, body = self._get(f"{server.url}/metrics")
            assert status == 200
            assert "repro_query_single_hits_total 5" in body
            status, body = self._get(f"{server.url}/snapshot")
            assert status == 200
            assert json.loads(body) == {"extra": True}
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(f"{server.url}/nope")
            assert err.value.code == 404

    def test_port_zero_assigns_real_port(self):
        with OpsServer(MetricsRegistry(), port=0) as server:
            assert server.port > 0


class TestTraceview:
    def _events(self):
        return [
            {"type": "trace", "trace": "query-1", "span": 1, "parent_span": 0,
             "name": "disk.lookup", "seconds": 0.002, "cache": "miss", "shard": 0},
            {"type": "trace", "trace": "query-1", "span": 0, "parent_span": None,
             "name": "query", "seconds": 0.01, "mode": "single", "hit": False,
             "miss_cause": "phase1-regular", "disk_lookups": 1},
            {"type": "trace", "trace": "flush-2", "span": 1, "parent_span": 0,
             "name": "flush.phase1-regular", "seconds": 0.004},
            {"type": "trace", "trace": "flush-2", "span": 0, "parent_span": None,
             "name": "flush", "seconds": 0.005},
            # Orphan from a truncated file: no root ever arrives.
            {"type": "trace", "trace": "query-9", "span": 3, "parent_span": 0,
             "name": "disk.lookup", "seconds": 0.001},
        ]

    def test_build_traces_links_and_drops_orphans(self):
        traces = build_traces(self._events())
        assert [t.trace_id for t in traces] == ["query-1", "flush-2"]
        query = traces[0]
        assert query.span_count == 2
        assert query.root.children[0].name == "disk.lookup"
        assert query.root.fields["miss_cause"] == "phase1-regular"

    def test_build_traces_dedupes_duplicate_roots(self):
        events = self._events()
        events.append(dict(events[1]))  # same root event twice
        traces = build_traces(events)
        assert [t.trace_id for t in traces] == ["query-1", "flush-2"]
        assert len(traces[0].root.children) == 1

    def test_query_summaries(self):
        summaries = query_summaries(build_traces(self._events()), top=5)
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary["trace"] == "query-1"
        assert summary["miss_cause"] == "phase1-regular"
        assert summary["children"][0]["cache"] == "miss"

    def test_flush_attribution(self):
        report = flush_attribution(build_traces(self._events()))
        assert report["flush_traces"] == 1
        assert report["total_seconds"] == pytest.approx(0.005)
        assert report["per_phase_seconds"]["phase1-regular"] == pytest.approx(0.004)

    def test_miss_cause_table_prefers_query_events(self):
        events = self._events() + [
            {"type": "query", "hit": False, "miss_cause": "never-resident"},
            {"type": "query", "hit": True},
            {"type": "trial_snapshot",
             "metrics": {"counters": {"query.miss.cause.whole-key-fifo": 50}}},
        ]
        assert miss_cause_table(events) == {"never-resident": 1}

    def test_miss_cause_table_snapshot_fallback(self):
        events = [
            {"type": "trial_snapshot",
             "metrics": {"counters": {"query.miss.cause.whole-key-fifo": 50,
                                      "query.miss.cause.trimmed-topk": 7}}},
            {"type": "trial_snapshot",
             "metrics": {"counters": {"query.miss.cause.whole-key-fifo": 3}}},
        ]
        assert miss_cause_table(events) == {"whole-key-fifo": 53, "trimmed-topk": 7}

    def test_load_events_skips_garbage(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "query"}\nnot json\n\n[1, 2]\n')
        assert load_events(str(path)) == [{"type": "query"}]


class TestTraceCli:
    def _write_events(self, tmp_path):
        system, obs, sink = traced_system()
        churn(system)
        run_query_mix(system)
        path = tmp_path / "events.jsonl"
        with open(path, "w") as handle:
            for event in sink.events:
                handle.write(json.dumps(event) + "\n")
        return path

    def test_trace_command_reconstructs_and_reports(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_events(tmp_path)
        assert main(["trace", str(path), "--require-miss-causes"]) == 0
        out = capsys.readouterr().out
        assert "complete traces" in out
        assert "Miss attribution" in out
        assert "Flush wall-time attribution" in out

    def test_require_miss_causes_fails_on_empty(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "empty.jsonl"
        path.write_text('{"type": "query", "hit": true}\n')
        assert main(["trace", str(path), "--require-miss-causes"]) == 1
