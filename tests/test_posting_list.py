"""Unit tests for posting lists, trims, and completeness floors."""

import pytest

from repro.storage.posting_list import MIN_SORT_KEY, Posting, PostingList


def posting(i, score=None, ts=None):
    """Posting with score == ts == i by default (temporal ranking)."""
    score = float(i) if score is None else score
    ts = float(i) if ts is None else ts
    return Posting(score, ts, i)


def fresh(n=0, key="kw"):
    entry = PostingList(key, created_at=0.0)
    for i in range(1, n + 1):
        entry.insert(posting(i))
    return entry


class TestInsertOrdering:
    def test_temporal_appends_stay_sorted(self):
        entry = fresh(5)
        scores = [p.score for p in entry]
        assert scores == sorted(scores)

    def test_out_of_order_insert_sorted(self):
        entry = PostingList("kw", created_at=0.0)
        for i in (5, 2, 9, 1, 7):
            entry.insert(posting(i))
        assert [p.blog_id for p in entry] == [1, 2, 5, 7, 9]

    def test_last_arrival_advances(self):
        entry = PostingList("kw", created_at=0.0)
        entry.insert(posting(3))
        assert entry.last_arrival == 3.0
        entry.insert(posting(1))  # older arrival does not move it back
        assert entry.last_arrival == 3.0
        entry.insert(posting(9))
        assert entry.last_arrival == 9.0

    def test_len_and_iteration(self):
        entry = fresh(4)
        assert len(entry) == 4
        assert [p.blog_id for p in entry] == [1, 2, 3, 4]


class TestTopAndBest:
    def test_top_returns_best_first(self):
        entry = fresh(5)
        assert [p.blog_id for p in entry.top(3)] == [5, 4, 3]

    def test_top_more_than_length(self):
        entry = fresh(2)
        assert len(entry.top(10)) == 2

    def test_top_zero_or_negative(self):
        entry = fresh(3)
        assert entry.top(0) == []
        assert entry.top(-1) == []

    def test_best_and_worst(self):
        entry = fresh(3)
        assert entry.best().blog_id == 3
        assert entry.worst().blog_id == 1
        assert PostingList("kw", 0.0).best() is None
        assert PostingList("kw", 0.0).worst() is None


class TestMembership:
    def test_contains_id(self):
        entry = fresh(3)
        assert entry.contains_id(2)
        assert not entry.contains_id(99)

    def test_contains_in_top(self):
        entry = fresh(5)
        assert entry.contains_in_top(5, 2)
        assert entry.contains_in_top(4, 2)
        assert not entry.contains_in_top(3, 2)
        assert not entry.contains_in_top(5, 0)


class TestTrimBeyond:
    def test_trims_worst_ranked(self):
        entry = fresh(5)
        removed = entry.trim_beyond(2)
        assert [p.blog_id for p in removed] == [1, 2, 3]
        assert [p.blog_id for p in entry] == [4, 5]

    def test_noop_when_under_k(self):
        entry = fresh(2)
        assert entry.trim_beyond(5) == []
        assert len(entry) == 2
        assert entry.is_complete

    def test_floor_rises_to_best_removed(self):
        entry = fresh(5)
        entry.trim_beyond(2)
        assert entry.floor == posting(3).sort_key

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            fresh(3).trim_beyond(-1)

    def test_repeated_trims_keep_floor_monotone(self):
        entry = fresh(5)
        entry.trim_beyond(3)
        floor1 = entry.floor
        entry.insert(posting(10))
        entry.insert(posting(11))
        entry.trim_beyond(3)
        assert entry.floor > floor1


class TestTrimIf:
    def test_keep_predicate_spares_postings(self):
        entry = fresh(5)
        removed = entry.trim_if(2, keep=lambda p: p.blog_id == 2)
        assert [p.blog_id for p in removed] == [1, 3]
        assert [p.blog_id for p in entry] == [2, 4, 5]

    def test_floor_only_covers_removed(self):
        entry = fresh(5)
        entry.trim_if(2, keep=lambda p: p.blog_id == 2)
        assert entry.floor == posting(3).sort_key

    def test_all_kept_means_no_floor_change(self):
        entry = fresh(5)
        removed = entry.trim_if(2, keep=lambda p: True)
        assert removed == []
        assert entry.is_complete

    def test_none_kept_equals_trim_beyond(self):
        a, b = fresh(6), fresh(6)
        ra = a.trim_if(3, keep=lambda p: False)
        rb = b.trim_beyond(3)
        assert [p.blog_id for p in ra] == [p.blog_id for p in rb]
        assert a.floor == b.floor


class TestRemoveId:
    def test_removes_and_returns(self):
        entry = fresh(3)
        removed = entry.remove_id(2)
        assert removed.blog_id == 2
        assert [p.blog_id for p in entry] == [1, 3]

    def test_missing_returns_none(self):
        entry = fresh(3)
        assert entry.remove_id(42) is None
        assert len(entry) == 3

    def test_mid_list_removal_raises_floor(self):
        entry = fresh(3)
        entry.remove_id(2)
        assert entry.floor == posting(2).sort_key
        # Posting 1 is now below the floor: unprovable territory.
        assert entry.count_above_floor() == 1


class TestDrain:
    def test_drain_empties_and_sets_floor(self):
        entry = fresh(4)
        removed = entry.drain()
        assert len(removed) == 4
        assert len(entry) == 0
        assert entry.floor == posting(4).sort_key

    def test_drain_empty_entry(self):
        entry = PostingList("kw", 0.0)
        assert entry.drain() == []
        assert entry.is_complete

    def test_drain_if_keeps_matching(self):
        entry = fresh(4)
        removed = entry.drain_if(keep=lambda p: p.blog_id in (2, 4))
        assert [p.blog_id for p in removed] == [1, 3]
        assert [p.blog_id for p in entry] == [2, 4]
        assert entry.floor == posting(3).sort_key

    def test_drain_if_keep_all_is_noop(self):
        entry = fresh(4)
        assert entry.drain_if(keep=lambda p: True) == []
        assert entry.is_complete


class TestProvableTop:
    def test_complete_entry_is_provable(self):
        entry = fresh(5)
        top = entry.provable_top(3)
        assert [p.blog_id for p in top] == [5, 4, 3]

    def test_too_few_postings_not_provable(self):
        assert fresh(2).provable_top(3) is None

    def test_trimmed_entry_still_provable_for_retained_top(self):
        entry = fresh(10)
        entry.trim_beyond(4)
        assert entry.provable_top(4) is not None
        assert entry.provable_top(3) is not None

    def test_hole_below_top_breaks_deep_proofs(self):
        entry = fresh(5)
        entry.remove_id(3)  # floor rises to 3
        assert entry.provable_top(2) is not None  # 5, 4 are above the floor
        assert entry.provable_top(3) is None  # would include 2 <= floor

    def test_touch_query_monotone(self):
        entry = fresh(1)
        entry.touch_query(5.0)
        assert entry.last_query == 5.0
        entry.touch_query(3.0)
        assert entry.last_query == 5.0

    def test_count_above_floor_complete(self):
        entry = fresh(4)
        assert entry.count_above_floor() == 4

    def test_min_sort_key_is_minimal(self):
        assert posting(0, score=-1e300).sort_key > MIN_SORT_KEY
