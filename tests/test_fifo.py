"""Unit tests for the FIFO (temporal flushing) baseline."""

import pytest

from repro.core.fifo import FIFOEngine
from repro.storage.disk import DiskArchive
from repro.storage.memory_model import MemoryModel
from tests.conftest import engine_kwargs, make_blog, make_blogs


@pytest.fixture
def model():
    return MemoryModel()


@pytest.fixture
def disk(model):
    return DiskArchive(model)


def engine(model, disk, **overrides):
    kwargs = engine_kwargs(
        model,
        disk,
        k=overrides.pop("k", 3),
        capacity=overrides.pop("capacity", 20_000),
        flush_fraction=overrides.pop("flush_fraction", 0.25),
    )
    kwargs.update(overrides)
    return FIFOEngine(**kwargs)


class TestInsert:
    def test_indexes_and_counts(self, model, disk):
        eng = engine(model, disk)
        blog = make_blog(keywords=("a", "b"))
        assert eng.insert(blog)
        assert eng.record_count() == 1
        assert [p.blog_id for p in eng.lookup("a").candidates] == [blog.blog_id]

    def test_keywordless_skipped(self, model, disk):
        eng = engine(model, disk)
        assert not eng.insert(make_blog(keywords=()))

    def test_get_record(self, model, disk):
        eng = engine(model, disk)
        blog = make_blog()
        eng.insert(blog)
        assert eng.get_record(blog.blog_id) is blog
        assert eng.get_record(10**9) is None


class TestFlush:
    def fill(self, eng, n=200, key="hot"):
        blogs = make_blogs(n, keywords=(key,))
        for blog in blogs:
            eng.insert(blog)
        return blogs

    def test_flush_evicts_oldest_data(self, model, disk):
        eng = engine(model, disk)
        blogs = self.fill(eng)
        report = eng.run_flush(now=1e6)
        assert report.freed_bytes >= report.target_bytes
        remaining = {p.blog_id for p in eng.lookup("hot").candidates}
        flushed = {b.blog_id for b in blogs} - remaining
        assert flushed
        assert max(flushed) < min(remaining)

    def test_flushed_data_on_disk(self, model, disk):
        eng = engine(model, disk)
        blogs = self.fill(eng)
        eng.run_flush(now=1e6)
        oldest = blogs[0]
        assert disk.contains_record(oldest.blog_id)
        assert disk.posting_count("hot") > 0

    def test_whole_segments_evicted(self, model, disk):
        eng = engine(model, disk)
        self.fill(eng)
        segments_before = eng.segmented.segment_count
        eng.run_flush(now=1e6)
        assert eng.segmented.segment_count < segments_before

    def test_floor_rises(self, model, disk):
        eng = engine(model, disk)
        self.fill(eng)
        eng.run_flush(now=1e6)
        assert eng.lookup("hot").floor > (float("-inf"), float("-inf"), -1)

    def test_memory_drops_below_capacity(self, model, disk):
        eng = engine(model, disk, capacity=15_000)
        i = 0
        while not eng.needs_flush():
            eng.insert(make_blog(keywords=(f"kw{i % 10}",)))
            i += 1
        eng.run_flush(now=1e6)
        assert eng.memory_bytes < eng.capacity_bytes


class TestMetrics:
    def test_k_filled(self, model, disk):
        eng = engine(model, disk, capacity=10**6)
        for blog in make_blogs(5, keywords=("hot",)):
            eng.insert(blog)
        eng.insert(make_blog(keywords=("cold",)))
        assert eng.k_filled_count() == 1  # k=3: only "hot" qualifies

    def test_policy_overhead_is_segment_headers_only(self, model, disk):
        eng = engine(model, disk)
        for blog in make_blogs(100):
            eng.insert(blog)
        expected = model.segment_overhead * eng.segmented.segment_count
        assert eng.policy_overhead_bytes == expected

    def test_frequency_snapshot(self, model, disk):
        eng = engine(model, disk, capacity=10**6)
        eng.insert(make_blog(keywords=("a", "b")))
        eng.insert(make_blog(keywords=("a",)))
        assert eng.frequency_snapshot() == {"a": 2, "b": 1}

    def test_note_query_is_noop(self, model, disk):
        eng = engine(model, disk)
        eng.insert(make_blog(keywords=("a",)))
        eng.note_query(["a"], [1], now=50.0)  # must not raise

    def test_lookup_depth(self, model, disk):
        eng = engine(model, disk, capacity=10**6)
        for blog in make_blogs(10, keywords=("hot",)):
            eng.insert(blog)
        top = eng.lookup("hot", depth=4).candidates
        full = eng.lookup("hot").candidates
        assert top == full[:4]
