"""End-to-end tests for the Section IV extensibility claims: other
attributes, other ranking functions, dynamic k, and custom plug-ins."""

import pytest

from repro.config import SystemConfig
from repro.engine.queries import KeywordQuery, SpatialQuery, TopKQuery, UserQuery
from repro.engine.system import MicroblogSystem
from repro.model.attributes import AttributeExtractor, SpatialGridAttribute
from repro.model.microblog import GeoPoint
from repro.model.ranking import CallableRanking, PopularityRanking, WeightedRanking, TemporalRanking
from tests.conftest import make_blog, make_blogs

POLICIES = ("fifo", "kflushing", "kflushing-mk", "lru")


class TestPopularityRanking:
    """Section IV-B: any arrival-computable ranking keeps working —
    posting lists stay score-ordered and Phase 1 trims by score."""

    def build(self, policy):
        return MicroblogSystem(
            SystemConfig(
                policy=policy,
                ranking=PopularityRanking(popularity_weight=1000.0),
                k=3,
                memory_capacity_bytes=500_000,
            )
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_exact_topk_by_popularity(self, policy):
        system = self.build(policy)
        ranking = PopularityRanking(popularity_weight=1000.0)
        blogs = []
        for followers in (0, 10, 10_000, 1_000_000, 3, 500, 90_000, 7):
            blog = make_blog(keywords=("k",), followers=followers)
            blogs.append(blog)
            system.ingest(blog)
        result = system.search(KeywordQuery("k", k=3))
        expected = sorted(blogs, key=ranking.sort_key, reverse=True)[:3]
        assert list(result.blog_ids) == [b.blog_id for b in expected]

    def test_phase1_trims_lowest_scores(self):
        system = self.build("kflushing")
        star = make_blog(keywords=("k",), followers=10**8)
        system.ingest(star)
        nobodies = make_blogs(6, keywords=("k",), followers=0)
        for blog in nobodies:
            system.ingest(blog)
        system.engine.run_flush(now=system.now)
        kept = [p.blog_id for p in system.engine.lookup("k").candidates]
        # The old-but-famous post survives the trim; old nobodies go.
        assert star.blog_id in kept
        assert len(kept) == 3

    def test_weighted_ranking_in_system(self):
        ranking = WeightedRanking(
            [(0.5, TemporalRanking()), (0.5, PopularityRanking(10.0))]
        )
        system = MicroblogSystem(
            SystemConfig(policy="kflushing", ranking=ranking, k=2,
                         memory_capacity_bytes=500_000)
        )
        for blog in make_blogs(5, keywords=("k",)):
            system.ingest(blog)
        assert system.search(KeywordQuery("k", k=2)).memory_hit

    def test_callable_ranking_in_system(self):
        # Rank by user id: arbitrary but arrival-computable.
        ranking = CallableRanking(lambda r: float(r.user_id), name="by-user")
        system = MicroblogSystem(
            SystemConfig(policy="kflushing", ranking=ranking, k=2,
                         memory_capacity_bytes=500_000)
        )
        low = make_blog(keywords=("k",), user_id=1)
        high = make_blog(keywords=("k",), user_id=99)
        mid = make_blog(keywords=("k",), user_id=50)
        for blog in (low, high, mid):
            system.ingest(blog)
        result = system.search(KeywordQuery("k", k=2))
        assert list(result.blog_ids) == [high.blog_id, mid.blog_id]


class TestSpatialEndToEnd:
    def test_spatial_flushing_and_query(self):
        grid = SpatialGridAttribute(tile_side_degrees=1.0)
        system = MicroblogSystem(
            SystemConfig(
                policy="kflushing",
                attribute="spatial",
                k=3,
                memory_capacity_bytes=20_000,
                tile_side_degrees=1.0,
            )
        )
        hot_tile_point = GeoPoint(40.5, -74.5)
        for blog in make_blogs(200, location=hot_tile_point):
            system.ingest(blog)
        assert len(system.flush_reports()) > 0
        tile = grid.tile_of(40.5, -74.5)
        result = system.search(SpatialQuery(tile, k=3))
        assert result.memory_hit

    def test_records_without_location_skipped(self):
        system = MicroblogSystem(
            SystemConfig(policy="kflushing", attribute="spatial", k=3,
                         memory_capacity_bytes=40_000)
        )
        assert not system.ingest(make_blog())
        assert system.stats.ingest.skipped == 1


class TestDynamicK:
    """Section IV-C: k changes take effect at the next flushing cycle."""

    @pytest.mark.parametrize("policy", ("kflushing", "kflushing-mk"))
    def test_decrease_then_flush_trims(self, policy):
        system = MicroblogSystem(
            SystemConfig(policy=policy, k=5, memory_capacity_bytes=10**6)
        )
        for blog in make_blogs(8, keywords=("hot",)):
            system.ingest(blog)
        system.set_k(2)
        system.engine.run_flush(now=system.now)
        assert len(system.engine.index.get("hot")) == 2

    def test_decrease_still_serves_smaller_queries_immediately(self):
        system = MicroblogSystem(
            SystemConfig(policy="kflushing", k=5, memory_capacity_bytes=10**6)
        )
        for blog in make_blogs(5, keywords=("hot",)):
            system.ingest(blog)
        system.set_k(2)
        assert system.search(KeywordQuery("hot", k=2)).memory_hit

    def test_increase_catches_up_with_arrivals(self):
        system = MicroblogSystem(
            SystemConfig(policy="kflushing", k=2, memory_capacity_bytes=10**6)
        )
        for blog in make_blogs(2, keywords=("hot",)):
            system.ingest(blog)
        system.set_k(4)
        # Not yet enough data for the new k ...
        assert not system.search(KeywordQuery("hot", k=4)).memory_hit
        # ... but fast arrivals catch up quickly (the paper's argument).
        for blog in make_blogs(4, keywords=("hot",)):
            system.ingest(blog)
        assert system.search(KeywordQuery("hot", k=4)).memory_hit


class HashtagPairAttribute(AttributeExtractor):
    """A custom third-party extractor: index by unordered tag pair."""

    name = "tag-pair"
    multi_key = True

    def keys(self, record):
        tags = sorted(record.keywords)
        return tuple(
            (a, b) for i, a in enumerate(tags) for b in tags[i + 1 :]
        )


class TestCustomAttributePlugin:
    def test_custom_extractor_via_config(self):
        system = MicroblogSystem(
            SystemConfig(
                policy="kflushing",
                attribute=HashtagPairAttribute(),
                k=2,
                memory_capacity_bytes=10**6,
            )
        )
        for blog in make_blogs(3, keywords=("a", "b")):
            system.ingest(blog)
        result = system.search(TopKQuery(keys=(("a", "b"),), k=2))
        assert result.memory_hit

    def test_single_tag_records_skipped_by_pair_attribute(self):
        system = MicroblogSystem(
            SystemConfig(
                policy="kflushing",
                attribute=HashtagPairAttribute(),
                k=2,
                memory_capacity_bytes=10**6,
            )
        )
        assert not system.ingest(make_blog(keywords=("solo",)))


class TestUserTimelines:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_timeline_most_recent_first(self, policy):
        system = MicroblogSystem(
            SystemConfig(policy=policy, attribute="user", k=3,
                         memory_capacity_bytes=10**6)
        )
        blogs = make_blogs(6, user_id=42)
        for blog in blogs:
            system.ingest(blog)
        result = system.search(UserQuery(42, k=3))
        assert result.memory_hit
        expected = sorted((b.blog_id for b in blogs), reverse=True)[:3]
        assert list(result.blog_ids) == expected
