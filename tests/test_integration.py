"""Integration tests: every policy against a brute-force oracle.

The strongest property of the whole system: regardless of flushing
policy, flush timing, or hit/miss path, a query's answer equals the
brute-force top-k over *everything that was ever ingested* (memory plus
disk form a lossless partition).  For AND queries this holds in strict
mode; the default operational AND mode may serve approximate memory hits
(the paper's accounting), which is asserted separately.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.engine.queries import AndQuery, KeywordQuery, OrQuery, TopKQuery, UserQuery
from repro.engine.system import MicroblogSystem
from repro.workload.stream import MicroblogStream, StreamConfig

POLICIES = ("fifo", "kflushing", "kflushing-mk", "lru")
K = 4


def build_system(policy, strict_and=True, attribute="keyword"):
    config = SystemConfig(
        policy=policy,
        attribute=attribute,
        k=K,
        memory_capacity_bytes=120_000,
        flush_fraction=0.25,
    )
    return MicroblogSystem(config, strict_and=strict_and)


def build_stream(attribute="keyword"):
    return MicroblogStream(
        StreamConfig(
            seed=5,
            vocabulary_size=60,
            user_count=30,
            with_locations=(attribute == "spatial"),
        )
    )


def oracle_single(records, key, k, key_fn):
    matching = [r for r in records if key in key_fn(r)]
    matching.sort(key=lambda r: (r.timestamp, r.blog_id), reverse=True)
    return [r.blog_id for r in matching[:k]]


def oracle_or(records, keys, k):
    matching = [r for r in records if any(key in r.keywords for key in keys)]
    matching.sort(key=lambda r: (r.timestamp, r.blog_id), reverse=True)
    return [r.blog_id for r in matching[:k]]


def oracle_and(records, keys, k):
    matching = [r for r in records if all(key in r.keywords for key in keys)]
    matching.sort(key=lambda r: (r.timestamp, r.blog_id), reverse=True)
    return [r.blog_id for r in matching[:k]]


@pytest.mark.parametrize("policy", POLICIES)
class TestExactness:
    def _run(self, policy, attribute="keyword"):
        system = build_system(policy, attribute=attribute)
        stream = build_stream(attribute)
        ingested = []
        for record in stream.take(3_000):
            if system.ingest(record):
                ingested.append(record)
        assert len(system.flush_reports()) > 0, "test must exercise flushing"
        return system, ingested, stream

    def test_single_keyword_queries_exact(self, policy):
        system, ingested, stream = self._run(policy)
        for rank in (0, 1, 5, 20, 55):
            key = stream.vocabulary.tag(rank)
            result = system.search(KeywordQuery(key, k=K))
            expected = oracle_single(ingested, key, K, lambda r: r.keywords)
            assert list(result.blog_ids) == expected, (policy, key)
            assert result.provably_exact

    def test_or_queries_exact(self, policy):
        system, ingested, stream = self._run(policy)
        pairs = [(0, 1), (0, 40), (30, 50)]
        for a, b in pairs:
            keys = (stream.vocabulary.tag(a), stream.vocabulary.tag(b))
            result = system.search(OrQuery(keys, k=K))
            assert list(result.blog_ids) == oracle_or(ingested, keys, K)

    def test_and_queries_exact_in_strict_mode(self, policy):
        system, ingested, stream = self._run(policy)
        pairs = [(0, 1), (0, 2), (1, 3), (10, 20)]
        for a, b in pairs:
            keys = (stream.vocabulary.tag(a), stream.vocabulary.tag(b))
            result = system.search(AndQuery(keys, k=K))
            assert list(result.blog_ids) == oracle_and(ingested, keys, K), (
                policy,
                keys,
            )
            assert result.provably_exact

    def test_memory_hits_only_when_provable(self, policy):
        system, ingested, stream = self._run(policy)
        for rank in range(0, 60, 7):
            key = stream.vocabulary.tag(rank)
            result = system.search(KeywordQuery(key, k=K))
            if result.memory_hit:
                assert result.disk_lookups == 0
                assert result.provably_exact

    def test_user_attribute_exact(self, policy):
        system, ingested, _ = self._run(policy, attribute="user")
        for user_id in (0, 1, 5, 25):
            result = system.search(UserQuery(user_id, k=K))
            expected = oracle_single(ingested, user_id, K, lambda r: (r.user_id,))
            assert list(result.blog_ids) == expected


class TestOperationalAndMode:
    """Default (non-strict) AND hits may be approximate but must still be
    a subset of the true intersection, correctly ordered."""

    @pytest.mark.parametrize("policy", ("kflushing", "kflushing-mk"))
    def test_operational_and_subset_of_truth(self, policy):
        system = build_system(policy, strict_and=False)
        stream = build_stream()
        ingested = []
        for record in stream.take(3_000):
            if system.ingest(record):
                ingested.append(record)
        for a, b in [(0, 1), (0, 2), (2, 5)]:
            keys = (stream.vocabulary.tag(a), stream.vocabulary.tag(b))
            result = system.search(AndQuery(keys, k=K))
            truth = set(
                r.blog_id
                for r in ingested
                if all(key in r.keywords for key in keys)
            )
            assert set(result.blog_ids) <= truth
            ts = [p.timestamp for p in result.postings]
            assert ts == sorted(ts, reverse=True)


class TestLosslessPartition:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_record_in_memory_or_disk(self, policy):
        system = build_system(policy)
        stream = build_stream()
        ingested = []
        for record in stream.take(2_500):
            if system.ingest(record):
                ingested.append(record)
        assert len(system.flush_reports()) > 0
        for record in ingested:
            in_memory = system.engine.get_record(record.blog_id) is not None
            on_disk = system.disk.contains_record(record.blog_id)
            assert in_memory or on_disk, record.blog_id

    @pytest.mark.parametrize("policy", POLICIES)
    def test_per_key_postings_partition(self, policy):
        """For any key, each (key, id) pair lives in memory or on disk —
        never lost, and the union covers every ingested association."""
        system = build_system(policy)
        stream = build_stream()
        ingested = []
        for record in stream.take(2_500):
            if system.ingest(record):
                ingested.append(record)
        for rank in (0, 3, 30):
            key = stream.vocabulary.tag(rank)
            truth = {r.blog_id for r in ingested if key in r.keywords}
            memory_ids = {p.blog_id for p in system.engine.lookup(key).candidates}
            disk_ids = {p.blog_id for p in system.disk.lookup(key)}
            assert memory_ids | disk_ids == truth, (policy, key)
