"""Unit tests for the query executor: hit semantics and exact fallback."""

import pytest

from repro.core.kflushing import KFlushingEngine
from repro.engine.executor import QueryExecutor
from repro.engine.queries import AndQuery, KeywordQuery, OrQuery
from repro.storage.disk import DiskArchive
from repro.storage.memory_model import MemoryModel
from tests.conftest import engine_kwargs, make_blog, make_blogs


@pytest.fixture
def setup():
    model = MemoryModel()
    disk = DiskArchive(model)
    eng = KFlushingEngine(
        mk=False, **engine_kwargs(model, disk, k=3, capacity=10**6)
    )
    return eng, disk, QueryExecutor(eng, disk)


class TestSingleKey:
    def test_hit_when_k_in_memory(self, setup):
        eng, _, ex = setup
        blogs = make_blogs(5, keywords=("hot",))
        for blog in blogs:
            eng.insert(blog)
        result = ex.execute(KeywordQuery("hot", k=3), now=1e6)
        assert result.memory_hit
        assert result.provably_exact
        assert result.disk_lookups == 0
        expected = sorted((b.blog_id for b in blogs), reverse=True)[:3]
        assert list(result.blog_ids) == expected

    def test_miss_when_too_few(self, setup):
        eng, _, ex = setup
        eng.insert(make_blog(keywords=("rare",)))
        result = ex.execute(KeywordQuery("rare", k=3), now=1e6)
        assert not result.memory_hit
        assert result.disk_lookups == 1
        assert len(result.postings) == 1  # all that exists anywhere

    def test_miss_merges_memory_and_disk_exactly(self, setup):
        eng, disk, ex = setup
        blogs = make_blogs(6, keywords=("hot",))
        for blog in blogs:
            eng.insert(blog)
        eng.run_flush(now=1e6)  # trims to top-3, rest on disk
        result = ex.execute(KeywordQuery("hot", k=5), now=1e6)
        assert not result.memory_hit  # memory holds only 3
        expected = sorted((b.blog_id for b in blogs), reverse=True)[:5]
        assert list(result.blog_ids) == expected
        assert result.provably_exact

    def test_unknown_key_empty_answer(self, setup):
        _, _, ex = setup
        result = ex.execute(KeywordQuery("ghost", k=3), now=1.0)
        assert not result.memory_hit
        assert result.postings == ()

    def test_hit_respects_floor_after_hole(self, setup):
        eng, _, ex = setup
        blogs = make_blogs(3, keywords=("k",))
        for blog in blogs:
            eng.insert(blog)
        entry = eng.index.get("k")
        entry.remove_id(blogs[1].blog_id)  # hole: floor rises
        eng.index.charge_removed_postings(1)
        eng.raw.decref(blogs[1].blog_id)
        result = ex.execute(KeywordQuery("k", k=3), now=1e6)
        assert not result.memory_hit  # only 2 postings remain anyway


class TestOrQueries:
    def test_hit_when_all_keys_filled(self, setup):
        eng, _, ex = setup
        for blog in make_blogs(4, keywords=("a",)):
            eng.insert(blog)
        for blog in make_blogs(4, keywords=("b",)):
            eng.insert(blog)
        result = ex.execute(OrQuery(["a", "b"], k=3), now=1e6)
        assert result.memory_hit
        assert result.provably_exact

    def test_union_is_deduplicated(self, setup):
        eng, _, ex = setup
        shared = make_blogs(4, keywords=("a", "b"))
        for blog in shared:
            eng.insert(blog)
        result = ex.execute(OrQuery(["a", "b"], k=3), now=1e6)
        assert result.memory_hit
        assert len(set(result.blog_ids)) == 3

    def test_miss_when_one_key_short(self, setup):
        eng, _, ex = setup
        for blog in make_blogs(4, keywords=("a",)):
            eng.insert(blog)
        eng.insert(make_blog(keywords=("b",)))
        result = ex.execute(OrQuery(["a", "b"], k=3), now=1e6)
        assert not result.memory_hit
        # Only the short key pays disk: "a" holds a provable top-3 in
        # memory, so the union's top-3 cannot need its disk postings.
        assert result.disk_lookups == 1
        # Still exact: the union's top-3 are the three newest overall.
        assert len(result.postings) == 3

    def test_or_miss_skips_disk_for_provable_keys(self, setup):
        """Regression: the OR miss path used to pay a disk lookup for
        every key, including those whose in-memory top-k was provable."""
        eng, disk, ex = setup
        for blog in make_blogs(4, keywords=("a",)):
            eng.insert(blog)
        eng.insert(make_blog(keywords=("b",)))
        before = disk.stats.index_lookups
        result = ex.execute(OrQuery(["a", "b"], k=3), now=1e6)
        assert result.disk_lookups == 1
        # The reported count matches the disk's own ledger.
        assert disk.stats.index_lookups - before == 1

    def test_or_answer_is_true_union_topk(self, setup):
        eng, _, ex = setup
        a_blogs = make_blogs(4, keywords=("a",))
        b_blogs = make_blogs(4, keywords=("b",))
        for blog in a_blogs + b_blogs:
            eng.insert(blog)
        result = ex.execute(OrQuery(["a", "b"], k=4), now=1e6)
        all_ids = sorted((b.blog_id for b in a_blogs + b_blogs), reverse=True)
        assert list(result.blog_ids) == all_ids[:4]


class TestAndQueries:
    def test_hit_on_provable_intersection(self, setup):
        eng, _, ex = setup
        both = make_blogs(4, keywords=("a", "b"))
        for blog in both:
            eng.insert(blog)
        result = ex.execute(AndQuery(["a", "b"], k=3), now=1e6)
        assert result.memory_hit
        assert result.provably_exact
        expected = sorted((b.blog_id for b in both), reverse=True)[:3]
        assert list(result.blog_ids) == expected

    def test_miss_when_intersection_small(self, setup):
        eng, _, ex = setup
        eng.insert(make_blog(keywords=("a", "b")))
        for blog in make_blogs(3, keywords=("a",)):
            eng.insert(blog)
        for blog in make_blogs(3, keywords=("b",)):
            eng.insert(blog)
        result = ex.execute(AndQuery(["a", "b"], k=2), now=1e6)
        assert not result.memory_hit
        assert len(result.postings) == 1  # only one record has both

    def test_and_exact_after_flush(self, setup):
        eng, _, ex = setup
        both = make_blogs(6, keywords=("a", "b"))
        for blog in both:
            eng.insert(blog)
        for blog in make_blogs(6, keywords=("a",)):
            eng.insert(blog)
        eng.run_flush(now=1e6)  # "a" and "b" trimmed to top-3
        result = ex.execute(AndQuery(["a", "b"], k=5), now=1e6)
        expected = sorted((b.blog_id for b in both), reverse=True)[:5]
        assert list(result.blog_ids) == expected
        assert result.provably_exact

    def test_operational_hit_vs_strict(self, setup):
        """A hit assembled below the floors counts operationally (the
        paper's Section IV-D accounting) but not in strict mode."""
        eng, disk, _ = setup
        both = make_blogs(3, keywords=("a", "b"))
        for blog in both:
            eng.insert(blog)
        # Push "a" over k so a flush raises its floor above the shared
        # records, while MK-free trimming drops them from "a".
        for blog in make_blogs(6, keywords=("a",)):
            eng.insert(blog)
        eng.run_flush(now=1e6)
        lax = QueryExecutor(eng, disk, strict_and=False)
        strict = QueryExecutor(eng, disk, strict_and=True)
        q = AndQuery(["a", "b"], k=2)
        lax_result = lax.execute(q, now=1e6)
        strict_result = strict.execute(q, now=1e6)
        # After the flush the shared records were trimmed from "a", so
        # both must miss; the strict one must also be exact.
        assert strict_result.provably_exact
        assert set(strict_result.blog_ids) == set(lax_result.blog_ids)


class TestDepthCaps:
    def test_and_disk_limit_flags_inexact(self):
        model = MemoryModel()
        disk = DiskArchive(model)
        eng = KFlushingEngine(
            mk=False, **engine_kwargs(model, disk, k=3, capacity=10**6)
        )
        capped = QueryExecutor(eng, disk, and_scan_depth=5, and_disk_limit=5)
        for blog in make_blogs(10, keywords=("a", "b")):
            eng.insert(blog)
        for blog in make_blogs(10, keywords=("a",)):
            eng.insert(blog)
        eng.run_flush(now=1e6)
        result = capped.execute(AndQuery(["a", "b"], k=3), now=1e6)
        # Whatever the outcome, a capped evaluation never claims proof
        # unless it found k postings above all floors within the cap.
        if result.memory_hit:
            assert result.postings


class TestMaterialize:
    def test_fetches_memory_then_disk(self, setup):
        eng, disk, ex = setup
        blogs = make_blogs(6, keywords=("hot",))
        for blog in blogs:
            eng.insert(blog)
        eng.run_flush(now=1e6)
        result = ex.execute(KeywordQuery("hot", k=5), now=1e6)
        records = ex.materialize(result)
        assert [r.blog_id for r in records] == list(result.blog_ids)

    def test_bookkeeping_timer_accumulates(self, setup):
        eng, _, ex = setup
        for blog in make_blogs(4, keywords=("hot",)):
            eng.insert(blog)
        before = ex.bookkeeping_seconds
        ex.execute(KeywordQuery("hot", k=3), now=1e6)
        assert ex.bookkeeping_seconds >= before
