"""Instrumentation wiring: the obs subsystem observed through the stack."""

import json

from repro.config import SystemConfig
from repro.engine.queries import AndQuery, KeywordQuery, OrQuery
from repro.engine.system import MicroblogSystem
from repro.experiments.runner import TrialSpec, run_trial
from repro.experiments.scale import TINY
from repro.obs import Instrumentation, ListSink, activated
from tests.conftest import make_blog, make_blogs


def observed_system(**overrides):
    defaults = dict(policy="kflushing", k=3, memory_capacity_bytes=5_000)
    defaults.update(overrides)
    sink = ListSink()
    obs = Instrumentation(sink=sink)
    system = MicroblogSystem(SystemConfig(**defaults), obs=obs)
    return system, obs, sink


class TestFlushInstrumentation:
    def test_flush_emits_span_and_event(self):
        system, obs, sink = observed_system()
        for blog in make_blogs(60):
            system.ingest(blog)
        assert len(system.flush_reports()) >= 1
        flush_events = sink.of_type("flush")
        assert len(flush_events) == len(system.flush_reports())
        event = flush_events[0]
        assert event["policy"] == "kflushing"
        assert event["freed_bytes"] > 0
        assert "phase1-regular" in event["phase_freed"]
        spans = {e["name"] for e in sink.of_type("span")}
        assert "flush" in spans
        assert "flush.phase1-regular" in spans

    def test_phase_spans_nest_under_flush(self):
        system, obs, sink = observed_system()
        for blog in make_blogs(60):
            system.ingest(blog)
        parents = {
            e["name"]: e["parent"]
            for e in sink.of_type("span")
            if e["name"].startswith("flush.")
        }
        assert parents, "expected per-phase spans"
        assert set(parents.values()) == {"flush"}

    def test_phase_counters_sum_to_total_freed(self):
        system, obs, sink = observed_system()
        for blog in make_blogs(120):
            system.ingest(blog)
        counters = system.snapshot()["counters"]
        total = counters["flush.freed_bytes"]
        by_phase = sum(
            value
            for name, value in counters.items()
            if name.startswith("flush.phase") and name.endswith(".freed_bytes")
        )
        assert total > 0
        assert by_phase == total

    def test_flush_count_matches_reports(self):
        system, obs, sink = observed_system()
        for blog in make_blogs(120):
            system.ingest(blog)
        assert system.snapshot()["counters"]["flush.count"] == len(
            system.flush_reports()
        )


class TestQueryInstrumentation:
    def test_per_mode_hit_miss_counters(self):
        system, obs, sink = observed_system(memory_capacity_bytes=60_000)
        for blog in make_blogs(6, keywords=("hot",)):
            system.ingest(blog)
        system.search(KeywordQuery("hot", k=3))   # hit
        system.search(KeywordQuery("cold", k=3))  # miss -> disk
        system.search(OrQuery(["hot", "cold"], k=3))
        system.search(AndQuery(["hot", "cold"], k=3))
        counters = system.snapshot()["counters"]
        assert counters["query.single.hits"] == 1
        assert counters["query.single.misses"] == 1
        assert counters["query.or.misses"] == 1
        assert counters["query.disk_lookups"] >= 2
        events = sink.of_type("query")
        assert len(events) == 4
        assert {e["mode"] for e in events} == {"single", "or", "and"}

    def test_disk_counters_track_stats(self):
        system, obs, sink = observed_system(memory_capacity_bytes=60_000)
        system.ingest(make_blog(keywords=("x",)))
        system.search(KeywordQuery("x", k=3))  # miss: only 1 posting
        counters = system.snapshot()["counters"]
        assert counters["disk.index_lookups"] == system.disk.stats.index_lookups
        assert counters["disk.index_lookups"] >= 1

    def test_query_latency_histogram_counts_every_query(self):
        system, obs, sink = observed_system(memory_capacity_bytes=60_000)
        for blog in make_blogs(6, keywords=("hot",)):
            system.ingest(blog)
        for _ in range(5):
            system.search(KeywordQuery("hot", k=3))
        hist = system.snapshot()["histograms"]["query.simulated_latency_seconds"]
        assert hist["count"] == 5


class TestSnapshotAndRuntime:
    def test_snapshot_is_json_serialisable(self):
        system, obs, sink = observed_system()
        for blog in make_blogs(60):
            system.ingest(blog)
        snap = system.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_system_adopts_active_instrumentation(self):
        obs = Instrumentation(sink=ListSink())
        with activated(obs):
            system = MicroblogSystem(
                SystemConfig(policy="kflushing", k=3, memory_capacity_bytes=5_000)
            )
        assert system.obs is obs

    def test_explicit_obs_beats_active(self):
        scoped = Instrumentation()
        explicit = Instrumentation()
        with activated(scoped):
            system = MicroblogSystem(
                SystemConfig(policy="kflushing", k=3, memory_capacity_bytes=5_000),
                obs=explicit,
            )
        assert system.obs is explicit


class TestRunnerMetrics:
    def test_run_trial_writes_metrics_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        spec = TrialSpec(policy="kflushing", scale=TINY, seed=3)
        run_trial(spec, metrics_path=path)
        events = [json.loads(line) for line in path.read_text().splitlines()]
        types = {e["type"] for e in events}
        assert {"flush", "query", "span", "trial_snapshot"} <= types
        snapshot = [e for e in events if e["type"] == "trial_snapshot"][-1]
        assert snapshot["policy"] == "kflushing"
        counters = snapshot["metrics"]["counters"]
        assert counters["flush.count"] > 0
        assert any(name.startswith("query.") for name in counters)
        assert any(name.startswith("disk.") for name in counters)
