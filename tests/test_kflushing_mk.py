"""Unit tests for the kFlushing-MK multiple-keyword extension (Sec IV-D)."""

import pytest

from repro.core.kflushing import KFlushingEngine
from repro.model.attributes import UserAttribute
from repro.storage.disk import DiskArchive
from repro.storage.memory_model import MemoryModel
from tests.conftest import engine_kwargs, make_blog, make_blogs


@pytest.fixture
def model():
    return MemoryModel()


@pytest.fixture
def disk(model):
    return DiskArchive(model)


def mk_engine(model, disk, **overrides):
    kwargs = engine_kwargs(
        model,
        disk,
        k=overrides.pop("k", 3),
        capacity=overrides.pop("capacity", 100_000),
        flush_fraction=overrides.pop("flush_fraction", 0.2),
    )
    kwargs.update(overrides)
    return KFlushingEngine(mk=True, **kwargs)


class TestPhase1MK:
    def test_keeps_posting_still_topk_elsewhere(self, model, disk):
        """The Figure 6(a) scenario: M1 beyond top-k in W1, within top-k in
        W2 — the extended Phase 1 keeps M1's id in W1."""
        eng = mk_engine(model, disk, k=2)
        m1 = make_blog(keywords=("w1", "w2"), blog_id=1, timestamp=1.0)
        eng.insert(m1)
        for blog in make_blogs(4, keywords=("w1",), start_id=10):
            eng.insert(blog)
        eng.run_flush(now=100.0)
        w1_ids = [p.blog_id for p in eng.lookup("w1").candidates]
        assert m1.blog_id in w1_ids  # kept despite being beyond top-2
        assert len(w1_ids) == 3  # top-2 plus the spared straggler
        assert eng.raw.pcount(m1.blog_id) == 2
        eng.check_integrity()

    def test_plain_engine_would_trim_same_posting(self, model, disk):
        plain = KFlushingEngine(
            mk=False, **engine_kwargs(model, disk, k=2, capacity=100_000)
        )
        m1 = make_blog(keywords=("w1", "w2"), blog_id=1, timestamp=1.0)
        plain.insert(m1)
        for blog in make_blogs(4, keywords=("w1",), start_id=10):
            plain.insert(blog)
        plain.run_flush(now=100.0)
        w1_ids = [p.blog_id for p in plain.lookup("w1").candidates]
        assert m1.blog_id not in w1_ids
        assert plain.raw.pcount(m1.blog_id) == 1

    def test_trims_once_out_of_topk_everywhere(self, model, disk):
        """The Figure 6(b) follow-up: when M1 falls out of the top-k of
        all its keywords, the next Phase 1 removes it everywhere."""
        eng = mk_engine(model, disk, k=2)
        m1 = make_blog(keywords=("w1", "w2"), blog_id=1, timestamp=1.0)
        eng.insert(m1)
        for blog in make_blogs(4, keywords=("w1",), start_id=10):
            eng.insert(blog)
        eng.run_flush(now=100.0)
        assert m1.blog_id in eng.raw
        # Now push w2 beyond top-2 as well.
        for blog in make_blogs(4, keywords=("w2",), start_id=20):
            eng.insert(blog)
        eng.run_flush(now=200.0)
        assert m1.blog_id not in eng.raw
        assert disk.contains_record(m1.blog_id)
        assert m1.blog_id not in [p.blog_id for p in eng.lookup("w1").candidates]
        assert m1.blog_id not in [p.blog_id for p in eng.lookup("w2").candidates]
        eng.check_integrity()

    def test_mk_disabled_for_single_key_attribute(self, model, disk):
        kwargs = engine_kwargs(model, disk, k=2, capacity=100_000)
        kwargs["attribute"] = UserAttribute()
        eng = KFlushingEngine(mk=True, **kwargs)
        assert not eng.mk_enabled
        for blog in make_blogs(5, user_id=7):
            eng.insert(blog)
        eng.run_flush(now=100.0)
        # Behaves exactly like plain kFlushing: trimmed to k.
        assert len(eng.index.get(7)) == 2


class TestPhase2MK:
    def test_spares_postings_living_in_k_filled_entries(self, model, disk):
        """Section IV-D Phase 2 rule (3): a posting of a selected victim
        entry survives when its record exists in a >=k entry."""
        eng = mk_engine(model, disk, k=3, capacity=100_000, flush_fraction=0.5)
        # m1 lives in frequent key "hot" and rare key "rare".
        m1 = make_blog(keywords=("hot", "rare"), blog_id=1, timestamp=1.0)
        eng.insert(m1)
        for blog in make_blogs(2, keywords=("hot",), start_id=10):
            eng.insert(blog)
        # Many rare keys to give Phase 2 victims.
        for i in range(40):
            eng.insert(
                make_blog(keywords=(f"cold{i}",), blog_id=100 + i, timestamp=50.0 + i)
            )
        eng.run_flush(now=1000.0)
        rare_entry = eng.index.get("rare")
        if rare_entry is not None:
            # If "rare" was selected, m1 must have been spared.
            assert [p.blog_id for p in rare_entry] == [m1.blog_id]
        assert m1.blog_id in eng.raw
        eng.check_integrity()

    def test_budget_still_met(self, model, disk):
        eng = mk_engine(model, disk, k=3, capacity=50_000, flush_fraction=0.3)
        i = 0
        while not eng.needs_flush():
            eng.insert(make_blog(keywords=(f"kw{i % 40}", f"kw{(i + 1) % 40}")))
            i += 1
        report = eng.run_flush(now=1e6)
        assert report.freed_bytes >= report.target_bytes

    def test_integrity_across_repeated_flushes(self, model, disk):
        eng = mk_engine(model, disk, k=3, capacity=40_000, flush_fraction=0.25)
        i = 0
        for _ in range(3000):
            keywords = (f"kw{i % 25}", f"kw{(i * 7) % 25}")
            keywords = tuple(dict.fromkeys(keywords))
            eng.insert(make_blog(keywords=keywords))
            i += 1
            if eng.needs_flush():
                eng.run_flush(now=1e9 + i)
        assert len(eng.flush_reports) > 1
        eng.check_integrity()


class TestNaming:
    def test_engine_name(self, model, disk):
        assert mk_engine(model, disk).name == "kflushing-mk"

    def test_plain_name(self, model, disk):
        eng = KFlushingEngine(mk=False, **engine_kwargs(model, disk))
        assert eng.name == "kflushing"
