"""Unit tests for the flush buffer staging area."""

import pytest

from repro.storage.disk import DiskArchive
from repro.storage.flush_buffer import FlushBuffer
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting
from tests.conftest import make_blog


def posting(i):
    return Posting(float(i), float(i), i)


@pytest.fixture
def setup():
    model = MemoryModel()
    disk = DiskArchive(model)
    return model, disk, FlushBuffer(model, disk)


class TestBuffering:
    def test_starts_empty(self, setup):
        _, _, buffer = setup
        assert buffer.is_empty
        assert buffer.bytes_buffered == 0
        assert buffer.peak_bytes == 0

    def test_add_record_tracks_bytes(self, setup):
        model, _, buffer = setup
        blog = make_blog()
        buffer.add_record(blog)
        assert buffer.bytes_buffered == model.record_bytes(blog)
        assert not buffer.is_empty

    def test_add_posting_tracks_bytes(self, setup):
        model, _, buffer = setup
        buffer.add_posting("a", posting(1))
        assert buffer.bytes_buffered == model.posting_bytes

    def test_add_postings_batch(self, setup):
        model, _, buffer = setup
        buffer.add_postings("a", [posting(1), posting(2)])
        assert buffer.bytes_buffered == 2 * model.posting_bytes

    def test_add_postings_empty_is_noop(self, setup):
        _, _, buffer = setup
        buffer.add_postings("a", [])
        assert buffer.is_empty


class TestCommit:
    def test_commit_moves_to_disk_and_resets(self, setup):
        _, disk, buffer = setup
        blog = make_blog(keywords=("a",))
        buffer.add_record(blog)
        buffer.add_posting("a", posting(blog.blog_id))
        written = buffer.commit()
        assert written > 0
        assert buffer.is_empty
        assert disk.contains_record(blog.blog_id)
        assert disk.posting_count("a") == 1

    def test_commit_empty_is_free(self, setup):
        _, disk, buffer = setup
        assert buffer.commit() == 0
        assert disk.stats.flush_batches == 0

    def test_single_batch_per_commit(self, setup):
        _, disk, buffer = setup
        for i in range(5):
            buffer.add_posting("a", posting(i))
        buffer.commit()
        assert disk.stats.flush_batches == 1

    def test_peak_survives_commit(self, setup):
        model, _, buffer = setup
        blog = make_blog()
        buffer.add_record(blog)
        peak = buffer.peak_bytes
        buffer.commit()
        assert buffer.peak_bytes == peak
        assert peak == model.record_bytes(blog)

    def test_peak_is_max_over_fills(self, setup):
        _, _, buffer = setup
        buffer.add_postings("a", [posting(i) for i in range(10)])
        buffer.commit()
        buffer.add_posting("a", posting(99))
        buffer.commit()
        model = MemoryModel()
        assert buffer.peak_bytes == 10 * model.posting_bytes
