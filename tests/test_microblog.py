"""Unit tests for the Microblog record and GeoPoint."""

import pytest

from repro.model.microblog import GeoPoint, Microblog


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint(40.7, -74.0)
        assert p.latitude == 40.7
        assert p.longitude == -74.0

    @pytest.mark.parametrize("lat", [-90.0, 0.0, 90.0])
    def test_latitude_bounds_inclusive(self, lat):
        assert GeoPoint(lat, 0.0).latitude == lat

    @pytest.mark.parametrize("lat", [-90.1, 91.0, 180.0])
    def test_latitude_out_of_range(self, lat):
        with pytest.raises(ValueError, match="latitude"):
            GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lon", [-180.1, 181.0])
    def test_longitude_out_of_range(self, lon):
        with pytest.raises(ValueError, match="longitude"):
            GeoPoint(0.0, lon)

    def test_is_frozen(self):
        p = GeoPoint(1.0, 2.0)
        with pytest.raises(AttributeError):
            p.latitude = 5.0


class TestMicroblog:
    def test_basic_construction(self):
        blog = Microblog(
            blog_id=7,
            timestamp=12.5,
            user_id=3,
            text="go team",
            keywords=("nba", "finals"),
            followers=10,
        )
        assert blog.blog_id == 7
        assert blog.timestamp == 12.5
        assert blog.keywords == ("nba", "finals")
        assert blog.keyword_count == 2
        assert blog.followers == 10

    def test_defaults(self):
        blog = Microblog(blog_id=1, timestamp=0.0, user_id=0)
        assert blog.text == ""
        assert blog.keywords == ()
        assert blog.location is None
        assert blog.followers == 0
        assert not blog.has_location

    def test_negative_blog_id_rejected(self):
        with pytest.raises(ValueError, match="blog_id"):
            Microblog(blog_id=-1, timestamp=0.0, user_id=0)

    def test_negative_followers_rejected(self):
        with pytest.raises(ValueError, match="followers"):
            Microblog(blog_id=1, timestamp=0.0, user_id=0, followers=-5)

    def test_empty_keyword_rejected(self):
        with pytest.raises(ValueError, match="keywords"):
            Microblog(blog_id=1, timestamp=0.0, user_id=0, keywords=("ok", ""))

    def test_keywords_iterable_coerced_to_tuple(self):
        blog = Microblog(blog_id=1, timestamp=0.0, user_id=0, keywords=["a", "b"])
        assert blog.keywords == ("a", "b")
        assert isinstance(blog.keywords, tuple)

    def test_has_location(self):
        blog = Microblog(
            blog_id=1, timestamp=0.0, user_id=0, location=GeoPoint(1.0, 2.0)
        )
        assert blog.has_location

    def test_with_keywords_returns_copy(self):
        blog = Microblog(blog_id=1, timestamp=0.0, user_id=0, keywords=("a",))
        other = blog.with_keywords(["x", "y"])
        assert other.keywords == ("x", "y")
        assert blog.keywords == ("a",)
        assert other.blog_id == blog.blog_id

    def test_age_at(self):
        blog = Microblog(blog_id=1, timestamp=10.0, user_id=0)
        assert blog.age_at(25.0) == 15.0

    def test_is_frozen(self):
        blog = Microblog(blog_id=1, timestamp=0.0, user_id=0)
        with pytest.raises(AttributeError):
            blog.text = "nope"

    def test_str_contains_id_and_tags(self):
        blog = Microblog(
            blog_id=9, timestamp=1.0, user_id=2, text="hi", keywords=("tag",)
        )
        rendered = str(blog)
        assert "9" in rendered
        assert "#tag" in rendered

    def test_hashable(self):
        blog = Microblog(blog_id=1, timestamp=0.0, user_id=0, keywords=("a",))
        assert blog in {blog}
