"""Unit tests for the LRU (H-Store anti-cache) baseline."""

import pytest

from repro.core.lru import LRUEngine
from repro.core.recency_list import RecencyList
from repro.storage.disk import DiskArchive
from repro.storage.memory_model import MemoryModel
from tests.conftest import engine_kwargs, make_blog, make_blogs


@pytest.fixture
def model():
    return MemoryModel()


@pytest.fixture
def disk(model):
    return DiskArchive(model)


def engine(model, disk, **overrides):
    kwargs = engine_kwargs(
        model,
        disk,
        k=overrides.pop("k", 3),
        capacity=overrides.pop("capacity", 20_000),
        flush_fraction=overrides.pop("flush_fraction", 0.25),
    )
    kwargs.update(overrides)
    return LRUEngine(**kwargs)


class TestRecencyList:
    def test_push_and_pop_fifo_without_touches(self):
        lst = RecencyList()
        for i in range(5):
            lst.push(i)
        assert len(lst) == 5
        assert lst.pop_lru() == 0
        assert lst.pop_lru() == 1

    def test_touch_moves_to_mru(self):
        lst = RecencyList()
        for i in range(3):
            lst.push(i)
        assert lst.touch(0)
        assert lst.pop_lru() == 1
        assert lst.pop_lru() == 2
        assert lst.pop_lru() == 0

    def test_touch_missing_returns_false(self):
        lst = RecencyList()
        assert not lst.touch(42)

    def test_pop_empty_returns_none(self):
        assert RecencyList().pop_lru() is None

    def test_remove_specific(self):
        lst = RecencyList()
        for i in range(3):
            lst.push(i)
        assert lst.remove(1)
        assert not lst.remove(1)
        assert list(lst.ids_lru_to_mru()) == [0, 2]

    def test_duplicate_push_rejected(self):
        lst = RecencyList()
        lst.push(1)
        with pytest.raises(ValueError):
            lst.push(1)

    def test_contains(self):
        lst = RecencyList()
        lst.push(9)
        assert 9 in lst
        assert 1 not in lst


class TestEviction:
    def test_evicts_least_recently_used(self, model, disk):
        eng = engine(model, disk, capacity=10**6)
        blogs = make_blogs(10, keywords=("k",))
        for blog in blogs:
            eng.insert(blog)
        # Touch the oldest three so they become most recent.
        protected = [b.blog_id for b in blogs[:3]]
        eng.note_query(["k"], protected, now=1e6)
        eng.flush_fraction = 0.3
        eng.run_flush(now=1e6)
        remaining = {r.blog_id for r in eng.raw}
        assert set(protected) <= remaining
        eng.check_integrity()

    def test_untouched_eviction_is_arrival_order(self, model, disk):
        eng = engine(model, disk, capacity=10**6, flush_fraction=0.4)
        blogs = make_blogs(10, keywords=("k",))
        for blog in blogs:
            eng.insert(blog)
        eng.run_flush(now=1e6)
        remaining = {r.blog_id for r in eng.raw}
        flushed = {b.blog_id for b in blogs} - remaining
        assert flushed
        assert max(flushed) < min(remaining)

    def test_eviction_punches_hole_and_raises_floor(self, model, disk):
        eng = engine(model, disk, capacity=10**6)
        blogs = make_blogs(6, keywords=("k",))
        for blog in blogs:
            eng.insert(blog)
        # Make a mid-list record the LRU victim: touch everything else.
        victim = blogs[2]
        others = [b.blog_id for b in blogs if b.blog_id != victim.blog_id]
        eng.note_query(["k"], others, now=1e6)
        eng.flush_fraction = 0.01  # evict just one record's worth
        eng.run_flush(now=1e6)
        assert victim.blog_id not in eng.raw
        lookup = eng.lookup("k")
        ids = [p.blog_id for p in lookup.candidates]
        assert victim.blog_id not in ids
        # Everything ranked at or below the hole is unprovable now.
        assert lookup.floor >= (victim.timestamp, victim.timestamp, victim.blog_id)

    def test_multi_keyword_record_removed_from_all_entries(self, model, disk):
        eng = engine(model, disk, capacity=10**6, flush_fraction=0.01)
        blog = make_blog(keywords=("a", "b"))
        eng.insert(blog)
        eng.run_flush(now=1e6)
        assert blog.blog_id not in eng.raw
        assert eng.index.get("a") is None  # entry became empty -> removed
        assert eng.index.get("b") is None
        assert disk.contains_record(blog.blog_id)
        assert disk.posting_count("a") == 1
        eng.check_integrity()

    def test_flush_meets_budget(self, model, disk):
        eng = engine(model, disk, capacity=30_000, flush_fraction=0.2)
        i = 0
        while not eng.needs_flush():
            eng.insert(make_blog(keywords=(f"kw{i % 7}",)))
            i += 1
        report = eng.run_flush(now=1e6)
        assert report.freed_bytes >= report.target_bytes
        assert report.bytes_written_to_disk > 0


class TestBookkeeping:
    def test_query_touch_protects_records(self, model, disk):
        eng = engine(model, disk, capacity=10**6)
        first = make_blog(keywords=("k",))
        eng.insert(first)
        rest = make_blogs(5, keywords=("k",))
        for blog in rest:
            eng.insert(blog)
        eng.note_query(["k"], [first.blog_id], now=1e6)
        eng.flush_fraction = 0.15
        eng.run_flush(now=1e6)
        assert first.blog_id in eng.raw

    def test_touch_of_nonresident_id_ignored(self, model, disk):
        eng = engine(model, disk)
        eng.insert(make_blog(keywords=("k",)))
        eng.note_query(["k"], [999_999], now=1.0)  # disk id: no-op

    def test_policy_overhead_scales_per_item(self, model, disk):
        eng = engine(model, disk, capacity=10**6)
        for blog in make_blogs(50):
            eng.insert(blog)
        assert eng.policy_overhead_bytes >= 50 * model.lru_node_bytes

    def test_k_filled_respects_holes(self, model, disk):
        eng = engine(model, disk, capacity=10**6, k=3)
        blogs = make_blogs(3, keywords=("k",))
        for blog in blogs:
            eng.insert(blog)
        assert eng.k_filled_count() == 1
        # Evict the middle record: 2 postings remain, plus a hole.
        eng.note_query(["k"], [blogs[0].blog_id, blogs[2].blog_id], now=1e6)
        eng.flush_fraction = 0.0001
        eng.run_flush(now=1e6)
        assert eng.k_filled_count() == 0

    def test_set_k_propagates(self, model, disk):
        eng = engine(model, disk)
        eng.set_k(7)
        assert eng.index.k == 7
