"""Unit tests for keyword extraction and normalisation."""

import pytest

from repro.model.keywords import (
    STOPWORDS,
    extract_hashtags,
    extract_terms,
    normalize_all,
    normalize_keyword,
)


class TestNormalizeKeyword:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("Obama", "obama"),
            ("#NBA", "nba"),
            ("  #Finals  ", "finals"),
            ("already", "already"),
            ("", ""),
            ("#", ""),
            ("   ", ""),
        ],
    )
    def test_normalisation(self, raw, expected):
        assert normalize_keyword(raw) == expected


class TestExtractHashtags:
    def test_basic(self):
        assert extract_hashtags("Breaking #NBA finals! #obama") == ("nba", "obama")

    def test_deduplicates_case_insensitively(self):
        assert extract_hashtags("#NBA #nba #Nba") == ("nba",)

    def test_preserves_first_appearance_order(self):
        assert extract_hashtags("#zeta then #alpha then #zeta") == ("zeta", "alpha")

    def test_no_hashtags(self):
        assert extract_hashtags("plain text here") == ()

    def test_hashtag_with_digits_and_hyphen(self):
        assert extract_hashtags("#win2024 #covid-19") == ("win2024", "covid-19")

    def test_bare_hash_ignored(self):
        assert extract_hashtags("# not a tag") == ()


class TestExtractTerms:
    def test_drops_stopwords(self):
        terms = extract_terms("the game was in the final minute")
        assert terms == ("game", "final", "minute")

    def test_limit(self):
        terms = extract_terms("alpha bravo charlie delta", limit=2)
        assert terms == ("alpha", "bravo")

    def test_deduplicates(self):
        assert extract_terms("rain rain rain storm") == ("rain", "storm")

    def test_single_letters_skipped(self):
        # The term regex requires at least two characters.
        assert extract_terms("x y game") == ("game",)

    def test_empty_text(self):
        assert extract_terms("") == ()

    def test_stopwords_is_frozen(self):
        assert "the" in STOPWORDS
        assert isinstance(STOPWORDS, frozenset)


class TestNormalizeAll:
    def test_drops_empties_and_duplicates(self):
        assert normalize_all(["#A", "a", "", "B", "#"]) == ("a", "b")

    def test_empty_input(self):
        assert normalize_all([]) == ()
