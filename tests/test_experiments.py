"""Tests for the experiment harness: presets, runner, figures, reporting."""

import pytest

from repro.experiments.figures import (
    FigureResult,
    SweepResult,
    TableResult,
    fig1_snapshot,
    fig5_timeline,
)
from repro.experiments.report import format_figure, format_panel
from repro.experiments.runner import TrialSpec, run_digestion_stress, run_trial
from repro.experiments.scale import (
    PRESETS,
    ScalePreset,
    TINY,
    preset_from_env,
)

#: A micro preset so harness tests finish in well under a second each.
MICRO = ScalePreset(
    name="micro",
    bytes_per_gb=8_000,
    vocabulary_size=400,
    user_count=400,
    warm_flushes=2,
    max_warm_records=30_000,
    eval_records=800,
    queries_per_record=1.0,
    and_scan_depth=100,
    and_disk_limit=100,
)


class TestScalePresets:
    def test_registry(self):
        assert set(PRESETS) == {"tiny", "small", "full"}

    def test_capacity_scaling(self):
        assert TINY.capacity_bytes(30.0) == 30 * TINY.bytes_per_gb
        assert TINY.capacity_bytes(0.0) == 1  # clamped

    def test_preset_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert preset_from_env().name == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            preset_from_env()
        monkeypatch.delenv("REPRO_SCALE")
        assert preset_from_env("full").name == "full"

    def test_regime_holds_for_all_presets(self):
        """Memory must hold far fewer postings than vocab*k for the
        paper's phenomena to exist at any preset."""
        for preset in PRESETS.values():
            capacity_records = preset.capacity_bytes(30.0) / 150
            assert capacity_records < preset.vocabulary_size * 20


class TestRunTrial:
    @pytest.mark.parametrize("policy", ["fifo", "kflushing", "kflushing-mk", "lru"])
    def test_steady_state_trial(self, policy):
        result = run_trial(TrialSpec(policy=policy, scale=MICRO, seed=3))
        assert result.flush_count > 0
        assert result.queries_run > 0
        assert 0.0 <= result.hit_ratio <= 1.0
        assert result.k_filled >= 0
        assert result.insert_rate > 0
        assert result.effective_digestion_rate > 0

    def test_hit_ratio_by_mode_keys(self):
        result = run_trial(TrialSpec(policy="kflushing", scale=MICRO, seed=3))
        assert set(result.hit_ratio_by_mode) == {"single", "and", "or"}

    def test_user_attribute_trial(self):
        result = run_trial(
            TrialSpec(policy="kflushing", attribute="user", scale=MICRO, seed=3)
        )
        assert result.queries_run > 0

    def test_spatial_attribute_trial(self):
        result = run_trial(
            TrialSpec(policy="fifo", attribute="spatial", scale=MICRO, seed=3)
        )
        assert result.queries_run > 0

    def test_kflushing_beats_fifo_on_k_filled(self):
        fifo = run_trial(TrialSpec(policy="fifo", scale=MICRO, seed=3))
        kf = run_trial(TrialSpec(policy="kflushing", scale=MICRO, seed=3))
        assert kf.k_filled > fifo.k_filled

    def test_digestion_stress(self):
        result = run_digestion_stress(
            TrialSpec(policy="fifo", scale=MICRO, seed=3),
            query_rate_per_wall_second=1000.0,
        )
        assert result.effective_digestion_rate > 0
        assert "queries_issued" in result.extras


class TestFigureHarness:
    def test_fig1_snapshot_structure(self):
        figure = fig1_snapshot(MICRO, seed=3)
        assert isinstance(figure, FigureResult)
        panel = figure.panels[0]
        assert isinstance(panel, TableResult)
        assert len(panel.rows) == 2
        fifo_row = next(r for r in panel.rows if r[0] == "fifo")
        kf_row = next(r for r in panel.rows if r[0] == "kflushing")
        # The paper's headline claim: temporal flushing wastes most of the
        # memory on useless postings; kFlushing does not.
        assert fifo_row[3] > kf_row[3]

    def test_fig5_saturation_shape(self):
        figure = fig5_timeline(MICRO, seed=3)
        panel = figure.panels[0]
        assert isinstance(panel, SweepResult)
        phase1 = panel.series["phase1-only"]
        full = panel.series["phases-1+2+3"]
        # Phase-1-only decays to (near) zero; the full policy keeps
        # freeing the budget.
        assert phase1[-1] < phase1[0] / 4
        assert full[-1] > phase1[-1]


class TestExtensions:
    def test_registered_in_figure_registry(self):
        from repro.experiments import ALL_FIGURES

        assert "ext1" in ALL_FIGURES
        assert "ext2" in ALL_FIGURES

    def test_and_semantics_strict_never_above_operational(self):
        from repro.experiments.extensions import ext_and_semantics

        figure = ext_and_semantics(MICRO, seed=3)
        panel = figure.panels[0]
        for policy in ("kflushing", "kflushing-mk"):
            operational, strict = panel.series[policy]
            assert strict <= operational + 1e-9

    def test_skew_sensitivity_structure(self):
        from repro.experiments.extensions import ext_skew_sensitivity, ZIPF_SWEEP

        # Two zipf points keep this a fast structural test.
        import repro.experiments.extensions as ext

        original = ext.ZIPF_SWEEP
        ext.ZIPF_SWEEP = (0.0, 1.0)
        try:
            figure = ext_skew_sensitivity(MICRO, seed=3)
        finally:
            ext.ZIPF_SWEEP = original
        panel = figure.panels[0]
        assert "kflushing-gain-pts" in panel.series
        assert len(panel.series["fifo"]) == 2


class TestReportFormatting:
    def test_format_sweep_panel(self):
        panel = SweepResult(
            panel_id="figX",
            title="demo",
            x_label="k",
            y_label="things",
            xs=[1, 2],
            series={"fifo": [10.0, 20.5], "lru": [1.0, 2.0]},
            expectation="fifo above lru",
        )
        text = format_panel(panel)
        assert "figX" in text
        assert "fifo" in text and "lru" in text
        assert "20.50" in text
        assert "paper shape" in text

    def test_format_table_panel(self):
        panel = TableResult(
            panel_id="figY",
            title="snap",
            headers=["a", "b"],
            rows=[["x", 1], ["y", 2]],
        )
        text = format_panel(panel)
        assert "a" in text and "y" in text

    def test_format_figure(self):
        figure = fig5_timeline(MICRO, seed=3)
        text = format_figure(figure)
        assert text.startswith("==== fig5")
