"""PR 4 disk-tier invariants: runs layout, read cache, lookup elision.

Three families of guarantees:

* **Differential** — the segmented-runs layout, the read cache, and
  negative-lookup elision each preserve the trial-level results of the
  paper's accounting: with the gates off, ``TrialResult`` is
  bit-identical to the flat pre-PR-4 archive; with a gate on, answers
  never change (only disk-lookup counts and simulated latency may).
* **Property** (hypothesis) — per-key disk postings stay globally
  rank-sorted and duplicate-free under arbitrary interleavings of
  commits (including re-flushed postings) and compactions, and always
  match the flat reference layout; cache-on lookups equal cache-off
  lookups under random interleavings of commits and reads.
* **Sharded routing** — ``_RoutedDisk.elides`` consults exactly the
  shard that owns the key.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.engine.sharded import build_system
from repro.experiments.runner import TrialSpec, run_trial
from repro.experiments.scale import ScalePreset
from repro.storage.disk import DiskArchive
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting
from repro.workload.queryload import QueryLoad, QueryLoadConfig
from repro.workload.stream import MicroblogStream, StreamConfig

#: TrialResult fields that must be bit-identical across equivalent
#: configurations (same tuple the sharding differential uses).
DETERMINISTIC_FIELDS = (
    "hit_ratio",
    "hit_ratio_by_mode",
    "k_filled",
    "flush_count",
    "records_ingested",
    "queries_run",
    "policy_overhead_bytes",
    "mean_flush_freed_fraction",
    "memory_utilization",
)

MICRO = ScalePreset(
    name="micro",
    bytes_per_gb=8_000,
    vocabulary_size=400,
    user_count=400,
    warm_flushes=2,
    max_warm_records=30_000,
    eval_records=800,
    queries_per_record=1.0,
    and_scan_depth=100,
    and_disk_limit=100,
)


def posting(i: int, score: float | None = None) -> Posting:
    return Posting(float(i) if score is None else score, float(i), i)


# ----------------------------------------------------------------------
# Differential: runs layout vs the flat pre-PR-4 reference
# ----------------------------------------------------------------------


class TestRunsLayoutDifferential:
    """DiskArchive.use_runs=False restores the pre-PR-4 archive; both
    layouts must produce bit-identical trials with the gates off."""

    @pytest.mark.parametrize("policy", ["fifo", "kflushing", "kflushing-mk", "lru"])
    def test_trial_identical_across_layouts(self, policy):
        new = run_trial(TrialSpec(policy=policy, scale=MICRO, seed=11))
        assert DiskArchive.use_runs is True
        DiskArchive.use_runs = False
        try:
            old = run_trial(TrialSpec(policy=policy, scale=MICRO, seed=11))
        finally:
            DiskArchive.use_runs = True
        for name in DETERMINISTIC_FIELDS:
            assert getattr(new, name) == getattr(old, name), name

    def test_simulated_io_identical_across_layouts(self):
        def io_seconds() -> float:
            config = SystemConfig(
                policy="kflushing",
                memory_capacity_bytes=200_000,
                and_scan_depth=100,
                and_disk_limit=100,
            )
            system = build_system(config)
            stream = MicroblogStream(
                StreamConfig(seed=5, vocabulary_size=300, with_locations=False)
            )
            load = QueryLoad(
                QueryLoadConfig(seed=6, mode="correlated"),
                MicroblogStream(
                    StreamConfig(seed=5, vocabulary_size=300, with_locations=False)
                ),
            )
            for i, record in enumerate(stream.take(8_000)):
                system.ingest(record)
                if i % 10 == 0:
                    system.search(load.next_query())
            return system.disk.stats.simulated_io_seconds

        new = io_seconds()
        DiskArchive.use_runs = False
        try:
            old = io_seconds()
        finally:
            DiskArchive.use_runs = True
        assert new == pytest.approx(old)


# ----------------------------------------------------------------------
# Differential: cache and elision change costs, never answers
# ----------------------------------------------------------------------


def _query_answers(
    config: SystemConfig,
    seed: int = 9,
    queries: int = 300,
    mode: str = "correlated",
    vocabulary: int = 300,
):
    """Ingest a fixed stream, run a fixed query load, return the answers."""
    system = build_system(config)
    stream = MicroblogStream(
        StreamConfig(seed=seed, vocabulary_size=vocabulary, with_locations=False)
    )
    system.ingest_many(stream.take(8_000))
    load = QueryLoad(
        QueryLoadConfig(seed=seed + 1, mode=mode),
        MicroblogStream(
            StreamConfig(seed=seed, vocabulary_size=vocabulary, with_locations=False)
        ),
    )
    answers = []
    for _ in range(queries):
        result = system.search(load.next_query())
        answers.append(
            (
                [(p.score, p.timestamp, p.blog_id) for p in result.postings],
                result.memory_hit,
                result.disk_lookups,
            )
        )
    return system, answers


class TestCacheDifferential:
    def test_cache_on_answers_equal_cache_off(self):
        base = SystemConfig(
            policy="kflushing",
            memory_capacity_bytes=200_000,
            and_scan_depth=100,
            and_disk_limit=100,
        )
        plain_sys, plain = _query_answers(base)
        cached_sys, cached = _query_answers(
            base.with_overrides(disk_cache_bytes=50_000)
        )
        assert plain == cached  # postings, hit flags, and lookup counts
        assert cached_sys.disk.stats.cache_hits > 0
        # Every hit skipped a seek, so the cached run is strictly cheaper.
        assert (
            cached_sys.disk.stats.simulated_io_seconds
            < plain_sys.disk.stats.simulated_io_seconds
        )

    def test_trial_results_identical_with_cache(self):
        plain = run_trial(TrialSpec(policy="kflushing", scale=MICRO, seed=11))
        cached = run_trial(
            TrialSpec(
                policy="kflushing", scale=MICRO, seed=11, disk_cache_bytes=50_000
            )
        )
        for name in DETERMINISTIC_FIELDS:
            assert getattr(plain, name) == getattr(cached, name), name


class TestElisionDifferential:
    def test_elision_never_changes_postings(self):
        base = SystemConfig(
            policy="kflushing",
            memory_capacity_bytes=200_000,
            and_scan_depth=100,
            and_disk_limit=100,
        )
        # A uniform load over a vocabulary larger than the stream ever
        # ingests guarantees queries against keys absent from the disk
        # index — exactly the lookups elision exists to skip.
        kwargs = dict(mode="uniform", vocabulary=2_000)
        plain_sys, plain = _query_answers(base, **kwargs)
        elided_sys, elided = _query_answers(
            base.with_overrides(disk_elide_empty=True), **kwargs
        )
        for (p_post, p_hit, p_lookups), (e_post, e_hit, e_lookups) in zip(
            plain, elided
        ):
            assert p_post == e_post
            assert p_hit == e_hit
            assert e_lookups <= p_lookups  # elision only removes lookups
        assert elided_sys.disk.stats.lookups_elided > 0
        assert (
            elided_sys.disk.stats.index_lookups
            < plain_sys.disk.stats.index_lookups
        )

    def test_trial_results_identical_with_elision(self):
        plain = run_trial(TrialSpec(policy="kflushing", scale=MICRO, seed=11))
        elided = run_trial(
            TrialSpec(
                policy="kflushing", scale=MICRO, seed=11, disk_elide_empty=True
            )
        )
        for name in DETERMINISTIC_FIELDS:
            assert getattr(plain, name) == getattr(elided, name), name


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------

#: A commit interleaving: each element is one flush batch mapping a key
#: (from a tiny alphabet, so batches collide) to posting ids (from a
#: small id range, so re-flushed duplicates occur often).
batches_strategy = st.lists(
    st.dictionaries(
        st.sampled_from(("a", "b", "c")),
        st.lists(st.integers(min_value=0, max_value=120), min_size=1, max_size=20),
        min_size=1,
        max_size=3,
    ),
    min_size=1,
    max_size=25,
)


@given(batches_strategy, st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_postings_rank_sorted_after_any_interleaving(batches, max_runs):
    """Global rank order and dedup survive arbitrary commit/compaction
    interleavings — and always match the flat reference layout."""
    model = MemoryModel()
    runs = DiskArchive(model, max_runs_per_key=max_runs)
    flat = DiskArchive(model, use_runs=False)
    committed: dict[str, set[int]] = {}
    for by_key in batches:
        batch = {key: [posting(i) for i in ids] for key, ids in by_key.items()}
        runs.commit_flush([], batch)
        flat.commit_flush([], batch)
        for key, ids in by_key.items():
            committed.setdefault(key, set()).update(ids)
    for key, ids in committed.items():
        result = list(runs.lookup(key))
        sort_keys = [p.sort_key for p in result]
        assert sort_keys == sorted(sort_keys, reverse=True)
        assert {p.blog_id for p in result} == ids
        assert len(result) == len(ids)  # no duplicates survive
        assert runs.run_count(key) <= max_runs
        assert result == list(flat.lookup(key))
        assert list(runs.lookup(key, limit=7)) == list(flat.lookup(key, limit=7))


@given(
    st.lists(
        st.tuples(
            st.sampled_from(("commit", "read", "read_unbounded")),
            st.sampled_from(("a", "b")),
            st.lists(st.integers(min_value=0, max_value=80), min_size=1, max_size=10),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_cached_reads_equal_uncached_reads(ops):
    """Interleaved commits and reads: the cached archive answers every
    read exactly like the uncached one (invalidation keeps it fresh)."""
    model = MemoryModel()
    cached = DiskArchive(model, cache_bytes=2_000)
    plain = DiskArchive(model)
    for op, key, ids in ops:
        if op == "commit":
            batch = {key: [posting(i) for i in ids]}
            cached.commit_flush([], batch)
            plain.commit_flush([], batch)
        elif op == "read":
            limit = 1 + len(ids) % 9
            assert list(cached.lookup(key, limit=limit)) == list(
                plain.lookup(key, limit=limit)
            )
        else:
            assert list(cached.lookup(key)) == list(plain.lookup(key))
    assert cached.stats.index_lookups == plain.stats.index_lookups


# ----------------------------------------------------------------------
# Sharded routing
# ----------------------------------------------------------------------


class TestShardedElision:
    def test_routed_elides_consults_owning_shard(self):
        config = SystemConfig(
            policy="kflushing",
            memory_capacity_bytes=250_000,
            shards=4,
            disk_elide_empty=True,
        )
        system = build_system(config)
        stream = MicroblogStream(
            StreamConfig(seed=3, vocabulary_size=300, with_locations=False)
        )
        system.ingest_many(stream.take(9_000))
        routed = system.executor._disk
        assert routed.elides("a-keyword-never-ingested-xyz") is True
        total_elided = sum(
            shard.disk.stats.lookups_elided for shard in system.shards
        )
        assert total_elided == 1
        # A key some shard's archive holds must never be elided.
        flushed_keys = [
            key
            for shard in system.shards
            if shard.disk.key_count
            for key in [next(iter(shard.disk._index))]
        ]
        assert flushed_keys, "workload should have flushed postings"
        assert routed.elides(flushed_keys[0]) is False

    def test_per_shard_cache_slices_sum_to_budget(self):
        config = SystemConfig(
            policy="kflushing",
            memory_capacity_bytes=250_000,
            shards=3,
            disk_cache_bytes=10_001,
        )
        system = build_system(config)
        capacities = [shard.disk.cache.capacity_bytes for shard in system.shards]
        assert sum(capacities) == 10_001
        assert max(capacities) - min(capacities) <= 1

    def test_sharded_answers_unchanged_by_gates(self):
        base = SystemConfig(
            policy="kflushing",
            memory_capacity_bytes=250_000,
            shards=2,
            and_scan_depth=100,
            and_disk_limit=100,
        )
        _, plain = _query_answers(base)
        _, gated = _query_answers(
            base.with_overrides(disk_cache_bytes=40_000, disk_elide_empty=True)
        )
        for (p_post, p_hit, _), (g_post, g_hit, _) in zip(plain, gated):
            assert p_post == g_post
            assert p_hit == g_hit
