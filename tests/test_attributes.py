"""Unit tests for attribute extractors."""

import pytest

from repro.errors import ConfigurationError
from repro.model.attributes import (
    KeywordAttribute,
    SpatialGridAttribute,
    UserAttribute,
    attribute_from_name,
)
from repro.model.microblog import GeoPoint
from tests.conftest import make_blog


class TestKeywordAttribute:
    def test_keys_are_keywords(self):
        blog = make_blog(keywords=("nba", "finals"))
        assert KeywordAttribute().keys(blog) == ("nba", "finals")

    def test_no_keywords_means_no_keys(self):
        blog = make_blog(keywords=())
        assert KeywordAttribute().keys(blog) == ()

    def test_is_multi_key(self):
        assert KeywordAttribute().multi_key is True


class TestUserAttribute:
    def test_single_key_is_user_id(self):
        blog = make_blog(user_id=99)
        assert UserAttribute().keys(blog) == (99,)

    def test_not_multi_key(self):
        assert UserAttribute().multi_key is False


class TestSpatialGridAttribute:
    def test_no_location_means_no_keys(self):
        blog = make_blog()
        assert SpatialGridAttribute().keys(blog) == ()

    def test_key_is_tile(self):
        attr = SpatialGridAttribute(tile_side_degrees=1.0)
        blog = make_blog(location=GeoPoint(40.5, -74.5))
        assert attr.keys(blog) == ((-75, 40),)

    def test_tile_of_origin(self):
        attr = SpatialGridAttribute(tile_side_degrees=1.0)
        assert attr.tile_of(0.0, 0.0) == (0, 0)
        assert attr.tile_of(-0.5, -0.5) == (-1, -1)

    def test_tile_boundaries_belong_to_upper_tile(self):
        attr = SpatialGridAttribute(tile_side_degrees=0.5)
        assert attr.tile_of(0.5, 0.5) == (1, 1)
        assert attr.tile_of(0.4999, 0.4999) == (0, 0)

    def test_nearby_points_share_a_tile(self):
        attr = SpatialGridAttribute(tile_side_degrees=0.03)
        a = attr.tile_of(40.7128, -74.0060)
        b = attr.tile_of(40.7130, -74.0062)
        assert a == b

    def test_distant_points_differ(self):
        attr = SpatialGridAttribute(tile_side_degrees=0.03)
        assert attr.tile_of(40.71, -74.0) != attr.tile_of(34.05, -118.24)

    def test_tile_bounds_roundtrip(self):
        attr = SpatialGridAttribute(tile_side_degrees=0.25)
        tile = attr.tile_of(10.1, 20.2)
        min_lon, min_lat, max_lon, max_lat = attr.tile_bounds(tile)
        assert min_lat <= 10.1 < max_lat
        assert min_lon <= 20.2 < max_lon
        assert max_lat - min_lat == pytest.approx(0.25)

    def test_invalid_tile_side_rejected(self):
        with pytest.raises(ConfigurationError):
            SpatialGridAttribute(tile_side_degrees=0.0)

    def test_not_multi_key(self):
        assert SpatialGridAttribute().multi_key is False


class TestAttributeFromName:
    def test_builtins(self):
        assert isinstance(attribute_from_name("keyword"), KeywordAttribute)
        assert isinstance(attribute_from_name("user"), UserAttribute)
        assert isinstance(attribute_from_name("spatial"), SpatialGridAttribute)

    def test_spatial_kwargs_forwarded(self):
        attr = attribute_from_name("spatial", tile_side_degrees=2.0)
        assert attr.tile_side_degrees == 2.0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="keyword"):
            attribute_from_name("nope")
