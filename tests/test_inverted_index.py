"""Unit tests for the hash inverted index and its overflow list L."""

import pytest

from repro.storage.inverted_index import HashInvertedIndex
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import MIN_SORT_KEY, Posting


def posting(i):
    return Posting(float(i), float(i), i)


@pytest.fixture
def model():
    return MemoryModel()


@pytest.fixture
def index(model):
    return HashInvertedIndex(model, k=3)


def fill(index, key, ids):
    for i in ids:
        index.insert(key, posting(i), now=float(i))


class TestInsert:
    def test_creates_entry(self, index):
        fill(index, "a", [1])
        assert "a" in index
        assert len(index) == 1
        assert len(index.get("a")) == 1

    def test_missing_key_returns_none(self, index):
        assert index.get("nope") is None

    def test_bytes_accounting(self, index, model):
        fill(index, "a", [1, 2])
        fill(index, "b", [3])
        expected = model.entry_bytes(2) + model.entry_bytes(1)
        assert index.bytes_used == expected

    def test_invalid_k_rejected(self, model):
        with pytest.raises(ValueError):
            HashInvertedIndex(model, k=0)

    def test_created_floor_seeded(self, index):
        floor = (5.0, 5.0, 99)
        index.insert("a", posting(10), now=10.0, created_floor=floor)
        assert index.get("a").floor == floor

    def test_existing_entry_keeps_floor(self, index):
        index.insert("a", posting(1), now=1.0)
        index.insert("a", posting(2), now=2.0, created_floor=(9.0, 9.0, 9))
        assert index.get("a").floor == MIN_SORT_KEY


class TestOverflowList:
    def test_under_k_not_in_overflow(self, index):
        fill(index, "a", [1, 2, 3])
        assert index.overflow_keys == frozenset()

    def test_beyond_k_enters_overflow(self, index):
        fill(index, "a", [1, 2, 3, 4])
        assert index.overflow_keys == frozenset({"a"})

    def test_clear_and_wipe(self, index):
        fill(index, "a", [1, 2, 3, 4])
        fill(index, "b", [5, 6, 7, 8])
        index.clear_overflow("a")
        assert index.overflow_keys == frozenset({"b"})
        index.wipe_overflow()
        assert index.overflow_keys == frozenset()

    def test_remove_entry_clears_overflow(self, index):
        fill(index, "a", [1, 2, 3, 4])
        index.remove_entry("a")
        assert index.overflow_keys == frozenset()


class TestKFilled:
    def test_counts_keys_with_k_provable(self, index):
        fill(index, "hot", [1, 2, 3, 4, 5])
        fill(index, "warm", [6, 7, 8])
        fill(index, "cold", [9])
        assert index.k_filled_count() == 2

    def test_respects_floors(self, index):
        fill(index, "a", [1, 2, 3])
        index.get("a").remove_id(2)  # punches a hole, floor rises
        index.charge_removed_postings(1)
        fill(index, "a", [4])  # back to 3 postings, but 1 is below floor
        assert index.k_filled_count() == 0

    def test_explicit_threshold(self, index):
        fill(index, "a", [1, 2])
        assert index.k_filled_count(2) == 1
        assert index.k_filled_count(3) == 0


class TestSetK:
    def test_rebuilds_overflow_on_decrease(self, index):
        fill(index, "a", [1, 2, 3])  # exactly k=3: not overflow
        index.set_k(2)
        assert index.overflow_keys == frozenset({"a"})
        assert index.k == 2

    def test_rebuilds_overflow_on_increase(self, index):
        fill(index, "a", [1, 2, 3, 4])
        index.set_k(10)
        assert index.overflow_keys == frozenset()

    def test_same_k_noop(self, index):
        fill(index, "a", [1, 2, 3, 4])
        index.set_k(3)
        assert index.overflow_keys == frozenset({"a"})

    def test_invalid_k_rejected(self, index):
        with pytest.raises(ValueError):
            index.set_k(0)


class TestRemovalAccounting:
    def test_remove_entry_frees_bytes(self, index, model):
        fill(index, "a", [1, 2])
        fill(index, "b", [3])
        entry = index.remove_entry("a")
        assert len(entry) == 2
        assert index.bytes_used == model.entry_bytes(1)
        assert "a" not in index

    def test_charge_removed_postings(self, index, model):
        fill(index, "a", [1, 2, 3])
        entry = index.get("a")
        removed = entry.trim_beyond(1)
        freed = index.charge_removed_postings(len(removed))
        assert freed == 2 * model.posting_bytes
        index.check_integrity()

    def test_negative_charge_rejected(self, index):
        with pytest.raises(ValueError):
            index.charge_removed_postings(-1)

    def test_posting_count_tracks(self, index):
        fill(index, "a", [1, 2, 3])
        fill(index, "b", [4])
        assert index.posting_count() == 4
        index.remove_entry("b")
        assert index.posting_count() == 3


class TestTouchQuery:
    def test_updates_last_query(self, index):
        fill(index, "a", [1])
        index.touch_query("a", 50.0)
        assert index.get("a").last_query == 50.0

    def test_missing_key_is_noop(self, index):
        index.touch_query("ghost", 1.0)  # must not raise

    def test_frequency_snapshot(self, index):
        fill(index, "a", [1, 2])
        fill(index, "b", [3])
        assert index.frequency_snapshot() == {"a": 2, "b": 1}
