"""SLO engine, flight recorder, and resource watermarks (PR 10).

Covers the spec parser, the tick-based tracker (windows, error budgets,
burn rates, breach/recovery transitions), the metric probes, the
flight-recorder ring and its black-box dump, watermark accounting, the
``/slo`` + breach-aware ``/healthz`` endpoints, the ``repro slo`` CLI,
and the default-off guarantee: with no spec configured, trial results
are bit-identical to a build without any of this machinery.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from dataclasses import asdict

import pytest

from repro.cli import main as cli_main
from repro.config import SystemConfig
from repro.engine.sharded import build_system
from repro.engine.system import MicroblogSystem
from repro.errors import ConfigurationError
from repro.experiments.runner import TrialSpec, run_trial
from repro.obs import (
    FlightRecorder,
    Instrumentation,
    ListSink,
    MetricsRegistry,
    OpsServer,
    SLOSpec,
    SLOTracker,
    WatermarkTracker,
    attach_flight_recorder,
    evaluate_registry,
)
from repro.storage.interner import reset_global_interner
from repro.workload.stream import MicroblogStream, StreamConfig
from tests.test_experiments import MICRO

# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------

_SPEC = {
    "objectives": [
        {"name": "latency", "metric": "query.simulated_latency_seconds.p99",
         "max": 0.5},
        {"metric": "hit_ratio", "min": 0.6},
    ]
}


class TestSLOSpec:
    def test_from_dict_applies_defaults(self):
        spec = SLOSpec.from_dict(_SPEC)
        assert len(spec.objectives) == 2
        latency = spec.objectives[0]
        assert (latency.name, latency.op, latency.threshold) == ("latency", "<=", 0.5)
        assert latency.budget == 0.1
        assert latency.slow_window == 60
        hit = spec.objectives[1]
        # Name defaults to the metric selector.
        assert (hit.name, hit.op) == ("hit_ratio", ">=")

    def test_defaults_block_overrides(self):
        spec = SLOSpec.from_dict(
            {"defaults": {"budget": 0, "slow_window": 7},
             "objectives": [{"metric": "flush.count", "min": 1}]}
        )
        assert spec.objectives[0].budget == 0
        assert spec.objectives[0].slow_window == 7

    @pytest.mark.parametrize(
        "bad",
        [
            {},
            {"objectives": []},
            {"objectives": [{"metric": "m"}]},  # neither max nor min
            {"objectives": [{"metric": "m", "max": 1, "min": 0}]},
            {"objectives": [{"max": 1}]},  # no metric
            {"objectives": [{"metric": "m", "max": 1, "budget": -0.1}]},
            {"objectives": [{"metric": "m", "max": 1, "window": 0}]},
            {"objectives": [{"metric": "a", "max": 1, "name": "x"},
                            {"metric": "b", "max": 1, "name": "x"}]},
        ],
        ids=["empty", "no-objectives", "no-bound", "both-bounds", "no-metric",
             "neg-budget", "zero-window", "dup-names"],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            SLOSpec.from_dict(bad)

    def test_parse_inline_json_and_file(self, tmp_path):
        inline = SLOSpec.parse(json.dumps(_SPEC))
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_SPEC), encoding="utf-8")
        from_file = SLOSpec.parse(str(path))
        assert inline == from_file == SLOSpec.from_dict(_SPEC)
        assert SLOSpec.parse(inline) is inline

    def test_config_validates_inline_spec_eagerly(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(slo_spec={"objectives": []})
        with pytest.raises(ConfigurationError):
            SystemConfig(slo_spec='{"objectives": "nope"}')
        with pytest.raises(ConfigurationError):
            SystemConfig(flight_recorder_events=-1)
        # File paths resolve lazily: the file may be written later.
        config = SystemConfig(slo_spec="does/not/exist/yet.json")
        with pytest.raises(OSError):
            config.build_slo_spec()


# ----------------------------------------------------------------------
# Tracker: budgets, burn rates, breach/recovery
# ----------------------------------------------------------------------


def _gauge_spec(**overrides) -> SLOSpec:
    entry = {"name": "depth", "metric": "queue.depth", "max": 10.0,
             "budget": 0, "slow_window": 60}
    entry.update(overrides)
    return SLOSpec.from_dict({"objectives": [entry]})


class TestSLOTracker:
    def test_compliant_ticks_stay_healthy(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(3)
        tracker = SLOTracker(_gauge_spec(), registry)
        for _ in range(5):
            tracker.tick()
        state = tracker.state()
        assert state["healthy"] is True
        assert state["ticks"] == 5
        (obj,) = state["objectives"]
        assert obj["value"] == 3.0
        assert obj["violations"] == 0
        assert obj["budget_spent"] == 0.0

    def test_zero_budget_breaches_on_first_violation(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(99)
        events = []
        tracker = SLOTracker(
            _gauge_spec(), registry, emit=lambda t, **f: events.append((t, f))
        )
        tracker.tick()
        assert tracker.healthy is False
        assert [t for t, _ in events] == ["slo_breach"]
        assert events[0][1]["name"] == "depth"
        assert events[0][1]["budget_spent"] >= 1.0
        assert registry.counter("slo.breaches").value == 1
        # A second violating tick is not a new transition.
        tracker.tick()
        assert [t for t, _ in events] == ["slo_breach"]

    def test_budget_tolerates_allowed_violations_then_breaches(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue.depth")
        # budget 0.2 of slow_window 10 -> 2 violating ticks allowed.
        spec = _gauge_spec(budget=0.2, slow_window=10)
        tracker = SLOTracker(spec, registry)
        gauge.set(99)
        tracker.tick()
        tracker.tick()
        assert tracker.healthy is True
        assert tracker.state()["objectives"][0]["budget_spent"] == 1.0
        tracker.tick()  # third violation: 3 > 2 allowed
        assert tracker.healthy is False

    def test_recovery_as_violations_age_out(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue.depth")
        events = []
        spec = _gauge_spec(budget=0.25, slow_window=4)  # 1 violation allowed
        tracker = SLOTracker(
            spec, registry, emit=lambda t, **f: events.append(t)
        )
        gauge.set(99)
        tracker.tick()
        tracker.tick()  # 2 violations > 1 allowed -> breach
        assert tracker.healthy is False
        gauge.set(1)
        for _ in range(4):  # compliant ticks push violations out of window
            tracker.tick()
        assert tracker.healthy is True
        assert events == ["slo_breach", "slo_recovered"]

    def test_burn_rates_distinguish_fast_and_slow(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue.depth")
        spec = _gauge_spec(budget=0.1, fast_window=2, slow_window=20)
        tracker = SLOTracker(spec, registry)
        gauge.set(1)
        for _ in range(18):
            tracker.tick()
        gauge.set(99)
        tracker.tick()
        tracker.tick()
        obj = tracker.state()["objectives"][0]
        # Fast window is all violations: (2/2)/0.1 = 10x burn.
        assert obj["burn_fast"] == pytest.approx(10.0)
        # Slow window: (2/20)/0.1 = 1x burn.
        assert obj["burn_slow"] == pytest.approx(1.0)

    def test_exports_state_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(4)
        SLOTracker(_gauge_spec(), registry).tick()
        assert registry.get_gauge("slo.depth.value").value == 4.0
        assert registry.get_gauge("slo.depth.budget_spent").value == 0.0

    def test_breach_callback_receives_payload(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(99)
        payloads = []
        tracker = SLOTracker(_gauge_spec(), registry)
        tracker.add_breach_callback(payloads.append)
        tracker.tick()
        assert payloads and payloads[0]["name"] == "depth"
        assert payloads[0]["breached"] is True


class TestProbes:
    def test_unknown_selector_is_no_data_and_never_creates(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(
            SLOSpec.from_dict(
                {"objectives": [{"metric": "no.such.metric", "max": 1}]}
            ),
            registry,
        )
        tracker.tick()
        state = tracker.state()["objectives"][0]
        assert state["no_data"] == 1 and state["ticks"] == 0
        assert state["value"] is None
        assert registry.get_gauge("no.such.metric") is None
        assert registry.get_counter("no.such.metric") is None

    def test_counter_selector_is_windowed_delta(self):
        registry = MetricsRegistry()
        counter = registry.counter("flush.count")
        spec = SLOSpec.from_dict(
            {"objectives": [{"metric": "flush.count", "min": 2, "window": 1,
                             "budget": 0}]}
        )
        tracker = SLOTracker(spec, registry)
        counter.inc(5)
        tracker.tick()  # first capture: delta vs nothing = 5
        assert tracker.state()["objectives"][0]["value"] == 5.0
        counter.inc(1)
        tracker.tick()  # window 1: delta vs previous tick = 1 -> violation
        assert tracker.state()["objectives"][0]["value"] == 1.0
        assert tracker.healthy is False

    def test_hit_ratio_mode_selector(self):
        registry = MetricsRegistry()
        registry.counter("query.and.hits").inc(8)
        registry.counter("query.and.misses").inc(2)
        spec = SLOSpec.from_dict(
            {"objectives": [{"metric": "hit_ratio.and", "min": 0.7}]}
        )
        tracker = SLOTracker(spec, registry)
        tracker.tick()
        assert tracker.state()["objectives"][0]["value"] == pytest.approx(0.8)

    def test_hit_ratio_aggregate_ignores_cause_counters(self):
        registry = MetricsRegistry()
        registry.counter("query.single.hits").inc(3)
        registry.counter("query.single.misses").inc(1)
        # Neither of these is a per-mode hit/miss counter.
        registry.counter("query.miss.cause.phase1-regular").inc(50)
        registry.counter("query.disk_lookups").inc(50)
        report = evaluate_registry(
            SLOSpec.from_dict({"objectives": [{"metric": "hit_ratio", "min": 0.7}]}),
            registry,
        )
        assert report["objectives"][0]["value"] == pytest.approx(0.75)

    def test_hit_ratio_without_queries_is_no_data(self):
        registry = MetricsRegistry()
        spec = SLOSpec.from_dict(
            {"objectives": [{"metric": "hit_ratio", "min": 0.5}]}
        )
        tracker = SLOTracker(spec, registry)
        tracker.tick()
        assert tracker.state()["objectives"][0]["no_data"] == 1
        assert tracker.healthy is True  # no data is never a violation

    def test_histogram_percentile_selector_windows_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        spec = SLOSpec.from_dict(
            {"objectives": [{"metric": "lat.p99", "max": 0.01, "window": 1,
                             "budget": 0}]}
        )
        tracker = SLOTracker(spec, registry)
        for _ in range(20):
            hist.record(0.001)
        tracker.tick()
        assert tracker.healthy is True
        # New window: only slow samples land in the delta.
        for _ in range(20):
            hist.record(0.1)
        tracker.tick()
        obj = tracker.state()["objectives"][0]
        assert obj["value"] > 0.05  # windowed p99 sees only the slow burst
        assert tracker.healthy is False

    def test_histogram_stat_selectors(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for value in (0.001, 0.002, 0.003):
            hist.record(value)
        def value_of(metric):
            report = evaluate_registry(
                SLOSpec.from_dict({"objectives": [{"metric": metric, "max": 1e9}]}),
                registry,
            )
            return report["objectives"][0]["value"]
        assert value_of("lat.count") == 3.0
        assert value_of("lat.sum") == pytest.approx(0.006)
        assert value_of("lat.mean") == pytest.approx(0.002)
        assert value_of("lat.max") == pytest.approx(0.003)

    def test_evaluate_registry_one_shot(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(99)
        report = evaluate_registry(_gauge_spec(), registry)
        assert report["healthy"] is False
        (obj,) = report["objectives"]
        assert obj["ok"] is False and obj["no_data"] is False
        assert obj["value"] == 99.0


# ----------------------------------------------------------------------
# Watermarks
# ----------------------------------------------------------------------


class TestWatermarks:
    def test_tracks_only_new_highs(self):
        registry = MetricsRegistry()
        marks = WatermarkTracker(registry)
        marks.observe("memory.bytes_used", 100)
        marks.observe("memory.bytes_used", 50)  # below the mark: ignored
        marks.observe("memory.bytes_used", 120)
        assert marks.get("memory.bytes_used") == 120
        assert registry.get_gauge("watermark.memory.bytes_used").value == 120

    def test_table_is_name_sorted(self):
        marks = WatermarkTracker()
        marks.observe("b", 2)
        marks.observe("a", 1)
        assert list(marks.table()) == ["a", "b"]
        assert len(marks) == 2


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded_and_tees_to_inner(self):
        inner = ListSink()
        recorder = FlightRecorder(3, inner=inner)
        for i in range(5):
            recorder.emit({"type": "x", "i": i})
        assert [e["i"] for e in recorder.events()] == [2, 3, 4]
        assert len(recorder) == 3
        assert len(inner.events) == 5  # the inner sink saw everything

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_dump_layout_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("flush.count").inc(2)
        recorder = FlightRecorder(8)
        recorder.emit({"type": "span", "name": "flush", "seconds": 0.1})
        path = recorder.dump(
            tmp_path / "box.jsonl",
            registry=registry,
            slo_state={"healthy": False},
            reason="slo_breach:latency",
        )
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "flight_recorder_dump"
        assert lines[0]["reason"] == "slo_breach:latency"
        assert lines[0]["events"] == 1
        assert lines[1]["type"] == "run_snapshot"
        assert lines[1]["source"] == "flight_recorder"
        assert lines[1]["metrics"]["counters"]["flush.count"] == 2
        assert lines[2] == {"type": "slo_state", "slo": {"healthy": False}}
        assert lines[3]["type"] == "span"

    def test_attach_shares_registry_and_enables_tracing(self):
        base = Instrumentation()
        forked, recorder = attach_flight_recorder(base, 16)
        assert forked.registry is base.registry
        forked.event("ping")
        assert len(recorder) == 1
        with forked.trace("query"):
            pass
        assert any(e.get("type") == "trace" for e in recorder.events())


# ----------------------------------------------------------------------
# End-to-end through the system facades
# ----------------------------------------------------------------------

_UNMEETABLE = json.dumps(
    {"objectives": [{"name": "impossible", "metric": "span.flush.seconds.p99",
                     "max": 1e-12, "budget": 0}]}
)
_PERMISSIVE = json.dumps(
    {"objectives": [{"name": "flush-latency", "metric": "span.flush.seconds.p99",
                     "max": 3600.0}]}
)


def _drive(config: SystemConfig, records: int = 15_000):
    reset_global_interner()
    system = build_system(config)
    stream = MicroblogStream(
        StreamConfig(seed=11, vocabulary_size=2_000, with_locations=False)
    )
    system.ingest_many(stream.take(records))
    system.quiesce()
    return system


@pytest.mark.parametrize(
    "overrides",
    [
        pytest.param({}, id="unsharded"),
        pytest.param({"shards": 4}, id="sharded"),
        pytest.param(
            {"pipelined_ingest": True, "flush_workers": 0}, id="pipelined-inline"
        ),
    ],
)
class TestSystemIntegration:
    def test_forced_breach_dumps_black_box(self, tmp_path, overrides):
        dump_path = tmp_path / "box.jsonl"
        config = SystemConfig(
            memory_capacity_bytes=400_000,
            slo_spec=_UNMEETABLE,
            flight_recorder_events=64,
            flight_recorder_path=str(dump_path),
            **overrides,
        )
        system = _drive(config)
        try:
            state = system.slo_state()
            assert state is not None and state["healthy"] is False
            (obj,) = state["objectives"]
            assert obj["breached"] is True
            assert obj["budget_spent"] >= 1.0
            assert dump_path.exists()
            lines = [json.loads(l) for l in dump_path.read_text().splitlines()]
            assert lines[0]["reason"] == "slo_breach:impossible"
            slo_line = next(l for l in lines if l["type"] == "slo_state")
            assert slo_line["slo"]["healthy"] is False
        finally:
            system.close()

    def test_permissive_spec_stays_healthy(self, overrides):
        config = SystemConfig(
            memory_capacity_bytes=400_000, slo_spec=_PERMISSIVE, **overrides
        )
        system = _drive(config)
        try:
            state = system.slo_state()
            assert state is not None and state["healthy"] is True
            assert state["ticks"] > 0  # flush boundaries actually ticked
        finally:
            system.close()

    def test_watermarks_surface_in_registry(self, overrides):
        config = SystemConfig(memory_capacity_bytes=400_000, **overrides)
        system = _drive(config)
        try:
            assert system.slo_state() is None  # no spec configured
            marks = system.watermarks.table()
            assert marks.get("memory.bytes_used", 0) > 0
            gauges = system.obs.registry.snapshot()["gauges"]
            assert gauges["watermark.memory.bytes_used"] > 0
            if overrides.get("shards"):
                assert any(
                    name.startswith("watermark.shard.") for name in gauges
                )
        finally:
            system.close()


def test_on_demand_dump_without_breach(tmp_path):
    config = SystemConfig(
        memory_capacity_bytes=400_000, flight_recorder_events=32
    )
    system = _drive(config)
    try:
        path = system.dump_flight_recorder(tmp_path / "demand.jsonl")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["reason"] == "on_demand"
        # No SLO tracker: the dump carries no slo_state line.
        assert not any(l["type"] == "slo_state" for l in lines)
        assert any(l["type"] == "run_snapshot" for l in lines)
    finally:
        system.close()


def test_recorder_off_dump_is_none():
    config = SystemConfig(memory_capacity_bytes=400_000)
    system = _drive(config, records=2_000)
    try:
        assert system.flight_recorder is None
        assert system.dump_flight_recorder() is None
    finally:
        system.close()


# ----------------------------------------------------------------------
# Default-off differential: results bit-identical with the machinery on
# ----------------------------------------------------------------------

_WALL_CLOCK_FIELDS = ("spec", "insert_rate", "effective_digestion_rate")


def _comparable(result):
    payload = asdict(result)
    for field_name in _WALL_CLOCK_FIELDS:
        payload.pop(field_name, None)
    payload["extras"] = {
        key: value
        for key, value in payload.get("extras", {}).items()
        if "seconds" not in key and "rate" not in key
    }
    return payload


@pytest.mark.parametrize(
    "overrides",
    [
        pytest.param(dict(policy="fifo"), id="fifo"),
        pytest.param(dict(policy="lru"), id="lru"),
        pytest.param(dict(policy="kflushing"), id="kflushing"),
        pytest.param(dict(policy="kflushing-mk"), id="kflushing-mk"),
        pytest.param(dict(policy="kflushing", shards=4), id="kflushing-shards4"),
        pytest.param(
            dict(policy="kflushing", pipelined_ingest=True, flush_workers=0),
            id="kflushing-pipelined",
        ),
    ],
)
def test_trial_results_bit_identical_with_slo_and_recorder(overrides):
    results = {}
    for enabled in (False, True):
        reset_global_interner()
        extra = (
            dict(slo_spec=_PERMISSIVE, flight_recorder_events=128)
            if enabled
            else {}
        )
        spec = TrialSpec(scale=MICRO, seed=13, **overrides, **extra)
        results[enabled] = _comparable(run_trial(spec))
    assert results[True] == results[False]


# ----------------------------------------------------------------------
# Ops endpoint: /slo, breach-aware /healthz, concurrent scrapes
# ----------------------------------------------------------------------


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestOpsEndpoint:
    def test_slo_404_without_provider(self):
        with OpsServer(MetricsRegistry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/slo")
            assert err.value.code == 404
            status, body = _get(f"{server.url}/healthz")
            assert (status, body) == (200, "ok\n")

    def test_slo_state_served_and_healthz_follows_budget(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(1)
        tracker = SLOTracker(_gauge_spec(), registry)
        tracker.tick()
        with OpsServer(registry, port=0, slo_provider=tracker.state) as server:
            status, body = _get(f"{server.url}/slo")
            assert status == 200
            state = json.loads(body)
            assert state["healthy"] is True
            assert state["objectives"][0]["name"] == "depth"
            assert _get(f"{server.url}/healthz")[0] == 200
            # Exhaust the budget: /healthz flips to 503.
            registry.gauge("queue.depth").set(99)
            tracker.tick()
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/healthz")
            assert err.value.code == 503
            assert "budget exhausted" in err.value.read().decode("utf-8")

    def test_broken_provider_degrades_to_healthy(self):
        def boom():
            raise RuntimeError("provider broke")

        with OpsServer(MetricsRegistry(), port=0, slo_provider=boom) as server:
            assert _get(f"{server.url}/healthz")[0] == 200
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/slo")
            assert err.value.code == 404

    def test_concurrent_scrapes_during_mutation(self):
        """N scraper threads hammer /metrics and /snapshot while the
        registry mutates underneath; every response must parse and the
        server must shut down cleanly."""
        registry = MetricsRegistry()
        stop = threading.Event()
        errors: list[Exception] = []

        def mutate():
            i = 0
            while not stop.is_set():
                registry.counter(f"churn.c{i % 50}").inc()
                registry.gauge(f"churn.g{i % 50}").set(i)
                registry.histogram(f"churn.h{i % 20}").record(1e-4)
                i += 1

        def scrape(url):
            try:
                for _ in range(20):
                    status, body = _get(f"{url}/metrics")
                    assert status == 200 and "repro_" in body
                    status, body = _get(f"{url}/snapshot")
                    assert status == 200
                    json.loads(body)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with OpsServer(registry, port=0) as server:
            mutator = threading.Thread(target=mutate, daemon=True)
            mutator.start()
            scrapers = [
                threading.Thread(target=scrape, args=(server.url,))
                for _ in range(4)
            ]
            for thread in scrapers:
                thread.start()
            for thread in scrapers:
                thread.join(timeout=30)
            stop.set()
            mutator.join(timeout=5)
        assert not errors, errors
        assert not any(t.is_alive() for t in scrapers)


# ----------------------------------------------------------------------
# CLI: repro slo / repro trace --strict
# ----------------------------------------------------------------------


class TestSloCli:
    def _events_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("flush.count").inc(4)
        registry.histogram("span.flush.seconds").record(0.01)
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps({"type": "run_snapshot", "metrics": registry.snapshot()})
            + "\n",
            encoding="utf-8",
        )
        return path

    def test_events_pass_and_fail(self, tmp_path, capsys):
        events = self._events_file(tmp_path)
        passing = json.dumps(
            {"objectives": [{"metric": "flush.count", "min": 1}]}
        )
        assert cli_main(["slo", passing, "--events", str(events)]) == 0
        failing = json.dumps(
            {"objectives": [{"metric": "flush.count", "min": 100}]}
        )
        assert cli_main(["slo", failing, "--events", str(events)]) == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out

    def test_check_fails_on_no_data(self, tmp_path, capsys):
        events = self._events_file(tmp_path)
        spec = json.dumps({"objectives": [{"metric": "absent.metric", "min": 1}]})
        assert cli_main(["slo", spec, "--events", str(events)]) == 0
        assert cli_main(["slo", spec, "--events", str(events), "--check"]) == 1

    def test_json_output(self, tmp_path, capsys):
        events = self._events_file(tmp_path)
        spec = json.dumps({"objectives": [{"metric": "flush.count", "min": 1}]})
        assert cli_main(["slo", spec, "--events", str(events), "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.rindex("}") + 1])
        assert payload["healthy"] is True

    def test_bench_source(self, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text(
            json.dumps(
                [{"metric": "digestion_rate", "policy": "kflushing",
                  "value": 50_000.0, "unit": "records/s", "seed": 42}]
            ),
            encoding="utf-8",
        )
        spec = json.dumps(
            {"objectives": [
                {"metric": "bench.digestion_rate.kflushing", "min": 10_000},
                {"metric": "bench.digestion_rate", "min": 10_000},
            ]}
        )
        assert cli_main(["slo", spec, "--bench", str(bench)]) == 0

    def test_url_source(self):
        registry = MetricsRegistry()
        registry.counter("flush.count").inc(3)
        spec = json.dumps({"objectives": [{"metric": "flush.count", "min": 1}]})
        with OpsServer(registry, port=0) as server:
            assert cli_main(["slo", spec, "--url", server.url]) == 0

    def test_requires_exactly_one_source(self, tmp_path, capsys):
        spec = json.dumps({"objectives": [{"metric": "x", "min": 1}]})
        assert cli_main(["slo", spec]) == 2
        events = self._events_file(tmp_path)
        assert (
            cli_main(
                ["slo", spec, "--events", str(events), "--bench", str(events)]
            )
            == 2
        )

    def test_bad_spec_is_a_usage_error(self, tmp_path):
        events = self._events_file(tmp_path)
        assert cli_main(["slo", '{"objectives": []}', "--events", str(events)]) == 2


class TestTraceStrict:
    def _write(self, tmp_path, events):
        path = tmp_path / "events.jsonl"
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in events), encoding="utf-8"
        )
        return path

    _COMPLETE = {"type": "trace", "trace": "q1", "span": 0, "parent_span": None,
                 "name": "query", "seconds": 0.01, "mode": "single", "hit": True,
                 "disk_lookups": 0}
    _ORPHAN = {"type": "trace", "trace": "q2", "span": 3, "parent_span": 0,
               "name": "disk.lookup", "seconds": 0.001}

    def test_clean_file_passes_strict(self, tmp_path, capsys):
        path = self._write(tmp_path, [self._COMPLETE])
        assert cli_main(["trace", str(path), "--strict"]) == 0
        assert "[dropped_orphans: 0]" in capsys.readouterr().out

    def test_orphans_reported_and_fail_strict(self, tmp_path, capsys):
        path = self._write(tmp_path, [self._COMPLETE, self._ORPHAN])
        assert cli_main(["trace", str(path)]) == 0  # informational by default
        assert "[dropped_orphans: 1]" in capsys.readouterr().out
        assert cli_main(["trace", str(path), "--strict"]) == 1
