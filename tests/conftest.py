"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.config import SystemConfig
from repro.engine.system import MicroblogSystem
from repro.model.attributes import KeywordAttribute
from repro.model.microblog import GeoPoint, Microblog
from repro.model.ranking import TemporalRanking
from repro.storage.disk import DiskArchive
from repro.storage.memory_model import MemoryModel

_id_counter = itertools.count(1)


def make_blog(
    keywords=("alpha",),
    timestamp=None,
    blog_id=None,
    user_id=1,
    text="hello world",
    followers=0,
    location=None,
):
    """Create a microblog with auto-assigned id/timestamp for terseness."""
    if blog_id is None:
        blog_id = next(_id_counter)
    if timestamp is None:
        timestamp = float(blog_id)
    return Microblog(
        blog_id=blog_id,
        timestamp=timestamp,
        user_id=user_id,
        text=text,
        keywords=tuple(keywords),
        location=location,
        followers=followers,
    )


def make_blogs(count, keywords=("alpha",), start_id=None, **kwargs):
    """A list of ``count`` records with consecutive ids/timestamps."""
    blogs = []
    for _ in range(count):
        blogs.append(make_blog(keywords=keywords, blog_id=start_id, **kwargs))
        if start_id is not None:
            start_id += 1
    return blogs


@pytest.fixture
def model():
    return MemoryModel()


@pytest.fixture
def disk(model):
    return DiskArchive(model)


@pytest.fixture
def ranking():
    return TemporalRanking()


@pytest.fixture
def attribute():
    return KeywordAttribute()


def engine_kwargs(model, disk, k=3, capacity=100_000, flush_fraction=0.2):
    """Standard constructor kwargs for memory engines in unit tests."""
    return dict(
        model=model,
        ranking=TemporalRanking(),
        attribute=KeywordAttribute(),
        k=k,
        capacity_bytes=capacity,
        flush_fraction=flush_fraction,
        disk=disk,
    )


def tiny_system(policy="kflushing", **overrides):
    """A MicroblogSystem small enough for unit tests."""
    defaults = dict(
        policy=policy,
        k=3,
        memory_capacity_bytes=60_000,
        flush_fraction=0.2,
    )
    defaults.update(overrides)
    return MicroblogSystem(SystemConfig(**defaults))


@pytest.fixture
def geo():
    return GeoPoint(40.0, -74.0)
