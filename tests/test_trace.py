"""Tests for JSON-lines trace persistence."""

import pytest

from repro.engine.queries import AndQuery, KeywordQuery, SpatialQuery, UserQuery
from repro.errors import WorkloadError
from repro.model.microblog import GeoPoint
from repro.workload.stream import MicroblogStream, StreamConfig
from repro.workload.trace import load_queries, load_records, save_queries, save_records
from tests.conftest import make_blog


class TestRecordRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        original = [
            make_blog(keywords=("a", "b"), text="hello", followers=7),
            make_blog(location=GeoPoint(40.5, -74.25)),
            make_blog(keywords=()),
        ]
        path = tmp_path / "trace.jsonl"
        assert save_records(original, path) == 3
        loaded = list(load_records(path))
        assert loaded == original

    def test_streamed_from_generator(self, tmp_path):
        stream = MicroblogStream(StreamConfig(seed=3, vocabulary_size=100))
        path = tmp_path / "stream.jsonl"
        save_records(stream.take(50), path)
        loaded = list(load_records(path))
        assert len(loaded) == 50
        assert all(r.has_location for r in loaded)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_records([make_blog()], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(list(load_records(path))) == 1

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 1, "ts": 0.0, "user": 0}\nnot json\n')
        with pytest.raises(WorkloadError, match="bad.jsonl:2"):
            list(load_records(path))

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 0.0}\n')
        with pytest.raises(WorkloadError):
            list(load_records(path))


class TestQueryRoundtrip:
    def test_roundtrip_all_query_shapes(self, tmp_path):
        original = [
            KeywordQuery("obama", k=20),
            AndQuery(["a", "b"], k=5),
            UserQuery(42, k=10),
            SpatialQuery((3, -4), k=7),
        ]
        path = tmp_path / "queries.jsonl"
        assert save_queries(original, path) == 4
        loaded = list(load_queries(path))
        assert loaded == original

    def test_tile_keys_back_to_tuples(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        save_queries([SpatialQuery((9, 9))], path)
        (query,) = load_queries(path)
        assert isinstance(query.keys[0], tuple)

    def test_malformed_query_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"keys": ["x"], "k": 0, "mode": "single"}\n')
        with pytest.raises(WorkloadError):
            list(load_queries(path))


class TestReplayEquivalence:
    def test_saved_trace_replays_identically(self, tmp_path):
        """Ingesting a saved trace produces the same system state as
        ingesting the live stream."""
        from repro.config import SystemConfig
        from repro.engine.system import MicroblogSystem

        def run(records):
            system = MicroblogSystem(
                SystemConfig(policy="kflushing", k=3, memory_capacity_bytes=50_000)
            )
            system.ingest_many(records)
            return system.frequency_snapshot()

        stream = MicroblogStream(
            StreamConfig(seed=12, vocabulary_size=80, with_locations=False)
        )
        records = stream.take(1_500)
        path = tmp_path / "trace.jsonl"
        save_records(records, path)
        assert run(records) == run(load_records(path))
