"""Unit tests for runtime statistics containers."""

from repro.core.policy import FlushReport
from repro.engine.clock import LogicalClock
from repro.engine.queries import CombineMode
from repro.engine.stats import IngestStats, QueryStats, SystemStats, TimelinePoint

import pytest


class TestQueryStats:
    def test_hit_ratio(self):
        stats = QueryStats()
        stats.record(CombineMode.SINGLE, True)
        stats.record(CombineMode.SINGLE, False)
        stats.record(CombineMode.AND, True)
        assert stats.queries == 3
        assert stats.memory_hits == 2
        assert stats.memory_misses == 1
        assert stats.hit_ratio == pytest.approx(2 / 3)

    def test_per_mode_ratio(self):
        stats = QueryStats()
        stats.record(CombineMode.AND, True)
        stats.record(CombineMode.AND, False)
        stats.record(CombineMode.OR, False)
        assert stats.hit_ratio_for(CombineMode.AND) == 0.5
        assert stats.hit_ratio_for(CombineMode.OR) == 0.0
        assert stats.hit_ratio_for(CombineMode.SINGLE) == 0.0

    def test_idle_ratio_is_zero(self):
        assert QueryStats().hit_ratio == 0.0

    def test_latency_histogram_counts_every_query(self):
        """Regression: zero-latency samples used to be dropped, biasing
        latency_percentile() upward (computed only over nonzero queries)."""
        stats = QueryStats()
        stats.record(CombineMode.SINGLE, True, latency_seconds=0.0)
        stats.record(CombineMode.SINGLE, True, latency_seconds=0.0)
        stats.record(CombineMode.SINGLE, False, latency_seconds=0.5)
        assert len(stats.latency) == stats.queries == 3

    def test_zero_latency_hits_pull_percentiles_down(self):
        stats = QueryStats()
        for _ in range(9):
            stats.record(CombineMode.SINGLE, True, latency_seconds=0.0)
        stats.record(CombineMode.SINGLE, False, latency_seconds=0.5)
        # With 9 of 10 samples at ~0, the median must sit in the lowest
        # bucket, far below the single disk-visit latency.
        assert stats.latency.percentile(50.0) < 0.5


class TestIngestStats:
    def test_digestion_rate(self):
        stats = IngestStats(indexed=100, insert_seconds=2.0)
        assert stats.digestion_rate == 50.0

    def test_zero_time_rate(self):
        assert IngestStats(indexed=5).digestion_rate == 0.0


class TestTimeline:
    def test_utilization(self):
        point = TimelinePoint(time=1.0, bytes_used=50, capacity=200)
        assert point.utilization == 0.25

    def test_sample_memory_appends(self):
        stats = SystemStats()
        stats.sample_memory(1.0, 10, 100, kind="before")
        stats.sample_memory(1.0, 5, 100, kind="after")
        assert [p.kind for p in stats.timeline] == ["before", "after"]


class TestFlushSummary:
    def test_empty(self):
        summary = SystemStats().flush_summary([])
        assert summary["flushes"] == 0
        assert summary["mean_freed_fraction"] == 0.0

    def test_aggregates(self):
        reports = [
            FlushReport("kflushing", 1.0, target_bytes=100, freed_bytes=100,
                        records_flushed=5, wall_seconds=0.1),
            FlushReport("kflushing", 2.0, target_bytes=100, freed_bytes=50,
                        records_flushed=3, wall_seconds=0.2),
        ]
        summary = SystemStats().flush_summary(reports)
        assert summary["flushes"] == 2
        assert summary["records_flushed"] == 8
        assert summary["targets_met"] == 1
        assert summary["mean_freed_fraction"] == pytest.approx(0.75)
        assert summary["total_wall_seconds"] == pytest.approx(0.3)


class TestLogicalClock:
    def test_starts_at_zero(self):
        assert LogicalClock().now == 0.0

    def test_advance_to_monotone(self):
        clock = LogicalClock()
        clock.advance_to(5.0)
        clock.advance_to(3.0)
        assert clock.now == 5.0

    def test_advance_by(self):
        clock = LogicalClock(start=1.0)
        clock.advance_by(2.5)
        assert clock.now == 3.5

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            LogicalClock().advance_by(-1.0)
