"""Unit tests for the raw data store and its reference counts."""

import pytest

from repro.errors import DuplicateRecordError, UnknownRecordError
from repro.storage.memory_model import MemoryModel
from repro.storage.raw_store import RawDataStore
from tests.conftest import make_blog


@pytest.fixture
def store():
    return RawDataStore(MemoryModel())


class TestAddAndGet:
    def test_add_returns_cost(self, store):
        blog = make_blog()
        cost = store.add(blog, pcount=1)
        assert cost == MemoryModel().record_bytes(blog)
        assert store.bytes_used == cost

    def test_get_returns_record(self, store):
        blog = make_blog()
        store.add(blog, pcount=2)
        assert store.get(blog.blog_id) is blog

    def test_contains_and_len(self, store):
        blog = make_blog()
        assert blog.blog_id not in store
        store.add(blog, pcount=1)
        assert blog.blog_id in store
        assert len(store) == 1

    def test_duplicate_rejected(self, store):
        blog = make_blog()
        store.add(blog, pcount=1)
        with pytest.raises(DuplicateRecordError):
            store.add(blog, pcount=1)

    def test_non_positive_pcount_rejected(self, store):
        with pytest.raises(ValueError):
            store.add(make_blog(), pcount=0)

    def test_unknown_get_raises(self, store):
        with pytest.raises(UnknownRecordError):
            store.get(999)

    def test_iteration(self, store):
        blogs = [make_blog() for _ in range(3)]
        for blog in blogs:
            store.add(blog, pcount=1)
        assert set(store) == set(blogs)


class TestDecref:
    def test_decref_keeps_record_until_zero(self, store):
        blog = make_blog()
        store.add(blog, pcount=3)
        assert store.decref(blog.blog_id) is None
        assert store.decref(blog.blog_id) is None
        assert store.pcount(blog.blog_id) == 1
        assert blog.blog_id in store

    def test_final_decref_returns_and_removes(self, store):
        blog = make_blog()
        store.add(blog, pcount=1)
        returned = store.decref(blog.blog_id)
        assert returned is blog
        assert blog.blog_id not in store
        assert store.bytes_used == 0

    def test_decref_unknown_raises(self, store):
        with pytest.raises(UnknownRecordError):
            store.decref(123)

    def test_pcount_tracks(self, store):
        blog = make_blog()
        store.add(blog, pcount=2)
        assert store.pcount(blog.blog_id) == 2
        store.decref(blog.blog_id)
        assert store.pcount(blog.blog_id) == 1


class TestRemove:
    def test_remove_ignores_pcount(self, store):
        blog = make_blog()
        store.add(blog, pcount=5)
        assert store.remove(blog.blog_id) is blog
        assert blog.blog_id not in store
        assert store.bytes_used == 0

    def test_remove_unknown_raises(self, store):
        with pytest.raises(UnknownRecordError):
            store.remove(42)


class TestIntegrity:
    def test_bytes_accounting_across_operations(self, store):
        blogs = [make_blog(text="x" * i) for i in range(10)]
        for blog in blogs:
            store.add(blog, pcount=2)
        store.check_integrity()
        for blog in blogs[:5]:
            store.decref(blog.blog_id)
            store.decref(blog.blog_id)
        store.check_integrity()
        model = MemoryModel()
        expected = sum(model.record_bytes(b) for b in blogs[5:])
        assert store.bytes_used == expected
