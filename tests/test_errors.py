"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    DuplicateRecordError,
    FlushError,
    QueryError,
    ReproError,
    UnknownKeyError,
    UnknownRecordError,
    WorkloadError,
)

ALL_ERRORS = (
    CapacityError,
    ConfigurationError,
    DuplicateRecordError,
    FlushError,
    QueryError,
    UnknownKeyError,
    UnknownRecordError,
    WorkloadError,
)


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_derive_from_repro_error(error_type):
    assert issubclass(error_type, ReproError)


def test_lookup_errors_are_key_errors():
    # Callers used to dict-style access can catch KeyError too.
    assert issubclass(UnknownRecordError, KeyError)
    assert issubclass(UnknownKeyError, KeyError)


def test_catching_base_catches_all():
    for error_type in ALL_ERRORS:
        with pytest.raises(ReproError):
            raise error_type("boom")


def test_public_api_raises_library_types_only():
    """API-boundary spot checks: bad input surfaces as ReproError."""
    from repro import MicroblogSystem, SystemConfig, parse_query
    from repro.workload import QueryLoadConfig

    with pytest.raises(ReproError):
        SystemConfig(policy="nope")
    with pytest.raises(ReproError):
        parse_query("")
    with pytest.raises(ReproError):
        QueryLoadConfig(mode="nope")
    system = MicroblogSystem(SystemConfig(memory_capacity_bytes=10_000))
    with pytest.raises(ReproError):
        system.engine.raw.get(123)
