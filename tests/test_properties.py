"""Property-based tests (hypothesis) on core data structures and
end-to-end invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kflushing import KFlushingEngine
from repro.core.victim_selection import select_victims_heap, select_victims_sort
from repro.engine.queries import KeywordQuery
from repro.model.microblog import Microblog
from repro.storage.disk import DiskArchive
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting, PostingList
from repro.storage.raw_store import RawDataStore
from tests.conftest import engine_kwargs

# ----------------------------------------------------------------------
# PostingList
# ----------------------------------------------------------------------

postings_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
    ),
    min_size=0,
    max_size=60,
).map(
    lambda pairs: [
        Posting(score, ts, i) for i, (score, ts) in enumerate(pairs)
    ]
)


@given(postings_strategy)
def test_posting_list_always_sorted(postings):
    entry = PostingList("k", created_at=0.0)
    for p in postings:
        entry.insert(p)
    keys = [p.sort_key for p in entry]
    assert keys == sorted(keys)
    assert len(entry) == len(postings)


@given(postings_strategy, st.integers(min_value=0, max_value=70))
def test_trim_beyond_keeps_exactly_topk(postings, k):
    entry = PostingList("k", created_at=0.0)
    for p in postings:
        entry.insert(p)
    all_sorted = sorted(postings, key=lambda p: p.sort_key, reverse=True)
    removed = entry.trim_beyond(k)
    kept = list(entry)
    assert len(kept) == min(k, len(postings))
    assert {p.blog_id for p in kept} == {p.blog_id for p in all_sorted[:k]}
    assert len(removed) + len(kept) == len(postings)
    if removed:
        # Floor equals the best removed key; all kept postings are above.
        assert all(p.sort_key > entry.floor for p in kept)


@given(postings_strategy, st.integers(min_value=1, max_value=70))
def test_provable_top_is_true_topk(postings, k):
    entry = PostingList("k", created_at=0.0)
    for p in postings:
        entry.insert(p)
    top = entry.provable_top(k)
    if top is not None:
        truth = sorted(postings, key=lambda p: p.sort_key, reverse=True)[:k]
        assert [p.blog_id for p in top] == [p.blog_id for p in truth]


@given(postings_strategy, st.data())
def test_remove_id_floor_soundness(postings, data):
    """After arbitrary removals, every posting above the floor is one that
    was never removed — the completeness guarantee."""
    entry = PostingList("k", created_at=0.0)
    for p in postings:
        entry.insert(p)
    if postings:
        n_removals = data.draw(st.integers(min_value=0, max_value=len(postings)))
        ids = data.draw(
            st.lists(
                st.sampled_from([p.blog_id for p in postings]),
                min_size=n_removals,
                max_size=n_removals,
            )
        )
        removed_ids = set()
        for blog_id in ids:
            if entry.remove_id(blog_id) is not None:
                removed_ids.add(blog_id)
        # No removed posting ranks above the floor.
        removed_keys = [p.sort_key for p in postings if p.blog_id in removed_ids]
        assert all(key <= entry.floor for key in removed_keys)


# ----------------------------------------------------------------------
# Victim selection
# ----------------------------------------------------------------------

candidates_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
        st.integers(min_value=1, max_value=100),
    ),
    min_size=0,
    max_size=50,
).map(lambda pairs: [(ts, cost, f"key{i}") for i, (ts, cost) in enumerate(pairs)])


@given(candidates_strategy, st.integers(min_value=1, max_value=2000))
def test_heap_selection_covers_budget_when_possible(candidates, budget):
    chosen = select_victims_heap(candidates, budget)
    total_available = sum(c[1] for c in candidates)
    total_chosen = sum(c[1] for c in chosen)
    if total_available >= budget:
        assert total_chosen >= budget
    else:
        assert {c[2] for c in chosen} == {c[2] for c in candidates}


@given(
    st.lists(
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
        min_size=0,
        max_size=50,
        unique=True,
    ),
    st.integers(min_value=1, max_value=300),
)
def test_heap_matches_sorted_prefix_for_uniform_costs(timestamps, budget):
    """With uniform costs and distinct timestamps the bounded-heap result
    must equal the minimal sorted-prefix cover — the O(n) algorithm loses
    nothing against the O(n log n) baseline (the paper's claim)."""
    candidates = [(ts, 10, f"key{i}") for i, ts in enumerate(timestamps)]
    heap_names = {c[2] for c in select_victims_heap(candidates, budget)}
    sort_names = {c[2] for c in select_victims_sort(candidates, budget)}
    assert heap_names == sort_names


@given(candidates_strategy, st.integers(min_value=1, max_value=2000))
def test_sort_selection_is_minimal_prefix(candidates, budget):
    chosen = select_victims_sort(candidates, budget)
    if chosen:
        without_last = sum(c[1] for c in chosen[:-1])
        assert without_last < budget


# ----------------------------------------------------------------------
# Raw store
# ----------------------------------------------------------------------

@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=4), st.text(max_size=30)),
        min_size=1,
        max_size=40,
    )
)
def test_raw_store_byte_accounting(specs):
    model = MemoryModel()
    store = RawDataStore(model)
    for i, (pcount, text) in enumerate(specs):
        record = Microblog(blog_id=i, timestamp=float(i), user_id=0, text=text)
        store.add(record, pcount=pcount)
    # Fully dereference every other record.
    for i, (pcount, _) in enumerate(specs):
        if i % 2 == 0:
            for _ in range(pcount):
                store.decref(i)
    store.check_integrity()
    assert all(i % 2 == 1 for i in (r.blog_id for r in store))


# ----------------------------------------------------------------------
# End-to-end engine invariants under random workloads
# ----------------------------------------------------------------------

keyword_strategy = st.lists(
    st.sampled_from([f"kw{i}" for i in range(12)]), min_size=1, max_size=3, unique=True
)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(keyword_strategy, min_size=10, max_size=150),
    st.booleans(),
)
def test_kflushing_integrity_under_random_streams(keyword_sets, mk):
    model = MemoryModel()
    disk = DiskArchive(model)
    eng = KFlushingEngine(
        mk=mk,
        **engine_kwargs(model, disk, k=3, capacity=6_000, flush_fraction=0.3),
    )
    for i, keywords in enumerate(keyword_sets):
        eng.insert(
            Microblog(
                blog_id=i, timestamp=float(i), user_id=0, keywords=tuple(keywords)
            )
        )
        if eng.needs_flush():
            eng.run_flush(now=float(i))
    eng.check_integrity()
    # Lossless partition per key.
    for key in [f"kw{i}" for i in range(12)]:
        truth = {
            i for i, kws in enumerate(keyword_sets) if key in kws
        }
        memory_ids = {p.blog_id for p in eng.lookup(key).candidates}
        disk_ids = {p.blog_id for p in disk.lookup(key)}
        assert memory_ids | disk_ids == truth


@settings(max_examples=15, deadline=None)
@given(st.lists(keyword_strategy, min_size=30, max_size=120), st.integers(0, 10**6))
def test_or_and_query_exactness_random(keyword_sets, seed):
    """OR always exact; AND exact in strict mode — against brute force,
    under random streams, any policy, with flushing exercised."""
    from repro.config import SystemConfig
    from repro.engine.queries import AndQuery, OrQuery
    from repro.engine.system import MicroblogSystem

    system = MicroblogSystem(
        SystemConfig(
            policy=("fifo", "kflushing", "kflushing-mk", "lru")[seed % 4],
            k=3,
            memory_capacity_bytes=6_000,
            flush_fraction=0.3,
        ),
        strict_and=True,
    )
    records = [
        Microblog(blog_id=i, timestamp=float(i), user_id=0, keywords=tuple(kws))
        for i, kws in enumerate(keyword_sets)
    ]
    for record in records:
        system.ingest(record)
    a, b = f"kw{seed % 12}", f"kw{(seed + 5) % 12}"
    or_result = system.search(OrQuery([a, b], k=3))
    or_truth = sorted(
        (r.blog_id for r in records if a in r.keywords or b in r.keywords),
        reverse=True,
    )[:3]
    assert list(or_result.blog_ids) == or_truth
    and_result = system.search(AndQuery([a, b], k=3))
    and_truth = sorted(
        (r.blog_id for r in records if a in r.keywords and b in r.keywords),
        reverse=True,
    )[:3]
    assert list(and_result.blog_ids) == and_truth


@settings(max_examples=15, deadline=None)
@given(st.lists(keyword_strategy, min_size=30, max_size=120), st.integers(0, 10**6))
def test_single_query_exactness_random(keyword_sets, seed):
    from repro.config import SystemConfig
    from repro.engine.system import MicroblogSystem

    system = MicroblogSystem(
        SystemConfig(
            policy=("fifo", "kflushing", "kflushing-mk", "lru")[seed % 4],
            k=3,
            memory_capacity_bytes=6_000,
            flush_fraction=0.3,
        )
    )
    records = [
        Microblog(blog_id=i, timestamp=float(i), user_id=0, keywords=tuple(kws))
        for i, kws in enumerate(keyword_sets)
    ]
    for record in records:
        system.ingest(record)
    key = f"kw{seed % 12}"
    result = system.search(KeywordQuery(key, k=3))
    truth = [r.blog_id for r in records if key in r.keywords]
    truth.sort(reverse=True)
    assert list(result.blog_ids) == truth[:3]
