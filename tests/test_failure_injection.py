"""Failure-injection tests: wrong usage and injected faults must surface
loudly and leave detectable (never silently corrupt) state."""

import threading

import pytest

from repro.core.kflushing import KFlushingEngine
from repro.core.recency_list import RecencyList
from repro.errors import DuplicateRecordError
from repro.storage.disk import DiskArchive
from repro.storage.memory_model import MemoryModel
from tests.conftest import engine_kwargs, make_blog, make_blogs


@pytest.fixture
def model():
    return MemoryModel()


@pytest.fixture
def disk(model):
    return DiskArchive(model)


class TestDuplicateAndUnderflow:
    def test_duplicate_ingest_rejected_everywhere(self, model, disk):
        eng = KFlushingEngine(mk=False, **engine_kwargs(model, disk))
        blog = make_blog()
        eng.insert(blog)
        with pytest.raises(DuplicateRecordError):
            eng.insert(blog)

    def test_pcount_underflow_detected(self, model, disk):
        eng = KFlushingEngine(mk=False, **engine_kwargs(model, disk))
        blog = make_blog(keywords=("a",))
        eng.insert(blog)
        eng.raw.decref(blog.blog_id)  # record leaves the store
        with pytest.raises(Exception):
            eng.raw.decref(blog.blog_id)

    def test_integrity_check_catches_manual_corruption(self, model, disk):
        eng = KFlushingEngine(mk=False, **engine_kwargs(model, disk))
        for blog in make_blogs(5, keywords=("a",)):
            eng.insert(blog)
        # Corrupt: remove a posting without charging the index.
        eng.index.get("a")._postings.pop()
        with pytest.raises(AssertionError):
            eng.check_integrity()


class TestDiskFaults:
    def test_disk_failure_during_flush_propagates(self, model, disk, monkeypatch):
        """An injected disk fault must raise out of the flush (never be
        swallowed), so operators see the data-loss window immediately."""
        eng = KFlushingEngine(
            mk=False, **engine_kwargs(model, disk, k=2, capacity=100_000)
        )
        for blog in make_blogs(10, keywords=("hot",)):
            eng.insert(blog)

        def boom(*args, **kwargs):
            raise IOError("disk unplugged")

        monkeypatch.setattr(disk, "commit_flush", boom)
        with pytest.raises(IOError, match="disk unplugged"):
            eng.run_flush(now=1e6)

    def test_flush_after_disk_recovery_continues(self, model, disk, monkeypatch):
        eng = KFlushingEngine(
            mk=False, **engine_kwargs(model, disk, k=2, capacity=100_000)
        )
        for blog in make_blogs(10, keywords=("hot",)):
            eng.insert(blog)
        original = disk.commit_flush
        monkeypatch.setattr(
            disk, "commit_flush", lambda *a, **k: (_ for _ in ()).throw(IOError())
        )
        with pytest.raises(IOError):
            eng.run_flush(now=1e6)
        monkeypatch.setattr(disk, "commit_flush", original)
        # The staged buffer survived the failed commit; the next flush
        # lands everything (idempotent record writes make this safe).
        for blog in make_blogs(10, keywords=("hot",)):
            eng.insert(blog)
        report = eng.run_flush(now=2e6)
        assert report.bytes_written_to_disk > 0
        assert disk.record_count > 0


class TestRecencyListThreadSafety:
    def test_concurrent_push_touch_pop(self):
        """The lock keeps the doubly-linked list structurally sound under
        concurrent mutation (the paper's multi-threaded access pattern)."""
        lst = RecencyList()
        for i in range(2_000):
            lst.push(i)
        errors: list[BaseException] = []

        def toucher():
            try:
                for i in range(4_000):
                    lst.touch(i % 2_000)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def popper():
            try:
                for _ in range(500):
                    lst.pop_lru()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def pusher():
            try:
                for i in range(2_000, 2_500):
                    lst.push(i)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=fn)
            for fn in (toucher, toucher, popper, pusher)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Walkable end to end and consistent with the node map.
        ids = list(lst.ids_lru_to_mru())
        assert len(ids) == len(lst)
        assert len(set(ids)) == len(ids)
