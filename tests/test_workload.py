"""Unit tests for workload generation: distributions, vocabulary, stream,
co-occurrence, and query loads."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.engine.queries import CombineMode
from repro.workload.cooccurrence import CooccurrenceModel
from repro.workload.distributions import HotspotGeoSampler, ParetoSampler, ZipfSampler
from repro.workload.queryload import QueryLoad, QueryLoadConfig
from repro.workload.stream import MicroblogStream, StreamConfig
from repro.workload.vocabulary import Vocabulary, generate_tags


def rng(seed=0):
    return np.random.default_rng(seed)


class TestZipfSampler:
    def test_rank_zero_most_likely(self):
        sampler = ZipfSampler(100, 1.0, rng())
        samples = sampler.sample_many(20_000)
        counts = np.bincount(samples, minlength=100)
        assert counts[0] == counts.max()
        assert counts[0] > 5 * counts[50]

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, 1.2, rng())
        total = sum(sampler.probability(r) for r in range(50))
        assert total == pytest.approx(1.0)

    def test_zero_exponent_is_uniform(self):
        sampler = ZipfSampler(10, 0.0, rng())
        assert sampler.probability(0) == pytest.approx(0.1)
        assert sampler.probability(9) == pytest.approx(0.1)

    def test_samples_in_range(self):
        sampler = ZipfSampler(7, 1.0, rng())
        samples = sampler.sample_many(1_000)
        assert samples.min() >= 0
        assert samples.max() < 7

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0, 1.0, rng())
        with pytest.raises(WorkloadError):
            ZipfSampler(10, -1.0, rng())
        with pytest.raises(WorkloadError):
            ZipfSampler(10, 1.0, rng()).probability(10)


class TestParetoSampler:
    def test_heavy_tail(self):
        sampler = ParetoSampler(rng(), shape=1.2, minimum=10)
        samples = sampler.sample_many(50_000)
        assert samples.min() >= 10
        assert np.median(samples) < samples.mean()  # skewed right

    def test_cap_applied(self):
        sampler = ParetoSampler(rng(), shape=0.5, minimum=10, cap=1000)
        assert sampler.sample_many(10_000).max() <= 1000

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            ParetoSampler(rng(), shape=0.0)
        with pytest.raises(WorkloadError):
            ParetoSampler(rng(), minimum=0)


class TestGeoSampler:
    def test_points_inside_bbox(self):
        sampler = HotspotGeoSampler(rng())
        min_lat, min_lon, max_lat, max_lon = sampler.bbox
        for _ in range(500):
            lat, lon = sampler.sample()
            assert min_lat <= lat <= max_lat
            assert min_lon <= lon <= max_lon

    def test_hotspots_denser_than_background(self):
        sampler = HotspotGeoSampler(rng(), background_weight=0.1)
        near_ny = 0
        for _ in range(2_000):
            lat, lon = sampler.sample()
            if abs(lat - 40.71) < 1.0 and abs(lon + 74.0) < 1.0:
                near_ny += 1
        # NY hotspot weight is 30% of the non-background mass.
        assert near_ny > 200

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            HotspotGeoSampler(rng(), hotspots=())
        with pytest.raises(WorkloadError):
            HotspotGeoSampler(rng(), background_weight=1.5)


class TestVocabulary:
    def test_generate_distinct(self):
        tags = generate_tags(500, seed=3)
        assert len(tags) == 500
        assert len(set(tags)) == 500

    def test_deterministic(self):
        assert generate_tags(50, seed=9) == generate_tags(50, seed=9)

    def test_rank_roundtrip(self):
        vocab = Vocabulary.synthetic(100)
        for rank in (0, 42, 99):
            assert vocab.rank(vocab.tag(rank)) == rank

    def test_unknown_tag_raises(self):
        vocab = Vocabulary.synthetic(10)
        with pytest.raises(WorkloadError):
            vocab.rank("definitely-not-a-tag")

    def test_duplicates_rejected(self):
        with pytest.raises(WorkloadError):
            Vocabulary(["a", "a"])


class TestCooccurrence:
    def test_companions_deterministic_and_exclude_self(self):
        model = CooccurrenceModel(1000, seed=5)
        for rank in (0, 10, 500):
            companions = model.companions(rank)
            assert companions == model.companions(rank)
            assert rank not in companions
            assert len(set(companions)) == len(companions)

    def test_companions_of_head_are_headish(self):
        model = CooccurrenceModel(10_000, seed=5)
        assert max(model.companions(3)) < 1000

    def test_tiny_vocabulary(self):
        model = CooccurrenceModel(2, companions_per_tag=5)
        assert model.companions(0) == (1,)

    def test_out_of_range_rejected(self):
        with pytest.raises(WorkloadError):
            CooccurrenceModel(10).companions(10)

    def test_sample_companion_in_set(self):
        model = CooccurrenceModel(100, seed=1)
        generator = rng(2)
        for _ in range(20):
            assert model.sample_companion(5, generator) in model.companions(5)


class TestStream:
    def make(self, **overrides):
        defaults = dict(seed=11, vocabulary_size=500, user_count=200,
                        with_locations=False)
        defaults.update(overrides)
        return MicroblogStream(StreamConfig(**defaults))

    def test_deterministic(self):
        a = self.make().take(200)
        b = self.make().take(200)
        assert [r.blog_id for r in a] == [r.blog_id for r in b]
        assert [r.keywords for r in a] == [r.keywords for r in b]

    def test_ids_and_timestamps_increase(self):
        records = self.make().take(100)
        ids = [r.blog_id for r in records]
        assert ids == sorted(ids)
        ts = [r.timestamp for r in records]
        assert ts == sorted(ts)

    def test_arrival_rate_respected(self):
        stream = self.make(arrival_rate_per_second=100.0)
        records = stream.take(101)
        assert records[100].timestamp - records[0].timestamp == pytest.approx(1.0)

    def test_keywords_skewed(self):
        stream = self.make()
        records = stream.take(5_000)
        hot = stream.vocabulary.tag(0)
        cold = stream.vocabulary.tag(400)
        hot_count = sum(1 for r in records if hot in r.keywords)
        cold_count = sum(1 for r in records if cold in r.keywords)
        assert hot_count > 10 * max(1, cold_count)

    def test_keyword_counts_in_range(self):
        records = self.make().take(1_000)
        assert all(1 <= len(r.keywords) <= 3 for r in records)

    def test_locations_when_enabled(self):
        stream = self.make(with_locations=True)
        records = stream.take(50)
        assert all(r.has_location for r in records)

    def test_no_locations_when_disabled(self):
        records = self.make().take(50)
        assert all(not r.has_location for r in records)

    def test_followers_assigned_per_user(self):
        records = self.make().take(2_000)
        by_user = {}
        for r in records:
            by_user.setdefault(r.user_id, set()).add(r.followers)
        assert all(len(f) == 1 for f in by_user.values())

    def test_cooccurrence_shapes_pairs(self):
        """Tag pairs co-occur far more often than independence predicts."""
        stream = self.make(vocabulary_size=2_000, cooccurrence_prob=0.8)
        records = stream.take(20_000)
        vocab = stream.vocabulary
        companions = {
            vocab.tag(c) for c in stream.cooccurrence.companions(0)
        }
        with_hot = [r for r in records if vocab.tag(0) in r.keywords and len(r.keywords) > 1]
        paired = sum(
            1 for r in with_hot if companions & set(r.keywords)
        )
        assert paired > 0.3 * len(with_hot)

    def test_keyword_probability(self):
        stream = self.make()
        assert stream.keyword_probability(stream.vocabulary.tag(0)) > \
            stream.keyword_probability(stream.vocabulary.tag(100))


class TestQueryLoad:
    def make(self, mode="correlated", attribute="keyword", **overrides):
        stream = MicroblogStream(
            StreamConfig(seed=11, vocabulary_size=500, user_count=200,
                         with_locations=(attribute == "spatial"))
        )
        cfg = QueryLoadConfig(seed=77, mode=mode, attribute=attribute, **overrides)
        return QueryLoad(cfg, stream), stream

    def test_deterministic(self):
        load_a, _ = self.make()
        load_b, _ = self.make()
        a = [q.keys for q in load_a.take(100)]
        b = [q.keys for q in load_b.take(100)]
        assert a == b

    def test_keyword_mix_has_all_modes(self):
        load, _ = self.make()
        modes = {q.mode for q in load.take(300)}
        assert modes == {CombineMode.SINGLE, CombineMode.AND, CombineMode.OR}

    def test_mix_fractions_roughly_respected(self):
        load, _ = self.make()
        queries = load.take(3_000)
        singles = sum(1 for q in queries if q.mode is CombineMode.SINGLE)
        assert 800 < singles < 1200

    def test_correlated_prefers_hot_tags(self):
        load, stream = self.make(mode="correlated")
        hot = stream.vocabulary.tag(0)
        queries = load.take(3_000)
        hot_hits = sum(1 for q in queries if hot in q.keys)
        assert hot_hits > 50

    def test_uniform_spreads_evenly(self):
        load, stream = self.make(mode="uniform")
        queries = load.take(3_000)
        hot = stream.vocabulary.tag(0)
        hot_hits = sum(1 for q in queries if hot in q.keys)
        # Uniform over 500 tags with ~1.3 keys/query -> ~8 expected.
        assert hot_hits < 40

    def test_user_queries_single_key(self):
        load, _ = self.make(attribute="user")
        queries = load.take(100)
        assert all(q.mode is CombineMode.SINGLE for q in queries)
        assert all(isinstance(q.keys[0], int) for q in queries)

    def test_spatial_queries_are_tiles(self):
        load, _ = self.make(attribute="spatial")
        queries = load.take(100)
        assert all(q.mode is CombineMode.SINGLE for q in queries)
        assert all(isinstance(q.keys[0], tuple) for q in queries)

    def test_pair_keys_distinct(self):
        load, _ = self.make()
        for q in load.take(500):
            assert len(set(q.keys)) == len(q.keys)

    def test_invalid_config(self):
        with pytest.raises(WorkloadError):
            QueryLoadConfig(mode="bogus")
        with pytest.raises(WorkloadError):
            QueryLoadConfig(attribute="bogus")
        with pytest.raises(WorkloadError):
            QueryLoadConfig(k=0)
        with pytest.raises(WorkloadError):
            QueryLoadConfig(mix=(0.5, 0.5, 0.5))

    def test_take_negative_rejected(self):
        load, _ = self.make()
        with pytest.raises(WorkloadError):
            load.take(-1)
