"""Adaptive-controller tests: neutrality, determinism, and the levers.

The correctness anchors of PR 9:

* **adaptive-off differential** — with ``adaptive=False`` (the default)
  and with a never-firing controller (``adaptive=True`` at a huge
  retune interval), every deterministic ``TrialResult`` field must be
  bit-identical to the static kFlushing run: the heat/ledger
  bookkeeping the flag turns on changes no answers;
* **controller determinism** — two identical adaptive runs produce the
  same results, depths, and adaptive counters (no wall clock, no
  per-process hash order anywhere in the decisions);
* **k_i >= k property** (hypothesis) — no sequence of allocator
  operations can push a per-key retention depth below the global ``k``,
  the structural invariant answer completeness rests on;
* **ledger overflow** — a tiny ``eviction_ledger_capacity`` overflows
  visibly: the ``eviction_ledger.dropped`` counter counts every evicted
  attribution record instead of dropping them silently.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.adaptive import (
    AdaptiveController,
    AdaptiveSettings,
    KAllocator,
    KeyHeat,
    ShardBudgetBalancer,
)
from repro.engine.sharded import build_system
from repro.errors import ConfigurationError
from repro.experiments.runner import TrialSpec, run_trial
from repro.obs import Instrumentation
from repro.workload.queryload import QueryLoad, QueryLoadConfig
from repro.workload.stream import MicroblogStream, StreamConfig
from tests.test_experiments import MICRO
from tests.test_sharding import DETERMINISTIC_FIELDS

#: A retune interval no MICRO-scale run ever reaches: the controller is
#: armed (heat tracking, ledger, allocator all live) but never fires.
NEVER = 1_000_000


def _fields(result) -> dict:
    return {name: getattr(result, name) for name in DETERMINISTIC_FIELDS}


class TestAdaptiveOffDifferential:
    @pytest.mark.parametrize("policy", ["fifo", "kflushing", "kflushing-mk", "lru"])
    def test_armed_but_idle_controller_is_bit_identical(self, policy):
        """adaptive=True with a never-firing controller changes nothing:
        the feedback bookkeeping is provably off the answer path."""
        static = run_trial(TrialSpec(policy=policy, scale=MICRO, seed=11))
        armed = run_trial(
            TrialSpec(
                policy=policy,
                scale=MICRO,
                seed=11,
                adaptive=True,
                adaptive_interval=NEVER,
            )
        )
        assert _fields(static) == _fields(armed)

    @pytest.mark.parametrize("shards", [1, 4])
    def test_sharded_armed_idle_differential(self, shards):
        static = run_trial(
            TrialSpec(policy="kflushing", scale=MICRO, seed=11, shards=shards)
        )
        armed = run_trial(
            TrialSpec(
                policy="kflushing",
                scale=MICRO,
                seed=11,
                shards=shards,
                adaptive=True,
                adaptive_interval=NEVER,
            )
        )
        assert _fields(static) == _fields(armed)

    def test_pipelined_inline_armed_idle_differential(self):
        common = dict(
            policy="kflushing",
            scale=MICRO,
            seed=11,
            pipelined_ingest=True,
            flush_workers=0,
        )
        static = run_trial(TrialSpec(**common))
        armed = run_trial(
            TrialSpec(**common, adaptive=True, adaptive_interval=NEVER)
        )
        assert _fields(static) == _fields(armed)

    def test_default_config_has_no_controller(self):
        system = build_system(SystemConfig(memory_capacity_bytes=200_000))
        assert system.engine.adaptive is None
        assert system.engine.allocator is None
        assert system.engine.key_heat is None
        system.close()


class TestControllerDeterminism:
    def _adaptive_trial(self):
        return run_trial(
            TrialSpec(policy="kflushing", scale=MICRO, seed=11, adaptive=True)
        )

    def test_identical_runs_identical_results(self):
        assert _fields(self._adaptive_trial()) == _fields(self._adaptive_trial())

    def test_identical_runs_identical_depths_and_counters(self):
        def run():
            config = SystemConfig(
                policy="kflushing",
                k=5,
                memory_capacity_bytes=120_000,
                adaptive=True,
            )
            obs = Instrumentation()
            system = build_system(config, obs=obs)
            stream = MicroblogStream(
                StreamConfig(seed=3, vocabulary_size=300, with_locations=False)
            )
            queries = QueryLoad(
                QueryLoadConfig(seed=4, mode="correlated", k=5), stream
            )
            for i, record in enumerate(stream.take(6_000)):
                system.ingest(record)
                if i % 2 == 0:
                    system.search(queries.next_query())
            allocator = system.engine.allocator
            depths = {
                key: allocator.depth_of(key) for key in allocator.deepened_keys()
            }
            counters = {
                name: value
                for name, value in obs.registry.snapshot()["counters"].items()
                if name.startswith("adaptive.")
            }
            system.close()
            return depths, counters

        first, second = run(), run()
        assert first == second
        depths, counters = first
        assert counters["adaptive.retune_cycles"] > 0
        assert depths, "expected at least one deepened key"


class TestKAllocator:
    def test_depth_floor_and_sparse_default(self):
        alloc = KAllocator(20)
        assert alloc.depth_of("a") == 20
        assert alloc.set_depth("a", 5) == 20  # clamped to the floor
        assert len(alloc) == 0  # floor depths are not stored
        assert alloc.set_depth("a", 80) == 80
        assert alloc.depth_of("a") == 80
        assert len(alloc) == 1

    def test_rebase_drops_shallow_depths(self):
        alloc = KAllocator(10)
        alloc.set_depth("a", 15)
        alloc.set_depth("b", 40)
        alloc.rebase(20)
        assert alloc.depth_of("a") == 20  # 15 <= new floor, dropped
        assert alloc.depth_of("b") == 40
        assert alloc.max_depth() == 40

    def test_rejects_nonpositive_base(self):
        with pytest.raises(ValueError):
            KAllocator(0)
        with pytest.raises(ValueError):
            KAllocator(10).rebase(-1)

    @given(
        base_k=st.integers(min_value=1, max_value=64),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["set", "rebase"]),
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=-50, max_value=500),
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_depth_never_below_global_k(self, base_k, ops):
        """The structural invariant: whatever sequence of promotions,
        demotions, and dynamic-k rebases runs, every per-key retention
        depth stays >= the current global k."""
        alloc = KAllocator(base_k)
        keys = [f"key{i}" for i in range(10)]
        for op, key_idx, value in ops:
            if op == "set":
                alloc.set_depth(keys[key_idx], value)
            else:
                if value >= 1:
                    alloc.rebase(value)
        for key in keys:
            assert alloc.depth_of(key) >= alloc.base_k
        assert alloc.max_depth() >= alloc.base_k


class TestKeyHeat:
    def test_query_and_miss_counting(self):
        heat = KeyHeat()
        heat.note_query(("a", "b"), hit=True)
        heat.note_query(("a",), hit=False)
        assert heat.queried == {"a": 2, "b": 1}
        assert heat.missed == {"a": 1}

    def test_decay_halves_and_drops_zeros(self):
        heat = KeyHeat()
        heat.note_query(("a",) * 4, hit=False)
        heat.note_query(("b",), hit=False)
        heat.decay()
        assert heat.queried == {"a": 2}  # b's count 1 -> 0, dropped
        assert heat.missed == {"a": 2}

    def test_top_order_is_stable(self):
        heat = KeyHeat()
        heat.note_query(("b", "a", "c"), hit=False)
        # All counts equal: ties break on repr, not insertion order.
        assert [k for k, _ in heat.top_queried(3)] == ["a", "b", "c"]


class TestControllerLevers:
    def _engine_stub(self):
        config = SystemConfig(
            policy="kflushing", k=5, memory_capacity_bytes=200_000, adaptive=True
        )
        return build_system(config)

    def test_promotion_and_demotion(self):
        system = self._engine_stub()
        engine = system.engine
        controller = engine.adaptive
        heat = engine.key_heat
        for _ in range(10):
            heat.note_query(("hot",), hit=False)
        controller.retune(engine)
        assert engine.allocator.depth_of("hot") > engine.k
        # Once the key cools off the depth decays back toward k.
        for _ in range(40):
            for key in ("x", "y", "z"):
                heat.note_query((key,), hit=True)
            controller.retune(engine)
        assert engine.allocator.depth_of("hot") == engine.k
        system.close()

    def test_depth_capped_at_k_max(self):
        system = self._engine_stub()
        engine = system.engine
        controller = engine.adaptive
        k_max = controller.settings.resolved_k_max(engine.k)
        for _ in range(30):
            engine.key_heat.note_query(("hot",), hit=False)
            controller.retune(engine)
        assert engine.allocator.depth_of("hot") == k_max
        system.close()

    def test_slack_follows_wholesale_miss_fraction(self):
        system = self._engine_stub()
        engine = system.engine
        controller = engine.adaptive
        step = controller.settings.slack_step
        for _ in range(20):
            controller.observe(False, "phase3-forced")
        controller.retune(engine)
        assert engine.escalation_slack == pytest.approx(step)
        # A window of phase-1 misses decays the slack back down.
        for _ in range(20):
            controller.observe(False, "phase1-regular")
        controller.retune(engine)
        assert engine.escalation_slack == pytest.approx(0.0)
        system.close()

    def test_slack_needs_minimum_window(self):
        system = self._engine_stub()
        engine = system.engine
        controller = engine.adaptive
        for _ in range(controller.settings.min_window_misses - 1):
            controller.observe(False, "phase3-forced")
        controller.retune(engine)
        assert engine.escalation_slack == 0.0
        system.close()


class TestShardBudgetBalancer:
    def _sharded(self, shards=4):
        return build_system(
            SystemConfig(
                memory_capacity_bytes=400_000, shards=shards, adaptive=True
            )
        )

    def test_rebalance_is_bounded_and_sum_preserving(self):
        system = self._sharded()
        shards = system.shards
        total0 = sum(s.capacity_bytes for s in shards)
        balancer = system._balancer
        assert balancer is not None
        # Fake a skewed flush window: shard 0 flushed, others idle.
        balancer._last_counts = [0] * len(shards)
        shards[0].engine.flush_reports.extend([object()] * 5)
        balancer.rebalance(system)
        assert sum(s.capacity_bytes for s in shards) == total0
        step = int(total0 * balancer.settings.shard_step)
        assert shards[0].capacity_bytes <= total0 // len(shards) + step
        # The engine's own budget field moved with the shard's.
        for shard in shards:
            assert shard.engine.capacity_bytes == shard.capacity_bytes
        system.close()

    def test_floor_prevents_starvation(self):
        system = self._sharded()
        shards = system.shards
        balancer = system._balancer
        for round_ in range(50):
            balancer._last_counts = [0] * len(shards)
            shards[0].engine.flush_reports.extend([object()] * 3)
            balancer.rebalance(system)
        for shard, floor in zip(shards, balancer._floors):
            assert shard.capacity_bytes >= floor
        system.close()

    def test_single_shard_has_no_balancer(self):
        system = build_system(
            SystemConfig(memory_capacity_bytes=200_000, adaptive=True)
        )
        assert getattr(system, "_balancer", None) is None
        system.close()


class TestEvictionLedgerOverflow:
    def test_tiny_ledger_counts_drops(self):
        """Overflowing the attribution ledger is visible, not silent."""
        obs = Instrumentation(attribution=True)
        config = SystemConfig(
            policy="kflushing",
            k=5,
            memory_capacity_bytes=60_000,
            eviction_ledger_capacity=4,
        )
        system = build_system(config, obs=obs)
        stream = MicroblogStream(
            StreamConfig(seed=5, vocabulary_size=500, with_locations=False)
        )
        system.ingest_many(stream.take(20_000))
        counters = obs.registry.snapshot()["counters"]
        assert counters["eviction_ledger.dropped"] > 0
        assert len(system.engine.eviction_ledger) <= 4
        system.close()

    def test_default_capacity_never_drops_here(self):
        obs = Instrumentation(attribution=True)
        system = build_system(
            SystemConfig(
                policy="kflushing", k=5, memory_capacity_bytes=60_000
            ),
            obs=obs,
        )
        stream = MicroblogStream(
            StreamConfig(seed=5, vocabulary_size=500, with_locations=False)
        )
        system.ingest_many(stream.take(20_000))
        counters = obs.registry.snapshot()["counters"]
        # The counter exists (pre-created with the ledger) and is zero.
        assert counters["eviction_ledger.dropped"] == 0
        system.close()


class TestHotKeysSnapshot:
    def test_snapshot_carries_hot_keys_when_heat_is_on(self):
        config = SystemConfig(
            policy="kflushing", k=5, memory_capacity_bytes=150_000, adaptive=True
        )
        system = build_system(config)
        stream = MicroblogStream(
            StreamConfig(seed=6, vocabulary_size=300, with_locations=False)
        )
        queries = QueryLoad(QueryLoadConfig(seed=7, mode="correlated", k=5), stream)
        for i, record in enumerate(stream.take(8_000)):
            system.ingest(record)
            if i % 4 == 0:
                system.search(queries.next_query())
        snap = system.snapshot()
        hot = snap["hot_keys"]
        assert hot["most_queried"], "expected a non-empty most-queried table"
        for key, count in hot["most_queried"]:
            assert isinstance(key, str) and count > 0
        counts = [count for _key, count in hot["most_queried"]]
        assert counts == sorted(counts, reverse=True)
        system.close()

    def test_snapshot_has_no_hot_keys_by_default(self):
        system = build_system(SystemConfig(memory_capacity_bytes=150_000))
        assert "hot_keys" not in system.snapshot()
        system.close()


class TestConfigValidation:
    def test_rejects_bad_adaptive_knobs(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(memory_capacity_bytes=1000, adaptive_interval=0)
        with pytest.raises(ConfigurationError):
            SystemConfig(memory_capacity_bytes=1000, k=20, adaptive_k_max=10)
        with pytest.raises(ConfigurationError):
            SystemConfig(memory_capacity_bytes=1000, adaptive_hot_keys=0)
        with pytest.raises(ConfigurationError):
            SystemConfig(memory_capacity_bytes=1000, adaptive_shard_step=1.5)
        with pytest.raises(ConfigurationError):
            SystemConfig(memory_capacity_bytes=1000, eviction_ledger_capacity=0)

    def test_settings_resolution(self):
        config = SystemConfig(memory_capacity_bytes=1000, adaptive=True)
        settings = config.adaptive_settings()
        assert isinstance(settings, AdaptiveSettings)
        assert SystemConfig(memory_capacity_bytes=1000).adaptive_settings() is None
