"""Unit tests for the temporally segmented index (FIFO substrate)."""

import pytest

from repro.errors import DuplicateRecordError
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import MIN_SORT_KEY
from repro.storage.segmented_index import SegmentedIndex
from tests.conftest import make_blog


@pytest.fixture
def model():
    return MemoryModel()


def build(model, capacity=2_000):
    return SegmentedIndex(model, segment_capacity_bytes=capacity)


def insert_blog(index, blog):
    index.insert(blog, blog.keywords, score=blog.timestamp)


class TestSegments:
    def test_starts_with_one_open_segment(self, model):
        index = build(model)
        assert index.segment_count == 1
        assert not next(index.segments()).is_sealed

    def test_seals_when_capacity_reached(self, model):
        index = build(model, capacity=500)
        for _ in range(20):
            insert_blog(index, make_blog())
        assert index.segment_count > 1
        segments = list(index.segments())
        assert all(s.is_sealed for s in segments[:-1])
        assert not segments[-1].is_sealed

    def test_segments_temporally_disjoint(self, model):
        index = build(model, capacity=500)
        for _ in range(30):
            insert_blog(index, make_blog())
        segments = list(index.segments())
        for older, newer in zip(segments, segments[1:]):
            assert older.end_time is not None
            assert older.end_time <= newer.start_time

    def test_duplicate_record_rejected(self, model):
        index = build(model)
        blog = make_blog()
        insert_blog(index, blog)
        with pytest.raises(DuplicateRecordError):
            insert_blog(index, blog)

    def test_invalid_capacity_rejected(self, model):
        with pytest.raises(ValueError):
            SegmentedIndex(model, segment_capacity_bytes=0)


class TestLookup:
    def test_candidates_cross_segments_best_first(self, model):
        index = build(model, capacity=400)
        blogs = [make_blog(keywords=("k",)) for _ in range(15)]
        for blog in blogs:
            insert_blog(index, blog)
        assert index.segment_count > 1
        candidates = index.candidates("k")
        ids = [p.blog_id for p in candidates]
        assert ids == sorted(ids, reverse=True)
        assert len(ids) == 15

    def test_candidates_depth_cap(self, model):
        index = build(model, capacity=400)
        for _ in range(15):
            insert_blog(index, make_blog(keywords=("k",)))
        top3 = index.candidates("k", depth=3)
        full = index.candidates("k")
        assert [p.blog_id for p in top3] == [p.blog_id for p in full[:3]]

    def test_missing_key(self, model):
        index = build(model)
        assert index.candidates("ghost") == []

    def test_get_record(self, model):
        index = build(model, capacity=400)
        blogs = [make_blog() for _ in range(12)]
        for blog in blogs:
            insert_blog(index, blog)
        assert index.get_record(blogs[0].blog_id) is blogs[0]
        assert index.get_record(999_999) is None


class TestEviction:
    def test_pop_oldest_removes_first_segment(self, model):
        index = build(model, capacity=400)
        for _ in range(20):
            insert_blog(index, make_blog(keywords=("k",)))
        before = index.record_count()
        segment = index.pop_oldest()
        assert index.record_count() == before - len(segment.records)

    def test_floor_rises_after_eviction(self, model):
        index = build(model, capacity=400)
        for _ in range(20):
            insert_blog(index, make_blog(keywords=("k",)))
        assert index.flushed_floor == MIN_SORT_KEY
        segment = index.pop_oldest()
        newest_flushed = max(p.sort_key for e in segment.entries.values() for p in e)
        assert index.flushed_floor == newest_flushed

    def test_evicting_everything_leaves_open_segment(self, model):
        index = build(model, capacity=400)
        for _ in range(10):
            insert_blog(index, make_blog())
        while index.record_count() > 0:
            index.pop_oldest()
        assert index.segment_count >= 1
        insert_blog(index, make_blog())  # still usable
        assert index.record_count() == 1

    def test_bytes_shrink_on_eviction(self, model):
        index = build(model, capacity=400)
        for _ in range(20):
            insert_blog(index, make_blog())
        before = index.bytes_used
        index.pop_oldest()
        assert index.bytes_used < before


class TestMetrics:
    def test_key_posting_counts_aggregate(self, model):
        index = build(model, capacity=400)
        for _ in range(8):
            insert_blog(index, make_blog(keywords=("a",)))
        for _ in range(3):
            insert_blog(index, make_blog(keywords=("b",)))
        counts = index.key_posting_counts()
        assert counts == {"a": 8, "b": 3}

    def test_k_filled_count(self, model):
        index = build(model, capacity=100_000)
        for _ in range(5):
            insert_blog(index, make_blog(keywords=("hot",)))
        insert_blog(index, make_blog(keywords=("cold",)))
        assert index.k_filled_count(5) == 1
        assert index.k_filled_count(1) == 2

    def test_k_filled_after_eviction(self, model):
        index = build(model, capacity=300)
        for _ in range(20):
            insert_blog(index, make_blog(keywords=("k",)))
        index.pop_oldest()
        remaining = index.record_count()
        # Everything still in memory arrived after the flushed segment, so
        # it sits above the floor: the key is k-filled for its remaining
        # count but not for one more.
        assert index.k_filled_count(remaining) == 1
        assert index.k_filled_count(remaining + 1) == 0
