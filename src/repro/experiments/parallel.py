"""Process-parallel trial execution for the figure sweeps.

Every figure of the paper's evaluation is a grid of independent
``(policy, x-value)`` trials; nothing is shared between them (each trial
builds its own system, stream, and query load from the seeds carried in
its :class:`~repro.experiments.runner.TrialSpec`).  That makes the grid
embarrassingly parallel — :func:`run_trials` fans it out over a
``ProcessPoolExecutor`` while guaranteeing that the *results* are
indistinguishable from a serial run:

* **deterministic per-spec seeding** — all randomness in a trial derives
  from ``spec.seed`` (stream) and ``spec.seed + 1`` (query load), fixed
  at spec construction, so a trial computes the same result in any
  process, in any order;
* **ordered merge** — results come back in spec order regardless of
  completion order (``ProcessPoolExecutor.map`` semantics), so callers
  index them positionally exactly as the old serial loops did.

``jobs=1`` (the default everywhere) bypasses the pool entirely and runs
the trials inline — byte-identical to the pre-existing serial path, and
the mode differential tests compare against.

Caveat: trials running in worker processes record their instrumentation
into the worker's registry, not the parent's, so an ``activated()``
observation scope does not see events from parallel trials.  The CLI
therefore keeps ``--metrics-out`` runs serial.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Sequence

from repro.experiments.runner import TrialResult, TrialSpec, run_trial

__all__ = ["run_trials", "resolve_jobs"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request: None/0 → ``REPRO_JOBS`` env or 1.

    A negative value means "all cores" (``os.cpu_count()``).
    """
    if jobs is None or jobs == 0:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def run_trials(
    specs: Sequence[TrialSpec],
    jobs: Optional[int] = None,
    runner: Callable[[TrialSpec], TrialResult] = run_trial,
) -> list[TrialResult]:
    """Run a grid of trials, optionally across processes.

    ``runner`` must be a picklable module-level callable taking one spec
    (``run_trial`` or ``run_digestion_stress``).  Results are returned in
    ``specs`` order; a failure in any trial propagates as the original
    exception after the pool shuts down.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        return [runner(spec) for spec in specs]
    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(runner, specs, chunksize=1))
