"""Process-parallel trial execution for the figure sweeps.

Every figure of the paper's evaluation is a grid of independent
``(policy, x-value)`` trials; nothing is shared between them (each trial
builds its own system, stream, and query load from the seeds carried in
its :class:`~repro.experiments.runner.TrialSpec`).  That makes the grid
embarrassingly parallel — :func:`run_trials` fans it out over a
``ProcessPoolExecutor`` while guaranteeing that the *results* are
indistinguishable from a serial run:

* **deterministic per-spec seeding** — all randomness in a trial derives
  from ``spec.seed`` (stream) and ``spec.seed + 1`` (query load), fixed
  at spec construction, so a trial computes the same result in any
  process, in any order;
* **ordered merge** — results come back in spec order regardless of
  completion order (``ProcessPoolExecutor.map`` semantics), so callers
  index them positionally exactly as the old serial loops did.

``jobs=1`` (the default everywhere) bypasses the pool entirely and runs
the trials inline — byte-identical to the pre-existing serial path, and
the mode differential tests compare against.

Instrumentation under parallelism: worker processes cannot reach the
parent's JSONL sink, so each trial writes its events to a private
*metric shard* (``<metrics_path>.wNNN``, one per spec) and
:func:`run_trials` concatenates the shards — in spec order — into the
parent file after the pool drains.  The shard files are deleted after
the merge.  The target path is either passed explicitly
(``metrics_path=``) or discovered from the enclosing
``repro.obs.activated`` scope when its sink is a
:class:`~repro.obs.JsonlSink`; this is what lets the CLI combine
``--jobs`` with ``--metrics-out``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.experiments.runner import TrialResult, TrialSpec, run_trial
from repro.obs import JsonlSink
from repro.obs.runtime import get_active

__all__ = ["run_trials", "resolve_jobs"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request: None/0 → ``REPRO_JOBS`` env or 1.

    A negative value means "all cores" (``os.cpu_count()``).
    """
    if jobs is None or jobs == 0:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


@dataclass(frozen=True)
class _SinkedCall:
    """Picklable wrapper running one trial with a private metric shard."""

    runner: Callable[..., TrialResult]
    metrics_path: str

    def __call__(self, spec: TrialSpec) -> TrialResult:
        return self.runner(spec, metrics_path=self.metrics_path)


def _invoke(call: Callable[[TrialSpec], TrialResult], spec: TrialSpec) -> TrialResult:
    """Module-level trampoline so ``pool.map`` can vary the callable."""
    return call(spec)


def _active_jsonl_sink() -> Optional[JsonlSink]:
    """The enclosing observation scope's JSONL sink, if there is one."""
    active = get_active()
    sink = getattr(active, "sink", None)
    return sink if isinstance(sink, JsonlSink) else None


def _merge_metric_shards(
    shard_paths: Sequence[Path],
    parent_sink: Optional[JsonlSink],
    metrics_path: Union[str, Path],
) -> None:
    """Concatenate worker metric shards into the parent metrics file.

    Shards are merged in spec order, so the combined file groups each
    trial's events contiguously (a serial run interleaves them the same
    way).  Missing shards — a trial that never emitted — are skipped;
    merged shards are deleted.
    """
    sink = parent_sink if parent_sink is not None else JsonlSink(metrics_path)
    try:
        for path in shard_paths:
            if not path.exists():
                continue
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.rstrip("\n")
                    if line:
                        sink.write_raw(line)
            path.unlink()
    finally:
        if parent_sink is None:
            sink.close()


def run_trials(
    specs: Sequence[TrialSpec],
    jobs: Optional[int] = None,
    runner: Callable[..., TrialResult] = run_trial,
    metrics_path: Optional[Union[str, Path]] = None,
) -> list[TrialResult]:
    """Run a grid of trials, optionally across processes.

    ``runner`` must be a picklable module-level callable taking a spec
    plus a ``metrics_path`` keyword (``run_trial`` or
    ``run_digestion_stress``).  Results are returned in ``specs`` order;
    a failure in any trial propagates as the original exception after the
    pool shuts down.

    ``metrics_path`` streams every trial's instrumentation events to one
    JSONL file even when ``jobs > 1`` (per-worker shards are merged after
    the pool drains).  When omitted, an enclosing ``activated`` scope
    with a JSONL sink is detected and its file is used as the merge
    target — worker events then land in the same file the parent's own
    events go to.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    parent_sink = None
    if metrics_path is None:
        parent_sink = _active_jsonl_sink()
        if parent_sink is not None:
            metrics_path = parent_sink.path
    if jobs <= 1 or len(specs) <= 1:
        if parent_sink is not None:
            # Serial trials inside an activated scope already share the
            # parent registry and sink; passing the path too would build
            # a second system/sink pair for the same file.
            return [runner(spec) for spec in specs]
        if metrics_path is not None:
            return [runner(spec, metrics_path=metrics_path) for spec in specs]
        return [runner(spec) for spec in specs]
    workers = min(jobs, len(specs))
    if metrics_path is None:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(runner, specs, chunksize=1))
    shard_paths = [Path(f"{metrics_path}.w{i:03d}") for i in range(len(specs))]
    calls = [_SinkedCall(runner, str(path)) for path in shard_paths]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(_invoke, calls, specs, chunksize=1))
    _merge_metric_shards(shard_paths, parent_sink, metrics_path)
    return results
