"""Export experiment results to machine-readable formats.

The ASCII tables of :mod:`repro.experiments.report` are for reading;
plotting and downstream analysis want data files.  This module writes a
:class:`~repro.experiments.figures.FigureResult` to

* **JSON** — one file per figure, panels nested, lossless;
* **CSV**  — one file per sweep panel, one row per x value, one column
  per series (table panels export their rows verbatim).

The benchmark harness calls :func:`export_figure` next to its text
output, so ``benchmarks/results/`` always carries both forms.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

from repro.experiments.figures import FigureResult, SweepResult, TableResult

__all__ = ["figure_to_dict", "export_figure"]

PathLike = Union[str, Path]


def figure_to_dict(figure: FigureResult) -> dict:
    """Lossless dict form of a figure (JSON-serialisable)."""
    panels = []
    for panel in figure.panels:
        data = asdict(panel)
        data["kind"] = "sweep" if isinstance(panel, SweepResult) else "table"
        panels.append(data)
    return {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "panels": panels,
    }


def _export_sweep_csv(panel: SweepResult, path: Path) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([panel.x_label] + list(panel.series))
        for i, x in enumerate(panel.xs):
            writer.writerow([x] + [panel.series[name][i] for name in panel.series])


def _export_table_csv(panel: TableResult, path: Path) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(panel.headers)
        writer.writerows(panel.rows)


def export_figure(figure: FigureResult, directory: PathLike, tag: str = "") -> list[Path]:
    """Write JSON + per-panel CSVs under ``directory``.

    ``tag`` (e.g. the scale-preset name) is appended to file stems so
    results from different fidelities can coexist.  Returns the written
    paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = f"_{tag}" if tag else ""
    written: list[Path] = []

    json_path = directory / f"{figure.figure_id}{suffix}.json"
    json_path.write_text(json.dumps(figure_to_dict(figure), indent=2))
    written.append(json_path)

    for panel in figure.panels:
        csv_path = directory / f"{panel.panel_id}{suffix}.csv"
        if isinstance(panel, SweepResult):
            _export_sweep_csv(panel, csv_path)
        else:
            _export_table_csv(panel, csv_path)
        written.append(csv_path)
    return written
