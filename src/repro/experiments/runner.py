"""Experiment runner: steady-state trials matching the paper's method.

The paper's measurements are taken "only in the steady state, i.e., after
filling the main-memory budget and have multiple data flushes"
(Section V).  :func:`run_trial` reproduces that protocol:

1. build a system for one (policy, attribute, k, memory, budget) point;
2. **warm up** by ingesting the stream until several flushes have run;
3. **measure** over a window in which queries are interleaved with
   continued ingestion, counting hits only inside the window.

:func:`run_digestion_stress` is the Figure 10(b) protocol: ingestion is
unbounded while queries arrive at a fixed *wall-clock* rate, so slower
policies face proportionally more query-side bookkeeping per ingested
record — the closed loop that amplifies per-item-bookkeeping costs exactly
the way thread contention does in the paper's testbed.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.config import SystemConfig
from repro.engine.queries import CombineMode
from repro.engine.sharded import build_system as build_system_from_config
from repro.engine.system import MicroblogSystemBase
from repro.engine.stats import QueryStats
from repro.errors import ConfigurationError
from repro.obs import Instrumentation, JsonlSink
from repro.experiments.scale import (
    PAPER_FLUSH_BUDGET,
    PAPER_K,
    PAPER_MEMORY_GB,
    PAPER_QUERY_RATE_PER_S,
    SMALL,
    ScalePreset,
)
from repro.workload.queryload import QueryLoad, QueryLoadConfig
from repro.workload.stream import MicroblogStream, StreamConfig

__all__ = ["TrialSpec", "TrialResult", "run_trial", "run_digestion_stress"]

_WARM_CHUNK = 4096


@dataclass(frozen=True)
class TrialSpec:
    """One experimental point."""

    policy: str
    attribute: str = "keyword"
    workload_mode: str = "correlated"
    k: int = PAPER_K
    memory_gb: float = PAPER_MEMORY_GB
    flush_budget: float = PAPER_FLUSH_BUDGET
    scale: ScalePreset = SMALL
    seed: int = 42
    #: Override the stream's keyword Zipf exponent (None = stream default);
    #: used by the skew-sensitivity extension experiment.
    keyword_zipf: float | None = None
    #: Evaluate AND queries under the strict (provable) hit criterion
    #: instead of the paper's operational one; used by the AND-semantics
    #: ablation.
    strict_and: bool = False
    #: Hash-partitioned shard count (1 = the paper's single partition).
    shards: int = 1
    #: Build the sharded facade even at ``shards=1`` (the differential
    #: test's hook for proving the sharded path is bit-identical).
    force_sharded: bool = False
    #: Modelled disk read-cache budget (0 = off, the paper's accounting).
    disk_cache_bytes: int = 0
    #: Skip provably-empty disk lookups on the executor miss paths.
    disk_elide_empty: bool = False
    #: Rotate over-budget memtables to background flush workers instead
    #: of flushing inline (False = the paper's synchronous flushing).
    pipelined_ingest: bool = False
    #: Worker threads for pipelined ingest (None = one per shard;
    #: 0 = deterministic inline drain, the differential tests' mode).
    flush_workers: int | None = None
    #: Array-backed posting columns with interned key ids (False = the
    #: legacy tuple-per-posting layout, bit-identical to the seed).
    columnar: bool = False
    #: Charge the memory budget at the columnar layout's per-posting cost
    #: (requires ``columnar``; False keeps the legacy budget math so
    #: flush cadence stays comparable across layouts).
    columnar_cost: bool = False
    #: Run the adaptive retention/budget controller at flush boundaries
    #: (False = the paper's static kFlushing tuning, bit-identical to it).
    adaptive: bool = False
    #: Retune cadence in flush cycles (forwarded to the controller; a
    #: huge value yields a never-firing controller — the differential
    #: tests' hook for proving the bookkeeping changes no answers).
    adaptive_interval: int = 1
    #: Declarative SLO objectives (a spec dict, JSON string, or file
    #: path; None = no tracker, the paper's untracked path).
    slo_spec: str | None = None
    #: Flight-recorder ring capacity in events (0 = off).
    flight_recorder_events: int = 0
    #: Breach-dump path (None = ``flight_recorder_dump.jsonl``).
    flight_recorder_path: str | None = None

    def build_system(self, obs: Optional[Instrumentation] = None) -> MicroblogSystemBase:
        config = SystemConfig(
            policy=self.policy,
            attribute=self.attribute,
            k=self.k,
            memory_capacity_bytes=self.scale.capacity_bytes(self.memory_gb),
            flush_fraction=self.flush_budget,
            and_scan_depth=max(self.scale.and_scan_depth, self.k),
            and_disk_limit=max(self.scale.and_disk_limit, self.k),
            tile_side_degrees=self.scale.tile_side_degrees,
            shards=self.shards,
            disk_cache_bytes=self.disk_cache_bytes,
            disk_elide_empty=self.disk_elide_empty,
            pipelined_ingest=self.pipelined_ingest,
            flush_workers=self.flush_workers,
            columnar=self.columnar,
            columnar_cost=self.columnar_cost,
            adaptive=self.adaptive,
            adaptive_interval=self.adaptive_interval,
            slo_spec=self.slo_spec,
            flight_recorder_events=self.flight_recorder_events,
            flight_recorder_path=self.flight_recorder_path,
        )
        return build_system_from_config(
            config,
            strict_and=self.strict_and,
            obs=obs,
            force_sharded=self.force_sharded,
        )

    def build_stream(self) -> MicroblogStream:
        kwargs = dict(
            seed=self.seed,
            vocabulary_size=self.scale.vocabulary_size,
            user_count=self.scale.user_count,
            with_locations=(self.attribute == "spatial"),
        )
        if self.keyword_zipf is not None:
            kwargs["keyword_zipf_exponent"] = self.keyword_zipf
        return MicroblogStream(StreamConfig(**kwargs))

    def build_queries(self, stream: MicroblogStream) -> QueryLoad:
        return QueryLoad(
            QueryLoadConfig(
                seed=self.seed + 1,
                mode=self.workload_mode,
                attribute=self.attribute,
                k=self.k,
                tile_side_degrees=self.scale.tile_side_degrees,
            ),
            stream,
        )


@dataclass
class TrialResult:
    """Steady-state measurements of one trial."""

    spec: TrialSpec
    hit_ratio: float
    hit_ratio_by_mode: dict[str, float]
    k_filled: int
    policy_overhead_bytes: int
    records_ingested: int
    queries_run: int
    insert_rate: float
    effective_digestion_rate: float
    flush_count: int
    mean_flush_freed_fraction: float
    memory_utilization: float
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def hit_percent(self) -> float:
        return 100.0 * self.hit_ratio


def _warm_up(system: MicroblogSystemBase, stream: MicroblogStream, spec: TrialSpec) -> int:
    """Ingest until steady state (several flushes) and return the count."""
    warmed = 0
    while (
        len(system.flush_reports()) < spec.scale.warm_flushes
        and warmed < spec.scale.max_warm_records
    ):
        system.ingest_many(stream.take(_WARM_CHUNK))
        warmed += _WARM_CHUNK
    return warmed


def _trial_obs(metrics_path: Optional[Union[str, Path]]) -> Optional[Instrumentation]:
    """A JSONL-sinked Instrumentation when a metrics path was requested.

    Metrics-collecting runs get the full observability surface: trace
    trees for every query/flush and eviction-cause miss attribution.
    Runs without a metrics path keep the zero-cost defaults.
    """
    if metrics_path is None:
        return None
    # Parallel workers write per-spec shards named <parent>.wNNN that get
    # merged into one file; namespace their trace ids by the shard index
    # (deterministic — it is the spec's position in the grid) so ids from
    # different workers never collide in the merged stream.
    match = re.search(r"\.w(\d+)$", Path(metrics_path).name)
    prefix = f"w{match.group(1)}." if match else ""
    return Instrumentation(
        sink=JsonlSink(metrics_path),
        tracing=True,
        attribution=True,
        trace_prefix=prefix,
    )


def _finish_trial_metrics(
    system: MicroblogSystemBase, spec: TrialSpec, obs: Optional[Instrumentation]
) -> None:
    """Append the end-of-trial registry snapshot and release the sink."""
    if obs is None:
        return
    obs.event(
        "trial_snapshot",
        policy=spec.policy,
        attribute=spec.attribute,
        k=spec.k,
        seed=spec.seed,
        metrics=system.snapshot(),
    )
    obs.close()


def _ingest_baseline(system: MicroblogSystemBase) -> tuple:
    """Ingest counters at the start of the measurement window."""
    ingest = system.stats.ingest
    return (
        ingest.indexed,
        ingest.insert_seconds,
        ingest.flush_seconds,
        ingest.stalls,
        ingest.stall_seconds,
    )


def _collect_result(
    system: MicroblogSystemBase,
    spec: TrialSpec,
    ingest0: tuple,
    book0: float,
    flushes0: int,
    extras: Optional[dict[str, float]] = None,
) -> TrialResult:
    """Assemble a :class:`TrialResult` from the measurement window.

    ``ingest0``/``book0``/``flushes0`` are the counters sampled when the
    window opened; every rate, flush count, and freed-fraction mean below
    is computed over the deltas, so warm-up behaviour never leaks into
    the reported steady-state numbers.
    """
    ingest = system.stats.ingest
    d_indexed = ingest.indexed - ingest0[0]
    d_insert = ingest.insert_seconds - ingest0[1]
    d_flush = ingest.flush_seconds - ingest0[2]
    d_book = system.executor.bookkeeping_seconds - book0
    denom = d_insert + d_flush + d_book
    reports = system.flush_reports()[flushes0:]
    qstats = system.stats.queries
    # Ingest-stall accounting over the window (the pipelined-ingest
    # headline numbers).  The p99 is read from the lifetime histogram —
    # bucketed samples cannot be windowed — so it includes warm-up
    # pauses; counts and totals are exact window deltas.
    all_extras: dict[str, float] = {
        "ingest_stalls": float(ingest.stalls - ingest0[3]),
        "ingest_stall_seconds": ingest.stall_seconds - ingest0[4],
        "ingest_stall_max_seconds": ingest.max_stall_seconds,
        "ingest_stall_p99_seconds": system.obs.registry.histogram(
            "ingest.stall_seconds"
        ).percentile(99.0),
    }
    if extras:
        all_extras.update(extras)
    return TrialResult(
        spec=spec,
        hit_ratio=qstats.hit_ratio,
        hit_ratio_by_mode={
            mode.value: qstats.hit_ratio_for(mode) for mode in CombineMode
        },
        k_filled=system.k_filled_count(),
        policy_overhead_bytes=system.policy_overhead_bytes(),
        records_ingested=d_indexed,
        queries_run=qstats.queries,
        insert_rate=(d_indexed / d_insert) if d_insert > 0 else 0.0,
        effective_digestion_rate=(d_indexed / denom) if denom > 0 else 0.0,
        flush_count=len(reports),
        mean_flush_freed_fraction=(
            sum(r.freed_bytes / max(1, r.target_bytes) for r in reports) / len(reports)
            if reports
            else 0.0
        ),
        memory_utilization=system.memory_utilization(),
        extras=all_extras,
    )


def run_trial(
    spec: TrialSpec, metrics_path: Optional[Union[str, Path]] = None
) -> TrialResult:
    """Run one steady-state trial and collect the paper's metrics.

    ``metrics_path`` (optional) streams every instrumentation event of
    the trial — flush spans, query events, the final registry snapshot —
    to a JSONL file alongside whatever tables the caller exports.
    """
    if spec.attribute in ("user", "spatial") and spec.workload_mode not in (
        "correlated",
        "uniform",
    ):
        raise ConfigurationError(f"bad workload mode {spec.workload_mode!r}")
    obs = _trial_obs(metrics_path)
    system = spec.build_system(obs=obs)
    stream = spec.build_stream()
    queries = spec.build_queries(stream)

    _warm_up(system, stream, spec)

    # Measurement window: reset the query counters and timing baselines so
    # only steady-state behaviour is reported.  The warm-up quiesce folds
    # any in-flight pipelined flush back in first, so the window opens
    # with the memtable whole.
    system.quiesce()
    system.stats.queries = QueryStats()
    ingest0 = _ingest_baseline(system)
    book0 = system.executor.bookkeeping_seconds
    flushes0 = len(system.flush_reports())

    pending_queries = 0.0
    for record in stream.take(spec.scale.eval_records):
        system.ingest(record)
        pending_queries += spec.scale.queries_per_record
        while pending_queries >= 1.0:
            system.search(queries.next_query())
            pending_queries -= 1.0

    system.quiesce()
    _finish_trial_metrics(system, spec, obs)
    result = _collect_result(system, spec, ingest0, book0, flushes0)
    system.close()
    return result


def run_digestion_stress(
    spec: TrialSpec,
    query_rate_per_wall_second: float = PAPER_QUERY_RATE_PER_S,
    metrics_path: Optional[Union[str, Path]] = None,
) -> TrialResult:
    """Figure 10(b): unbounded ingestion with wall-clock-paced queries.

    Queries are issued so that their count tracks
    ``query_rate_per_wall_second × elapsed wall time in the data path``.
    A policy whose inserts/flushes/bookkeeping are slow therefore faces
    more queries per ingested record — the feedback loop that makes
    per-item bookkeeping (LRU) collapse under combined load.
    """
    obs = _trial_obs(metrics_path)
    system = spec.build_system(obs=obs)
    stream = spec.build_stream()
    queries = spec.build_queries(stream)

    # A deeper warm-up than plain trials: the overhead metric reads the
    # steady-state flush-buffer size, which needs the cold-start flushes
    # to have aged out of the recent window.
    warmed = 0
    while (
        len(system.flush_reports()) < max(10, spec.scale.warm_flushes)
        and warmed < 2 * spec.scale.max_warm_records
    ):
        system.ingest_many(stream.take(_WARM_CHUNK))
        warmed += _WARM_CHUNK
    system.quiesce()
    system.stats.queries = QueryStats()
    ingest0 = _ingest_baseline(system)
    book0 = system.executor.bookkeeping_seconds
    flushes0 = len(system.flush_reports())

    issued = 0
    for record in stream.take(spec.scale.eval_records):
        system.ingest(record)
        ingest = system.stats.ingest
        elapsed = (
            (ingest.insert_seconds - ingest0[1])
            + (ingest.flush_seconds - ingest0[2])
            + (system.executor.bookkeeping_seconds - book0)
        )
        due = math.floor(elapsed * query_rate_per_wall_second)
        # Bounded backlog: when a policy's per-query cost exceeds the
        # query inter-arrival time, the closed loop would diverge (every
        # served query schedules more than one new one).  A real system
        # bounds its admission queue and sheds the excess, so the catch-up
        # is capped at 32 queries per ingested record; the time the slow
        # policy did spend is already charged to its digestion rate.
        due = min(due, issued + 32)
        while issued < due:
            system.search(queries.next_query())
            issued += 1

    system.quiesce()
    _finish_trial_metrics(system, spec, obs)
    # Unlike the pre-refactor code, flush_count and the freed-fraction
    # mean now cover exactly the measurement window (the old path
    # hard-coded mean_flush_freed_fraction=0.0 and counted warm-up
    # flushes), making stress results comparable with run_trial's.
    result = _collect_result(
        system,
        spec,
        ingest0,
        book0,
        flushes0,
        extras={"queries_issued": float(issued)},
    )
    system.close()
    return result
