"""Extension experiments beyond the paper's figures.

Two studies that probe the *why* behind the paper's results:

* :func:`ext_skew_sensitivity` — kFlushing's advantage comes from
  keyword-frequency skew (the useless beyond-top-k mass under temporal
  flushing).  Sweeping the stream's Zipf exponent quantifies it: at zero
  skew there is little to trim; the margin peaks at moderate skew, where
  the mid-tail keywords are both queried and salvageable; at extreme
  skew a *correlated* load concentrates on head keywords every policy
  retains, so the margin narrows again — which is exactly why the
  paper's uniform (tail-heavy) load shows kFlushing's largest relative
  gains.

* :func:`ext_and_semantics` — the paper counts an AND query as a memory
  hit when k intersecting records are found in memory (operational).
  This repo can also *prove* hits via completeness floors (strict).  The
  ablation measures the gap between the two accountings for kFlushing
  and kFlushing-MK, i.e. how much of the reported AND hit ratio rests on
  unprovable-but-probably-fine answers.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult, SweepResult
from repro.experiments.runner import TrialSpec, run_trial
from repro.experiments.scale import SMALL, ScalePreset

__all__ = ["ext_skew_sensitivity", "ext_and_semantics"]

ZIPF_SWEEP = (0.0, 0.4, 0.7, 1.0, 1.2)


def ext_skew_sensitivity(preset: ScalePreset = SMALL, seed: int = 42) -> FigureResult:
    """Hit-ratio improvement of kFlushing over FIFO vs keyword skew."""
    policies = ("fifo", "kflushing")
    hit: dict[str, list[float]] = {policy: [] for policy in policies}
    k_filled: dict[str, list[float]] = {policy: [] for policy in policies}
    for exponent in ZIPF_SWEEP:
        for policy in policies:
            result = run_trial(
                TrialSpec(
                    policy=policy, keyword_zipf=exponent, scale=preset, seed=seed
                )
            )
            hit[policy].append(round(result.hit_percent, 2))
            k_filled[policy].append(float(result.k_filled))
    hit["kflushing-gain-pts"] = [
        round(kf - fifo, 2) for kf, fifo in zip(hit["kflushing"], hit["fifo"])
    ]
    return FigureResult(
        figure_id="ext1",
        title="Extension: sensitivity to keyword skew",
        panels=[
            SweepResult(
                panel_id="ext1a",
                title="hit ratio vs keyword Zipf exponent",
                x_label="zipf exponent",
                y_label="hit ratio (%)",
                xs=list(ZIPF_SWEEP),
                series=hit,
                expectation=(
                    "The margin is a hump: small at zero skew (nothing to "
                    "trim), peaking at moderate skew where the mid-tail "
                    "is both queried and salvageable, and narrowing at "
                    "extreme skew where a correlated load is served off "
                    "the always-resident head by any policy.  This is why "
                    "the paper's *uniform* load (which keeps querying the "
                    "tail) shows kFlushing's largest relative gains."
                ),
            ),
            SweepResult(
                panel_id="ext1b",
                title="k-filled keys vs keyword Zipf exponent",
                x_label="zipf exponent",
                y_label="k-filled keys",
                xs=list(ZIPF_SWEEP),
                series=k_filled,
                expectation="Same mechanism seen structurally.",
            ),
        ],
    )


def ext_and_semantics(preset: ScalePreset = SMALL, seed: int = 42) -> FigureResult:
    """AND hit ratio under operational vs strict (provable) accounting."""
    series: dict[str, list[float]] = {}
    xs = [0.0, 1.0]  # 0 = operational, 1 = strict (categorical axis)
    for policy in ("kflushing", "kflushing-mk"):
        row = []
        for strict in (False, True):
            result = run_trial(
                TrialSpec(policy=policy, strict_and=strict, scale=preset, seed=seed)
            )
            row.append(round(100.0 * result.hit_ratio_by_mode["and"], 2))
        series[policy] = row
    return FigureResult(
        figure_id="ext2",
        title="Extension: AND hit accounting — operational vs strict",
        panels=[
            SweepResult(
                panel_id="ext2",
                title="AND-query hit ratio (x=0 operational, x=1 strict)",
                x_label="accounting (0=operational, 1=strict)",
                y_label="AND hit ratio (%)",
                xs=xs,
                series=series,
                expectation=(
                    "Strict accounting can only lower AND hit ratios; the "
                    "gap is the share of AND answers assembled from "
                    "postings below completeness floors — precisely what "
                    "the MK trim rules retain.  kFlushing-MK keeps a "
                    "large operational win and retains part of it even "
                    "under strict proof."
                ),
            )
        ],
    )
