"""Experiment harness: scaling presets, trial runner, per-figure sweeps."""

from repro.experiments.figures import (
    ALL_FIGURES,
    FigureResult,
    SweepResult,
    TableResult,
    fig1_snapshot,
    fig5_timeline,
    fig7_k_filled,
    fig8_hit_correlated,
    fig9_hit_uniform,
    fig10_overhead,
    fig11_spatial,
    fig12_user,
)
from repro.experiments.export import export_figure, figure_to_dict
from repro.experiments.extensions import ext_and_semantics, ext_skew_sensitivity
from repro.experiments.figures import ALL_FIGURES as _registry
from repro.experiments.report import format_figure, format_panel, print_figure

_registry.setdefault("ext1", ext_skew_sensitivity)
_registry.setdefault("ext2", ext_and_semantics)
from repro.experiments.bench import BenchRecord, run_bench
from repro.experiments.parallel import resolve_jobs, run_trials
from repro.experiments.runner import (
    TrialResult,
    TrialSpec,
    run_digestion_stress,
    run_trial,
)
from repro.experiments.scale import (
    FULL,
    PRESETS,
    SMALL,
    TINY,
    ScalePreset,
    preset_from_env,
)

__all__ = [
    "ALL_FIGURES",
    "BenchRecord",
    "FULL",
    "FigureResult",
    "PRESETS",
    "SMALL",
    "ScalePreset",
    "SweepResult",
    "TINY",
    "TableResult",
    "TrialResult",
    "TrialSpec",
    "export_figure",
    "ext_and_semantics",
    "ext_skew_sensitivity",
    "figure_to_dict",
    "fig1_snapshot",
    "fig5_timeline",
    "fig7_k_filled",
    "fig8_hit_correlated",
    "fig9_hit_uniform",
    "fig10_overhead",
    "fig11_spatial",
    "fig12_user",
    "format_figure",
    "format_panel",
    "preset_from_env",
    "print_figure",
    "resolve_jobs",
    "run_bench",
    "run_digestion_stress",
    "run_trial",
    "run_trials",
]
