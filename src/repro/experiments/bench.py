"""Performance benchmark harness: ``repro-microblogs bench``.

The reproduction's usefulness is gated on trial throughput (the paper's
headline ratios are measured over millions of digested records), so the
repo keeps a *perf trajectory*: every PR runs the same fixed workloads
and appends its ``BENCH_<tag>.json`` next to the previous ones.  Each
record in the file is one flat measurement::

    {"metric": ..., "policy": ..., "value": ..., "unit": ..., "seed": ...}

Four suites, all deterministic in their inputs (timings are, of course,
machine-dependent — compare trajectories on one machine only):

* ``kfilled``  — sampling ``k_filled_count()``: the incremental counter
  vs the brute-force rescan it replaced, plus their speedup ratio;
* ``digestion`` — pure ingest-path digestion rate per policy on a fixed
  stream prefix (flushes included);
* ``flush``    — flush cost per freed MB per policy over the same run;
* ``sweep``    — wall-clock of a small trial grid executed serially vs
  through the process-parallel runner (``--jobs``);
* ``shards``   — one steady-state trial per shard count: trial
  wall-clock, hit ratio, and effective digestion rate at N ∈ {1, 2, 4}
  hash-partitioned shards over a fixed total budget;
* ``disk``     — disk-tier micro-benchmarks on a skewed synthetic flush
  workload: ``commit_flush`` posting throughput under the segmented-runs
  layout vs the flat per-posting ``insort`` it replaced, bounded top-k
  lookup latency under both, and the cost of an unbounded lookup (lazy
  merged view vs the old full reversed copy);
* ``pipeline`` — ingest-stall distribution (p99/max/total pause before a
  record is digested) under synchronous inline flushing vs pipelined
  memtable rotation with a background flush worker, plus the headline
  p99 reduction ratio;
* ``columnar`` — the same warmed digestion workload under the legacy
  tuple-per-posting memory tier vs the array-backed columnar layout with
  interned key ids, plus the headline digestion speedup ratio;
* ``adaptive`` — the adaptive-vs-static kFlushing matrix: each scenario
  in {uniform, zipf-hot, flash-crowd, multi-key} × {tight, normal}
  memory budgets replays the identical stream and query sequence twice,
  once with the static paper tuning and once with the adaptive feedback
  controller, and reports the hit ratios, the hit-ratio delta (pp) and
  the digestion-rate ratio at equal byte budget.

Use ``benchmarks/perf/check_regression.py`` to gate a new file against a
checked-in baseline.  ``run_bench(profile=True)`` (CLI: ``--profile``)
wraps the selected suites in ``cProfile`` and writes the top cumulative
functions next to the JSON.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import random
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Hashable, Optional, Sequence, Union

from repro.engine.stats import QueryStats
from repro.experiments.parallel import run_trials
from repro.experiments.runner import (
    TrialSpec,
    _WARM_CHUNK,
    _collect_result,
    _ingest_baseline,
    run_trial,
)
from repro.experiments.scale import PRESETS, ScalePreset
from repro.obs import Instrumentation
from repro.workload.queryload import QueryLoad, QueryLoadConfig
from repro.storage.disk import DiskArchive
from repro.storage.interner import reset_global_interner
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting

__all__ = [
    "BenchRecord",
    "bench_kfilled_sampling",
    "bench_digestion_and_flush",
    "bench_sweep_wallclock",
    "bench_shard_scaling",
    "bench_disk_tier",
    "bench_pipelined_stalls",
    "bench_columnar_digestion",
    "bench_obs_overhead",
    "bench_adaptive_matrix",
    "run_bench",
    "ALL_SUITES",
]

BENCH_POLICIES = ("fifo", "kflushing", "kflushing-mk", "lru")


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark measurement (the BENCH_*.json schema)."""

    metric: str
    policy: str
    value: float
    unit: str
    seed: int


def _warmed_system(spec: TrialSpec):
    """A system ingested to steady state (same protocol as run_trial)."""
    system = spec.build_system()
    stream = spec.build_stream()
    warmed = 0
    while (
        len(system.flush_reports()) < spec.scale.warm_flushes
        and warmed < spec.scale.max_warm_records
    ):
        system.ingest_many(stream.take(_WARM_CHUNK))
        warmed += _WARM_CHUNK
    return system, stream


def bench_kfilled_sampling(
    preset: ScalePreset, seed: int, repeats: int = 200
) -> list[BenchRecord]:
    """Time k-filled sampling: incremental counter vs brute-force rescan.

    This is the PR's headline micro-optimization: the old sampler walked
    every index entry and paid two slice allocations per entry in
    ``provable_top``; the incremental counter answers from a maintained
    set.  Both are timed over the same steady-state index and must agree
    exactly (asserted here, not just in tests).
    """
    spec = TrialSpec(policy="kflushing", scale=preset, seed=seed)
    system, _stream = _warmed_system(spec)
    index = system.engine.index

    incremental = index.k_filled_count()
    brute = index.k_filled_count_bruteforce()
    assert incremental == brute, f"counter drift: {incremental} != {brute}"

    start = time.perf_counter()
    for _ in range(repeats):
        index.k_filled_count()
    incr_us = (time.perf_counter() - start) / repeats * 1e6

    start = time.perf_counter()
    for _ in range(repeats):
        index.k_filled_count_bruteforce()
    brute_us = (time.perf_counter() - start) / repeats * 1e6

    speedup = brute_us / incr_us if incr_us > 0 else float("inf")
    return [
        BenchRecord("kfilled_sample_incremental", "kflushing", incr_us, "us", seed),
        BenchRecord("kfilled_sample_bruteforce", "kflushing", brute_us, "us", seed),
        BenchRecord("kfilled_sampling_speedup", "kflushing", speedup, "x", seed),
    ]


def bench_digestion_and_flush(
    preset: ScalePreset, seed: int
) -> list[BenchRecord]:
    """Digestion rate and flush cost per freed MB on a fixed workload.

    Each policy ingests the same stream prefix (warm-up plus
    ``eval_records`` further records); digestion rate is records per
    wall-second over the measured prefix (flush time included, as in a
    real ingest path), and flush cost is wall seconds spent flushing per
    MB of modelled memory actually freed.
    """
    records: list[BenchRecord] = []
    for policy in BENCH_POLICIES:
        spec = TrialSpec(policy=policy, scale=preset, seed=seed)
        system, stream = _warmed_system(spec)
        flushes0 = len(system.flush_reports())
        start = time.perf_counter()
        system.ingest_many(stream.take(spec.scale.eval_records))
        elapsed = time.perf_counter() - start
        reports = system.flush_reports()[flushes0:]
        rate = spec.scale.eval_records / elapsed if elapsed > 0 else 0.0
        records.append(
            BenchRecord("digestion_rate", policy, rate, "records/s", seed)
        )
        freed_mb = sum(r.freed_bytes for r in reports) / 1e6
        flush_seconds = sum(r.wall_seconds for r in reports)
        if freed_mb > 0:
            records.append(
                BenchRecord(
                    "flush_cost_per_freed_mb",
                    policy,
                    flush_seconds / freed_mb,
                    "s/MB",
                    seed,
                )
            )
    return records


def bench_sweep_wallclock(
    preset: ScalePreset, seed: int, jobs: int
) -> list[BenchRecord]:
    """Wall-clock of a small figure-style sweep, serial vs ``jobs``.

    The grid is a slice of the Figure 7(a) sweep (two policies, three k
    values).  With ``jobs <= 1`` only the serial time is recorded.
    """
    specs = [
        TrialSpec(policy=policy, k=k, scale=preset, seed=seed)
        for k in (5, 20, 60)
        for policy in ("fifo", "kflushing")
    ]
    start = time.perf_counter()
    serial = run_trials(specs, jobs=1)
    serial_s = time.perf_counter() - start
    records = [BenchRecord("sweep_serial_wallclock", "all", serial_s, "s", seed)]
    if jobs > 1:
        start = time.perf_counter()
        parallel = run_trials(specs, jobs=jobs)
        parallel_s = time.perf_counter() - start
        assert [r.hit_ratio for r in serial] == [r.hit_ratio for r in parallel], (
            "parallel runner diverged from serial results"
        )
        records.append(
            BenchRecord(f"sweep_parallel_wallclock_j{jobs}", "all", parallel_s, "s", seed)
        )
        records.append(
            BenchRecord(
                f"sweep_parallel_speedup_j{jobs}",
                "all",
                serial_s / parallel_s if parallel_s > 0 else float("inf"),
                "x",
                seed,
            )
        )
    return records


def bench_shard_scaling(
    preset: ScalePreset, seed: int, shard_counts: Sequence[int] = (1, 2, 4)
) -> list[BenchRecord]:
    """Steady-state trial cost and quality as the shard count grows.

    Each point runs the standard ``run_trial`` protocol with the *same*
    total memory budget hash-partitioned over N shards.  Wall-clock
    prices the routing/fan-out overhead of the sharded facade; the hit
    ratio and effective digestion rate track what partitioning does to
    the paper's headline metrics (deterministic given the seed).
    """
    records: list[BenchRecord] = []
    for n in shard_counts:
        spec = TrialSpec(policy="kflushing", scale=preset, seed=seed, shards=n)
        start = time.perf_counter()
        result = run_trial(spec)
        elapsed = time.perf_counter() - start
        records.extend(
            [
                BenchRecord(
                    f"shard_trial_wallclock_n{n}", "kflushing", elapsed, "s", seed
                ),
                BenchRecord(
                    f"shard_hit_ratio_n{n}",
                    "kflushing",
                    100.0 * result.hit_ratio,
                    "%",
                    seed,
                ),
                BenchRecord(
                    f"shard_effective_digestion_n{n}",
                    "kflushing",
                    result.effective_digestion_rate,
                    "records/s",
                    seed,
                ),
            ]
        )
    return records


def _disk_flush_batches(
    seed: int, batches: int, hot_batch: int, cold_keys: int, cold_batch: int
) -> list[dict[Hashable, list[Posting]]]:
    """Skewed synthetic flush batches: one hot key plus a cold tail.

    Every batch is internally rank-sorted (the shape ``FlushBuffer``
    produces) but batch score ranges overlap, so the flat layout insorts
    most postings mid-list — the paper's append-heavy reality where new
    flushes interleave with history — while the runs layout appends each
    batch O(1).
    """
    rng = random.Random(seed)
    out: list[dict[Hashable, list[Posting]]] = []
    blog_id = 0
    for _ in range(batches):
        by_key: dict[Hashable, list[Posting]] = {}
        hot = []
        for _ in range(hot_batch):
            hot.append(Posting(rng.random(), rng.random(), blog_id))
            blog_id += 1
        hot.sort()
        by_key["hot"] = hot
        for c in range(cold_keys):
            cold = []
            for _ in range(cold_batch):
                cold.append(Posting(rng.random(), rng.random(), blog_id))
                blog_id += 1
            cold.sort()
            by_key[f"cold{c}"] = cold
        out.append(by_key)
    return out


def bench_disk_tier(
    preset: ScalePreset,
    seed: int,
    batches: int = 300,
    hot_batch: int = 200,
    cold_keys: int = 8,
    cold_batch: int = 4,
) -> list[BenchRecord]:
    """Disk-tier commit/lookup micro-benchmarks, runs layout vs flat.

    Two archives ingest the identical skewed flush workload: one with the
    segmented-runs index (``use_runs=True``, the default) and one with
    the flat per-posting-``insort`` index it replaced.  Both must agree
    on every lookup (asserted here, not just in tests); the records
    quantify commit throughput, bounded top-k lookup latency, and the
    cost of the unbounded-lookup call (lazy merged view vs the old full
    reversed copy — the copy the AND miss path immediately dict-ified).
    """
    workload = _disk_flush_batches(seed, batches, hot_batch, cold_keys, cold_batch)
    total_postings = sum(
        len(postings) for by_key in workload for postings in by_key.values()
    )
    model = MemoryModel()
    archives = {
        "segmented-runs": DiskArchive(model, use_runs=True),
        "flat-insort": DiskArchive(model, use_runs=False),
    }
    records: list[BenchRecord] = []
    rates: dict[str, float] = {}
    for name, archive in archives.items():
        start = time.perf_counter()
        for by_key in workload:
            archive.commit_flush((), by_key)
        elapsed = time.perf_counter() - start
        rates[name] = total_postings / elapsed if elapsed > 0 else float("inf")
        records.append(
            BenchRecord(
                "disk_commit_postings_per_s", name, rates[name], "postings/s", seed
            )
        )
    runs, flat = archives["segmented-runs"], archives["flat-insort"]
    assert list(runs.lookup("hot", limit=50)) == list(flat.lookup("hot", limit=50)), (
        "segmented-runs lookup diverged from the flat reference"
    )
    assert list(runs.lookup("hot")) == list(flat.lookup("hot")), (
        "unbounded merged view diverged from the flat reference"
    )
    records.append(
        BenchRecord(
            "disk_commit_speedup",
            "runs-vs-flat",
            rates["segmented-runs"] / rates["flat-insort"],
            "x",
            seed,
        )
    )
    lookup_repeats = 400
    for name, archive in archives.items():
        start = time.perf_counter()
        for _ in range(lookup_repeats):
            archive.lookup("hot", limit=20)
        top_us = (time.perf_counter() - start) / lookup_repeats * 1e6
        records.append(
            BenchRecord("disk_lookup_top20_us", name, top_us, "us", seed)
        )
    # The unbounded-lookup call itself: the old path eagerly built a full
    # reversed copy of the hot key's postings; the merged view is O(runs)
    # to construct and merges lazily as the caller drains it.
    unbounded_us: dict[str, float] = {}
    for name, archive in (("merged-view", runs), ("reversed-copy", flat)):
        start = time.perf_counter()
        for _ in range(lookup_repeats):
            archive.lookup("hot")
        unbounded_us[name] = (time.perf_counter() - start) / lookup_repeats * 1e6
        records.append(
            BenchRecord(
                "disk_lookup_unbounded_us", name, unbounded_us[name], "us", seed
            )
        )
    records.append(
        BenchRecord(
            "disk_lookup_unbounded_speedup",
            "view-vs-copy",
            unbounded_us["reversed-copy"] / unbounded_us["merged-view"],
            "x",
            seed,
        )
    )
    return records


def bench_pipelined_stalls(preset: ScalePreset, seed: int) -> list[BenchRecord]:
    """Ingest-stall distribution: synchronous flushing vs pipelined rotation.

    Both runs ingest the identical stream (warm-up plus ``eval_records``)
    under kFlushing; the only difference is the flushing mode.  The
    synchronous baseline pays the full flush wall time as one ingest
    pause per flush; the pipelined run rotates the over-budget memtable
    to one background worker and pauses only for backpressure waits and
    non-empty reconciles.  The ``ingest.stall_seconds`` histogram (one
    sample per pause, lifetime of the run) provides the p99; the
    reduction ratio is the PR's headline artifact.
    """
    records: list[BenchRecord] = []
    p99: dict[str, float] = {}
    for mode, pipelined in (("sync", False), ("pipelined", True)):
        obs = Instrumentation()
        spec = TrialSpec(
            policy="kflushing",
            scale=preset,
            seed=seed,
            pipelined_ingest=pipelined,
            flush_workers=1 if pipelined else None,
        )
        system = spec.build_system(obs=obs)
        stream = spec.build_stream()
        warmed = 0
        while (
            len(system.flush_reports()) < spec.scale.warm_flushes
            and warmed < spec.scale.max_warm_records
        ):
            system.ingest_many(stream.take(_WARM_CHUNK))
            warmed += _WARM_CHUNK
        system.ingest_many(stream.take(spec.scale.eval_records))
        system.quiesce()
        ingest = system.stats.ingest
        p99[mode] = obs.registry.histogram("ingest.stall_seconds").percentile(99.0)
        records.extend(
            [
                BenchRecord(
                    f"ingest_stall_p99_us_{mode}",
                    "kflushing",
                    p99[mode] * 1e6,
                    "us",
                    seed,
                ),
                BenchRecord(
                    f"ingest_stall_max_us_{mode}",
                    "kflushing",
                    ingest.max_stall_seconds * 1e6,
                    "us",
                    seed,
                ),
                BenchRecord(
                    f"ingest_stall_total_ms_{mode}",
                    "kflushing",
                    ingest.stall_seconds * 1e3,
                    "ms",
                    seed,
                ),
                BenchRecord(
                    f"ingest_stall_count_{mode}",
                    "kflushing",
                    float(ingest.stalls),
                    "count",
                    seed,
                ),
            ]
        )
        system.close()
    records.append(
        BenchRecord(
            "ingest_stall_p99_reduction",
            "sync-vs-pipelined",
            p99["sync"] / max(p99["pipelined"], 1e-9),
            "x",
            seed,
        )
    )
    return records


#: Tag-count distribution of the columnar digestion workload: 7–8 keys
#: per record.  The layouts differ only in per-(record, key) posting
#: work, so the bench amortizes the shared per-record costs (raw-store
#: accounting, budget check, stream driving) over a posting-dense
#: stream — the regime the tentpole optimizes.
_COLUMNAR_BENCH_TAG_PROBS = (0.0,) * 6 + (0.3, 0.7)
#: Timed repetitions per layout; the reported rate is the *fastest* rep
#: (timeit-style min: robust against CPU-steal noise on shared runners).
_COLUMNAR_BENCH_REPS = 3


def _columnar_bench_spec(preset: ScalePreset, seed: int, columnar: bool) -> TrialSpec:
    """The fixed kFlushing digestion workload both layouts replay.

    Small k plus a skewed, posting-dense stream keeps every flush inside
    Phase 1 (top-k trims), where eviction is pure posting movement —
    per-tuple staging under the legacy layout, column-slice cuts under
    the columnar one."""
    return TrialSpec(
        policy="kflushing",
        scale=preset,
        seed=seed,
        columnar=columnar,
        k=5,
        flush_budget=0.1,
        keyword_zipf=1.2,
        memory_gb=30,
    )


def bench_columnar_digestion(preset: ScalePreset, seed: int) -> list[BenchRecord]:
    """Digestion rate under the legacy vs the columnar memory tier.

    Both layouts replay the identical warmed kFlushing workload; the
    only difference is the hot-tier layout.  The legacy run allocates
    one ``Posting`` NamedTuple per (record, key) and evicts
    posting-by-posting; the columnar run appends primitive scalars to
    ``array``-backed columns keyed by interned ids and evicts whole
    column slices.  The timed region is the engine-level digestion loop
    (insert + budget check + inline flushes), repeated
    :data:`_COLUMNAR_BENCH_REPS` times per layout with the fastest rep
    reported.  Both layouts were proven answer-identical by the
    differential tests, so this measures the same work done cheaper.
    """
    import dataclasses
    import gc

    from repro.workload.stream import MicroblogStream

    def one_rep(columnar: bool) -> float:
        reset_global_interner()
        spec = _columnar_bench_spec(preset, seed, columnar)
        system = spec.build_system()
        base_cfg = spec.build_stream().config
        stream = MicroblogStream(
            dataclasses.replace(
                base_cfg, tags_per_record_probs=_COLUMNAR_BENCH_TAG_PROBS
            )
        )
        warmed = 0
        while (
            len(system.flush_reports()) < spec.scale.warm_flushes
            and warmed < spec.scale.max_warm_records
        ):
            system.ingest_many(stream.take(_WARM_CHUNK))
            warmed += _WARM_CHUNK
        batch = stream.take(spec.scale.eval_records * 6)
        engine = system.engine
        insert, needs, flush = engine.insert, engine.needs_flush, engine.run_flush
        gc.collect()
        start = time.perf_counter()
        for record in batch:
            insert(record)
            if needs():
                flush(record.timestamp)
        elapsed = time.perf_counter() - start
        rate = len(batch) / elapsed if elapsed > 0 else 0.0
        system.close()
        return rate

    records: list[BenchRecord] = []
    rates: dict[str, float] = {}
    # Interleave the layouts so slow phases of a noisy shared host hit
    # both sides instead of biasing whichever ran second.
    reps: dict[str, list[float]] = {"legacy": [], "columnar": []}
    for _ in range(_COLUMNAR_BENCH_REPS):
        reps["legacy"].append(one_rep(False))
        reps["columnar"].append(one_rep(True))
    for mode in ("legacy", "columnar"):
        rates[mode] = max(reps[mode])
        records.append(
            BenchRecord(
                f"{mode}_digestion_rate", "kflushing", rates[mode], "records/s", seed
            )
        )
    records.append(
        BenchRecord(
            "columnar_speedup",
            "columnar-vs-legacy",
            rates["columnar"] / rates["legacy"] if rates["legacy"] > 0 else float("inf"),
            "x",
            seed,
        )
    )
    return records


#: The adaptive-vs-static matrix (scenario × budget).  Scenarios cover
#: the regimes the controller is built for: ``uniform`` is the no-signal
#: control (deltas should be ~0 — adaptivity must not hurt), ``zipf-hot``
#: concentrates data and queries on a hot head, ``flash-crowd`` runs
#: sharded and shifts the query load mid-window from uniform to
#: hot-head-correlated (a crowd forming), and ``multi-key`` weights the
#: mix toward 2-keyword AND queries whose operational hits depend on
#: intersection depth.
@dataclass(frozen=True)
class _AdaptiveScenario:
    name: str
    workload_mode: str = "correlated"
    keyword_zipf: Optional[float] = None
    mix: tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3)
    shards: int = 1
    #: Switch the query load from uniform to hot-head-correlated halfway
    #: through the measurement window.
    shift: bool = False


_ADAPTIVE_SCENARIOS = (
    _AdaptiveScenario("uniform", workload_mode="uniform"),
    _AdaptiveScenario("zipf-hot", keyword_zipf=1.2),
    _AdaptiveScenario("flash-crowd", workload_mode="uniform", shards=4, shift=True),
    _AdaptiveScenario("multi-key", mix=(0.2, 0.6, 0.2)),
)
_ADAPTIVE_BUDGETS = (("tight", 10.0), ("normal", 30.0))
#: Timed repetitions per matrix cell; the digestion ratio is the median
#: of the per-rep paired ratios (wall-clock on shared runners is noisy)
#: while the hit ratios, deterministic given the seed, are asserted
#: identical across reps.
_ADAPTIVE_BENCH_REPS = 3


def _adaptive_point(
    preset: ScalePreset, seed: int, scenario: _AdaptiveScenario, memory_gb: float,
    adaptive: bool,
):
    """One steady-state run of a matrix scenario (run_trial protocol).

    The stream and query sequence are fully determined by ``seed`` and
    the scenario — the ``adaptive`` flag is the *only* difference between
    the two runs of a pair, so their hit-ratio delta isolates the
    controller.
    """
    spec = TrialSpec(
        policy="kflushing",
        scale=preset,
        seed=seed,
        memory_gb=memory_gb,
        shards=scenario.shards,
        workload_mode=scenario.workload_mode,
        keyword_zipf=scenario.keyword_zipf,
        adaptive=adaptive,
    )
    system = spec.build_system()
    stream = spec.build_stream()
    queries = QueryLoad(
        QueryLoadConfig(
            seed=seed + 1, mode=scenario.workload_mode, k=spec.k, mix=scenario.mix
        ),
        stream,
    )
    warmed = 0
    while (
        len(system.flush_reports()) < spec.scale.warm_flushes
        and warmed < spec.scale.max_warm_records
    ):
        system.ingest_many(stream.take(_WARM_CHUNK))
        warmed += _WARM_CHUNK
    system.quiesce()
    system.stats.queries = QueryStats()
    ingest0 = _ingest_baseline(system)
    book0 = system.executor.bookkeeping_seconds
    flushes0 = len(system.flush_reports())

    shift_at = spec.scale.eval_records // 2 if scenario.shift else None
    pending = 0.0
    for count, record in enumerate(stream.take(spec.scale.eval_records), start=1):
        system.ingest(record)
        if shift_at is not None and count == shift_at:
            # The crowd forms: from here on, queries concentrate on the
            # stream's hot head (same shapes for both runs of the pair).
            queries = QueryLoad(
                QueryLoadConfig(
                    seed=seed + 2, mode="correlated", k=spec.k, mix=scenario.mix
                ),
                stream,
            )
        pending += spec.scale.queries_per_record
        while pending >= 1.0:
            system.search(queries.next_query())
            pending -= 1.0

    system.quiesce()
    result = _collect_result(system, spec, ingest0, book0, flushes0)
    system.close()
    return result


def bench_adaptive_matrix(preset: ScalePreset, seed: int) -> list[BenchRecord]:
    """Adaptive vs static kFlushing over the scenario × budget matrix.

    Every cell replays the identical deterministic workload twice at the
    same byte budget — once with the paper's static tuning and once with
    the adaptive controller (per-key retention depth, shard budget
    slices, escalation slack).  Hit ratios are deterministic given the
    seed; the digestion ratio is wall-clock and prices the controller's
    bookkeeping overhead (it must stay near 1.0).
    """
    records: list[BenchRecord] = []
    for budget_name, memory_gb in _ADAPTIVE_BUDGETS:
        for scenario in _ADAPTIVE_SCENARIOS:
            # Interleave the reps so slow phases of a noisy shared host
            # hit both sides instead of biasing whichever ran second.
            reps: dict[bool, list] = {False: [], True: []}
            for _ in range(_ADAPTIVE_BENCH_REPS):
                for adaptive in (False, True):
                    reps[adaptive].append(
                        _adaptive_point(preset, seed, scenario, memory_gb, adaptive)
                    )
            static, adap = reps[False][0], reps[True][0]
            for adaptive, runs in reps.items():
                assert len({r.hit_ratio for r in runs}) == 1, (
                    f"non-deterministic hit ratio ({scenario.name}, "
                    f"adaptive={adaptive}): {[r.hit_ratio for r in runs]}"
                )
            label = f"{scenario.name}_{budget_name}"
            # Median of per-rep paired ratios, not a ratio of maxima: the
            # two runs of a rep execute back-to-back so host noise hits
            # both sides of a pair, and the median discards the one rep a
            # CPU-steal burst (or a lucky fast outlier) lands on — a
            # ratio of maxima compounds the extreme of each side instead.
            paired = sorted(
                a.effective_digestion_rate / s.effective_digestion_rate
                for s, a in zip(reps[False], reps[True])
                if s.effective_digestion_rate > 0
            )
            digestion_ratio = (
                paired[len(paired) // 2] if paired else float("inf")
            )
            records.extend(
                [
                    BenchRecord(
                        f"adaptive_hit_ratio_{label}",
                        "static",
                        100.0 * static.hit_ratio,
                        "%",
                        seed,
                    ),
                    BenchRecord(
                        f"adaptive_hit_ratio_{label}",
                        "adaptive",
                        100.0 * adap.hit_ratio,
                        "%",
                        seed,
                    ),
                    BenchRecord(
                        f"adaptive_hit_delta_{label}",
                        "adaptive-vs-static",
                        100.0 * (adap.hit_ratio - static.hit_ratio),
                        "pp",
                        seed,
                    ),
                    BenchRecord(
                        f"adaptive_digestion_ratio_{label}",
                        "adaptive-vs-static",
                        digestion_ratio,
                        "x",
                        seed,
                    ),
                ]
            )
    return records


#: Permissive always-compliant spec the overhead bench tracks: the point
#: is to pay the full tick cost (capture + window math + gauge export)
#: every flush without ever breaching (a breach dump would bill I/O to
#: the "slo on" side that production only pays when something is wrong).
_OBS_OVERHEAD_SPEC = json.dumps(
    {
        "objectives": [
            {"name": "flush-latency", "metric": "span.flush.seconds.p99", "max": 3600},
            {"name": "flush-progress", "metric": "flush.count", "min": 0},
        ]
    }
)
#: Timed repetitions per side; fastest rep reported (see columnar bench).
_OBS_BENCH_REPS = 3


def bench_obs_overhead(preset: ScalePreset, seed: int) -> list[BenchRecord]:
    """Digestion rate with the SLO tracker + flight recorder on vs off.

    Both sides replay the identical warmed kFlushing digestion workload
    from the columnar bench (legacy layout); the ``slo`` side adds a
    two-objective always-compliant SLO spec ticked at every flush
    boundary plus a 256-event flight-recorder ring.  The acceptance bar
    is that the enabled side digests within 2 % of the disabled side —
    the observability tax rides on flush boundaries, never on the
    per-record path.
    """
    import dataclasses
    import gc

    from repro.workload.stream import MicroblogStream

    def one_rep(with_obs: bool) -> float:
        reset_global_interner()
        spec = _columnar_bench_spec(preset, seed, columnar=False)
        if with_obs:
            spec = dataclasses.replace(
                spec, slo_spec=_OBS_OVERHEAD_SPEC, flight_recorder_events=256
            )
        system = spec.build_system()
        base_cfg = spec.build_stream().config
        stream = MicroblogStream(
            dataclasses.replace(
                base_cfg, tags_per_record_probs=_COLUMNAR_BENCH_TAG_PROBS
            )
        )
        warmed = 0
        while (
            len(system.flush_reports()) < spec.scale.warm_flushes
            and warmed < spec.scale.max_warm_records
        ):
            system.ingest_many(stream.take(_WARM_CHUNK))
            warmed += _WARM_CHUNK
        batch = stream.take(spec.scale.eval_records * 6)
        # Timed region is the facade-level digestion loop (ingest +
        # inline flush): unlike the columnar bench this must go through
        # the system so SLO ticks and watermark sampling are in the
        # timed path — they hook the facade's flush boundary.
        ingest = system.ingest
        gc.collect()
        start = time.perf_counter()
        for record in batch:
            ingest(record)
        elapsed = time.perf_counter() - start
        rate = len(batch) / elapsed if elapsed > 0 else 0.0
        system.close()
        return rate

    records: list[BenchRecord] = []
    reps: dict[str, list[float]] = {"off": [], "slo": []}
    # Interleaved so host noise hits both sides evenly.
    for _ in range(_OBS_BENCH_REPS):
        reps["off"].append(one_rep(False))
        reps["slo"].append(one_rep(True))
    rate_off = max(reps["off"])
    rate_slo = max(reps["slo"])
    records.append(
        BenchRecord("obs_overhead_digestion_rate", "kflushing+slo", rate_slo,
                    "records/s", seed)
    )
    records.append(
        BenchRecord(
            "obs_overhead_digestion_ratio",
            "slo-vs-off",
            rate_slo / rate_off if rate_off > 0 else float("inf"),
            "x",
            seed,
        )
    )
    return records


ALL_SUITES: dict[str, Callable[..., list[BenchRecord]]] = {
    "kfilled": lambda preset, seed, jobs: bench_kfilled_sampling(preset, seed),
    "digestion": lambda preset, seed, jobs: bench_digestion_and_flush(preset, seed),
    "sweep": bench_sweep_wallclock,
    "shards": lambda preset, seed, jobs: bench_shard_scaling(preset, seed),
    "disk": lambda preset, seed, jobs: bench_disk_tier(preset, seed),
    "pipeline": lambda preset, seed, jobs: bench_pipelined_stalls(preset, seed),
    "columnar": lambda preset, seed, jobs: bench_columnar_digestion(preset, seed),
    "adaptive": lambda preset, seed, jobs: bench_adaptive_matrix(preset, seed),
    "obs_overhead": lambda preset, seed, jobs: bench_obs_overhead(preset, seed),
}

#: Functions shown in the ``--profile`` report (top cumulative time).
PROFILE_TOP_N = 30


def _write_profile(profiler: cProfile.Profile, out: Path) -> Path:
    """Dump the profiler's top cumulative-time table next to the JSON."""
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats("cumulative").print_stats(PROFILE_TOP_N)
    profile_path = out.with_suffix(".profile.txt")
    profile_path.write_text(stream.getvalue(), encoding="utf-8")
    return profile_path


def run_bench(
    preset: Union[str, ScalePreset] = "tiny",
    seed: int = 42,
    out: Optional[Union[str, Path]] = "BENCH_PR9.json",
    jobs: int = 2,
    suites: Optional[Sequence[str]] = None,
    profile: bool = False,
) -> list[BenchRecord]:
    """Run the benchmark suites and (optionally) write ``out`` as JSON.

    With ``profile=True`` the suites run under ``cProfile`` and the top
    :data:`PROFILE_TOP_N` cumulative-time functions are written to
    ``<out-stem>.profile.txt`` beside the JSON.  Profiled timings carry
    tracer overhead, so profiled runs are for finding hot spots, not for
    comparing against unprofiled trajectories.
    """
    if isinstance(preset, str):
        preset = PRESETS[preset]
    names = list(suites) if suites else list(ALL_SUITES)
    records: list[BenchRecord] = []
    profiler = cProfile.Profile() if profile else None
    if profiler is not None:
        profiler.enable()
    try:
        for name in names:
            records.extend(ALL_SUITES[name](preset, seed, jobs))
    finally:
        if profiler is not None:
            profiler.disable()
    if out is not None:
        path = Path(out)
        payload = [asdict(record) for record in records]
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        if profiler is not None:
            _write_profile(profiler, path)
    return records
