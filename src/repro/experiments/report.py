"""Plain-text rendering of experiment results.

The benchmark harness and the CLI print each figure as aligned ASCII
tables — "the same rows/series the paper reports" — followed by the
paper's expected shape so a reader can judge the reproduction at a glance.
"""

from __future__ import annotations

import textwrap
from typing import Sequence

from repro.experiments.figures import FigureResult, Panel, SweepResult, TableResult

__all__ = [
    "format_figure",
    "format_miss_attribution",
    "format_panel",
    "print_figure",
    "sparkline",
]


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def _render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    cells = [[_fmt_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Render a numeric series as a unicode sparkline.

    Values are resampled to ``width`` points and scaled to the series'
    own min/max, so shape (trend, crossover) is visible at a glance in
    CLI output; an all-equal series renders flat.
    """
    if not values:
        return ""
    count = min(width, len(values))
    # Nearest-point resample onto `count` columns.
    resampled = [values[round(i * (len(values) - 1) / max(1, count - 1))] for i in range(count)]
    lo, hi = min(resampled), max(resampled)
    if hi == lo:
        return _SPARK_CHARS[4] * count
    span = hi - lo
    return "".join(
        _SPARK_CHARS[1 + int((v - lo) / span * (len(_SPARK_CHARS) - 2))]
        for v in resampled
    )


def format_miss_attribution(
    causes: dict, total_misses: float = None, title: str = "Miss attribution"
) -> str:
    """Render the eviction-cause miss table (the Fig-7-style "why did
    hit ratio move" report).

    ``causes`` maps cause name → miss count (see
    ``MicroblogSystemBase.miss_attribution`` and
    ``repro.obs.traceview.miss_cause_table``).  ``total_misses``
    defaults to the table's own sum; pass the registry's per-mode miss
    total to surface attribution gaps.
    """
    parts = [f"-- {title} --"]
    if not causes:
        parts.append("(no attributed misses — run with attribution enabled)")
        return "\n".join(parts)
    total = total_misses if total_misses is not None else sum(causes.values())
    rows = [
        [cause, count, f"{count / total:.1%}" if total else "-"]
        for cause, count in sorted(
            causes.items(), key=lambda item: (-item[1], item[0])
        )
    ]
    parts.append(_render_table(["cause", "misses", "share"], rows))
    parts.append(f"(total attributed: {sum(causes.values())} of {int(total)} misses)")
    return "\n".join(parts)


def format_panel(panel: Panel) -> str:
    """Render one panel (sweep or table) as text."""
    parts = [f"-- {panel.panel_id}: {panel.title} --"]
    if isinstance(panel, SweepResult):
        headers = [panel.x_label] + list(panel.series)
        rows = [
            [x] + [panel.series[name][i] for name in panel.series]
            for i, x in enumerate(panel.xs)
        ]
        parts.append(_render_table(headers, rows))
        parts.append(f"(y = {panel.y_label})")
        for name, values in panel.series.items():
            parts.append(f"  {name:>22s}  {sparkline(values)}")
    elif isinstance(panel, TableResult):
        parts.append(_render_table(panel.headers, panel.rows))
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown panel type: {type(panel)!r}")
    if panel.expectation:
        parts.append(
            textwrap.fill(
                f"paper shape: {panel.expectation}", width=78, subsequent_indent="  "
            )
        )
    return "\n".join(parts)


def format_figure(figure: FigureResult) -> str:
    """Render a whole figure: header plus each panel."""
    header = f"==== {figure.figure_id}: {figure.title} ===="
    body = "\n\n".join(format_panel(panel) for panel in figure.panels)
    return f"{header}\n{body}\n"


def print_figure(figure: FigureResult) -> None:
    print(format_figure(figure))
