"""One experiment definition per figure of the paper's evaluation.

Each ``figN`` function runs the sweeps behind the corresponding paper
figure and returns a :class:`FigureResult` whose panels can be printed
with :mod:`repro.experiments.report`.  The ``expectation`` string on each
panel records the paper's qualitative shape, which is what this
reproduction is judged against (absolute numbers belong to the authors'
testbed; see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.config import SystemConfig
from repro.engine.system import MicroblogSystem
from repro.experiments.parallel import run_trials
from repro.experiments.runner import (
    TrialResult,
    TrialSpec,
    run_digestion_stress,
    run_trial,
)
from repro.experiments.scale import (
    PAPER_FLUSH_BUDGET,
    PAPER_K,
    PAPER_MEMORY_GB,
    SMALL,
    ScalePreset,
)
from repro.workload.stream import MicroblogStream, StreamConfig

__all__ = [
    "SweepResult",
    "TableResult",
    "FigureResult",
    "fig1_snapshot",
    "fig5_timeline",
    "fig7_k_filled",
    "fig8_hit_correlated",
    "fig9_hit_uniform",
    "fig10_overhead",
    "fig11_spatial",
    "fig12_user",
    "shard_sweep",
    "ALL_FIGURES",
]

ALL_POLICIES = ("fifo", "kflushing", "kflushing-mk", "lru")
#: Figures 11/12 omit kFlushing-MK: single-key query loads make it
#: identical to kFlushing (Section V-D).
SINGLE_KEY_POLICIES = ("fifo", "kflushing", "lru")

K_SWEEP = (5, 10, 20, 40, 60, 80, 100)
K_SWEEP_SHORT = (5, 20, 40, 60, 80, 100)
BUDGET_SWEEP = (0.2, 0.4, 0.6, 0.8, 1.0)
MEMORY_SWEEP_GB = (10.0, 20.0, 30.0, 40.0, 50.0)
SHARD_SWEEP = (1, 2, 4, 8)


@dataclass
class SweepResult:
    """One panel: y-values per series over a shared x-axis."""

    panel_id: str
    title: str
    x_label: str
    y_label: str
    xs: list[float]
    series: dict[str, list[float]]
    expectation: str = ""


@dataclass
class TableResult:
    """One panel holding free-form rows (snapshot-style results)."""

    panel_id: str
    title: str
    headers: list[str]
    rows: list[list]
    expectation: str = ""


Panel = Union[SweepResult, TableResult]


@dataclass
class FigureResult:
    """All panels of one paper figure."""

    figure_id: str
    title: str
    panels: list[Panel] = field(default_factory=list)


def _sweep(
    panel_id: str,
    title: str,
    x_label: str,
    y_label: str,
    xs: Sequence[float],
    policies: Sequence[str],
    spec_for: Callable[[str, float], TrialSpec],
    measure: Callable[[TrialResult], float],
    expectation: str,
    runner: Callable[[TrialSpec], TrialResult] = run_trial,
    jobs: int = 1,
) -> SweepResult:
    # Build the whole (x, policy) grid up front and hand it to the
    # (optionally process-parallel) trial runner; results come back in
    # grid order, so the per-series append order matches the old loops.
    grid = [(x, policy) for x in xs for policy in policies]
    results = run_trials(
        [spec_for(policy, x) for x, policy in grid], jobs=jobs, runner=runner
    )
    series: dict[str, list[float]] = {policy: [] for policy in policies}
    for (_x, policy), result in zip(grid, results):
        series[policy].append(measure(result))
    return SweepResult(
        panel_id=panel_id,
        title=title,
        x_label=x_label,
        y_label=y_label,
        xs=list(xs),
        series=series,
        expectation=expectation,
    )


# ----------------------------------------------------------------------
# Section V-A / Figure 1: snapshot of in-memory contents
# ----------------------------------------------------------------------

def fig1_snapshot(
    preset: ScalePreset = SMALL,
    seed: int = 42,
    shards: int = 1,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
    columnar: bool = False,
    adaptive: bool = False,
    slo_spec: Optional[str] = None,
    flight_recorder_events: int = 0,
    flight_recorder_path: Optional[str] = None,
) -> FigureResult:
    """Memory-content snapshots under temporal flushing vs kFlushing.

    Reproduces the paper's motivating observation: under temporal (FIFO)
    flushing, the bulk of memory is consumed by *useless* microblogs that
    sit beyond the top-k of their keywords (the paper reports >75% for
    k=20 on real tweets), while kFlushing drives the snapshot toward
    "every keyword holds exactly k".
    """
    rows: list[list] = []
    for policy in ("fifo", "kflushing"):
        spec = TrialSpec(
            policy=policy,
            scale=preset,
            seed=seed,
            shards=shards,
            disk_cache_bytes=disk_cache_bytes,
            disk_elide_empty=disk_elide_empty,
            columnar=columnar,
            adaptive=adaptive,
            slo_spec=slo_spec,
            flight_recorder_events=flight_recorder_events,
            flight_recorder_path=flight_recorder_path,
        )
        system = spec.build_system()
        stream = spec.build_stream()
        while (
            len(system.flush_reports()) < preset.warm_flushes
            and system.stats.ingest.offered < preset.max_warm_records
        ):
            system.ingest_many(stream.take(4096))
        # Snapshot right after a flush completes, when the policy has just
        # re-shaped memory (mid-cycle, every policy accumulates fresh
        # overflow on top — that is arrival, not policy, behaviour).
        flushes_seen = len(system.flush_reports())
        while (
            len(system.flush_reports()) == flushes_seen
            and system.stats.ingest.offered < 2 * preset.max_warm_records
        ):
            system.ingest_many(stream.take(512))
        snapshot = system.frequency_snapshot()
        k = spec.k
        total = sum(snapshot.values())
        useless = sum(max(0, count - k) for count in snapshot.values())
        below = sum(1 for count in snapshot.values() if count < k)
        exact = sum(1 for count in snapshot.values() if count == k)
        above = sum(1 for count in snapshot.values() if count > k)
        rows.append(
            [
                policy,
                total,
                useless,
                round(100.0 * useless / total, 1) if total else 0.0,
                below,
                exact,
                above,
                system.k_filled_count(),
            ]
        )
    return FigureResult(
        figure_id="fig1",
        title="Snapshot of in-memory contents (Sec V-A / Fig 1)",
        panels=[
            TableResult(
                panel_id="fig1",
                title="In-memory keyword frequency snapshot at steady state (k=20)",
                headers=[
                    "policy",
                    "postings",
                    "useless postings (beyond top-k)",
                    "useless %",
                    "keys <k",
                    "keys =k",
                    "keys >k",
                    "k-filled keys",
                ],
                rows=rows,
                expectation=(
                    "FIFO: most postings useless (paper: >75% of memory); "
                    "kFlushing: useless% near zero, far more k-filled keys."
                ),
            )
        ],
    )


# ----------------------------------------------------------------------
# Figure 5: memory consumption behaviour of the phases
# ----------------------------------------------------------------------

def fig5_timeline(preset: ScalePreset = SMALL, seed: int = 42) -> FigureResult:
    """Per-flush freed fraction: Phase-1-only saturates, full kFlushing
    keeps flushing the budgeted share (Figure 5(a) vs 5(b))."""
    max_flushes = 12
    series: dict[str, list[float]] = {}
    flush_x: list[float] = list(range(1, max_flushes + 1))
    for label, max_phase in (("phase1-only", 1), ("phases-1+2+3", 3)):
        spec = TrialSpec(policy="kflushing", scale=preset, seed=seed)
        config = SystemConfig(
            policy="kflushing",
            k=spec.k,
            memory_capacity_bytes=preset.capacity_bytes(spec.memory_gb),
            flush_fraction=spec.flush_budget,
        )
        system = MicroblogSystem(config)
        system.engine.max_phase = max_phase
        stream = spec.build_stream()
        freed: list[float] = []
        saturated = False
        while len(freed) < max_flushes and not saturated:
            for record in stream.take(2048):
                record_ok = system.engine.insert(record)
                if not record_ok:
                    continue
                if system.engine.needs_flush():
                    report = system.engine.run_flush(record.timestamp)
                    freed.append(100.0 * report.freed_bytes / max(1, report.target_bytes) * spec.flush_budget)
                    if report.freed_bytes <= 0:
                        saturated = True
                    if len(freed) >= max_flushes or saturated:
                        break
        # Pad a saturated run with zeros: after saturation no further
        # memory can be freed by that variant.
        freed.extend([0.0] * (max_flushes - len(freed)))
        series[label] = freed
    return FigureResult(
        figure_id="fig5",
        title="Memory consumption behaviour (Fig 5)",
        panels=[
            SweepResult(
                panel_id="fig5",
                title="Freed memory per flush operation (% of budgeted capacity)",
                x_label="flush #",
                y_label="freed (% of memory)",
                xs=flush_x,
                series=series,
                expectation=(
                    "phase1-only decays toward zero (saturation, Fig 5a); "
                    "the full three-phase policy keeps freeing ~the flush "
                    "budget every time (Fig 5b)."
                ),
            )
        ],
    )


# ----------------------------------------------------------------------
# Figure 7: k-filled keywords
# ----------------------------------------------------------------------

def fig7_k_filled(
    preset: ScalePreset = SMALL,
    seed: int = 42,
    jobs: int = 1,
    shards: int = 1,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
    pipelined: bool = False,
) -> FigureResult:
    disk_kwargs = dict(
        disk_cache_bytes=disk_cache_bytes,
        disk_elide_empty=disk_elide_empty,
        pipelined_ingest=pipelined,
    )

    def measure(result: TrialResult) -> float:
        return float(result.k_filled)

    panels = [
        _sweep(
            "fig7a",
            "k-filled keywords vs k",
            "k",
            "k-filled keys",
            K_SWEEP,
            ALL_POLICIES,
            lambda policy, x: TrialSpec(
                policy=policy,
                k=int(x),
                scale=preset,
                seed=seed,
                shards=shards,
                **disk_kwargs,
            ),
            measure,
            "Decreasing in k for all; kFlushing variants several times "
            "above FIFO and LRU (paper: >=7x FIFO, up to 3x LRU); "
            "kFlushing-MK slightly below kFlushing.",
            jobs=jobs,
        ),
        _sweep(
            "fig7b",
            "k-filled keywords vs flushing budget",
            "flushing budget (%)",
            "k-filled keys",
            [100 * b for b in BUDGET_SWEEP],
            ALL_POLICIES,
            lambda policy, x: TrialSpec(
                policy=policy,
                flush_budget=x / 100.0,
                scale=preset,
                seed=seed,
                shards=shards,
                **disk_kwargs,
            ),
            measure,
            "Decreasing in budget; kFlushing variants 8-10x FIFO and "
            "2-9x LRU across budgets.",
            jobs=jobs,
        ),
        _sweep(
            "fig7c",
            "k-filled keywords vs memory budget",
            "memory budget (GB)",
            "k-filled keys",
            MEMORY_SWEEP_GB,
            ALL_POLICIES,
            lambda policy, x: TrialSpec(
                policy=policy,
                memory_gb=x,
                scale=preset,
                seed=seed,
                shards=shards,
                **disk_kwargs,
            ),
            measure,
            "kFlushing advantage largest at tight memory (paper: ~13x FIFO "
            "and ~50x LRU at 10GB), narrowing as memory grows.",
            jobs=jobs,
        ),
    ]
    return FigureResult("fig7", "Number of memory-hit keywords (Fig 7)", panels)


# ----------------------------------------------------------------------
# Figures 8 and 9: memory hit ratio
# ----------------------------------------------------------------------

def _hit_figure(
    figure_id: str,
    workload_mode: str,
    preset: ScalePreset,
    seed: int,
    expectation: str,
    jobs: int = 1,
    shards: int = 1,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
    pipelined: bool = False,
    slo_spec: Optional[str] = None,
    flight_recorder_events: int = 0,
    flight_recorder_path: Optional[str] = None,
) -> FigureResult:
    disk_kwargs = dict(
        disk_cache_bytes=disk_cache_bytes,
        disk_elide_empty=disk_elide_empty,
        pipelined_ingest=pipelined,
        slo_spec=slo_spec,
        flight_recorder_events=flight_recorder_events,
        flight_recorder_path=flight_recorder_path,
    )

    def measure(result: TrialResult) -> float:
        return round(result.hit_percent, 2)

    def spec_k(policy: str, x: float) -> TrialSpec:
        return TrialSpec(
            policy=policy,
            k=int(x),
            workload_mode=workload_mode,
            scale=preset,
            seed=seed,
            shards=shards,
            **disk_kwargs,
        )

    def spec_budget(policy: str, x: float) -> TrialSpec:
        return TrialSpec(
            policy=policy,
            flush_budget=x / 100.0,
            workload_mode=workload_mode,
            scale=preset,
            seed=seed,
            shards=shards,
            **disk_kwargs,
        )

    def spec_memory(policy: str, x: float) -> TrialSpec:
        return TrialSpec(
            policy=policy,
            memory_gb=x,
            workload_mode=workload_mode,
            scale=preset,
            seed=seed,
            shards=shards,
            **disk_kwargs,
        )

    panels = [
        _sweep(
            f"{figure_id}a",
            f"hit ratio vs k ({workload_mode} load)",
            "k",
            "hit ratio (%)",
            K_SWEEP_SHORT,
            ALL_POLICIES,
            spec_k,
            measure,
            expectation,
            jobs=jobs,
        ),
        _sweep(
            f"{figure_id}b",
            f"hit ratio vs flushing budget ({workload_mode} load)",
            "flushing budget (%)",
            "hit ratio (%)",
            [100 * b for b in BUDGET_SWEEP],
            ALL_POLICIES,
            spec_budget,
            measure,
            expectation,
            jobs=jobs,
        ),
        _sweep(
            f"{figure_id}c",
            f"hit ratio vs memory budget ({workload_mode} load)",
            "memory budget (GB)",
            "hit ratio (%)",
            MEMORY_SWEEP_GB,
            ALL_POLICIES,
            spec_memory,
            measure,
            expectation,
            jobs=jobs,
        ),
    ]
    title = (
        "Hit ratio on correlated query load (Fig 8)"
        if workload_mode == "correlated"
        else "Hit ratio on uniform query load (Fig 9)"
    )
    return FigureResult(figure_id, title, panels)


def fig8_hit_correlated(
    preset: ScalePreset = SMALL,
    seed: int = 42,
    jobs: int = 1,
    shards: int = 1,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
    pipelined: bool = False,
    slo_spec: Optional[str] = None,
    flight_recorder_events: int = 0,
    flight_recorder_path: Optional[str] = None,
) -> FigureResult:
    return _hit_figure(
        "fig8",
        "correlated",
        preset,
        seed,
        "kFlushing variants above LRU above FIFO for every parameter "
        "(paper: 12-20% absolute over FIFO, 2-18% over LRU); decreasing "
        "in k and flushing budget, increasing in memory budget.",
        jobs=jobs,
        shards=shards,
        disk_cache_bytes=disk_cache_bytes,
        disk_elide_empty=disk_elide_empty,
        pipelined=pipelined,
        slo_spec=slo_spec,
        flight_recorder_events=flight_recorder_events,
        flight_recorder_path=flight_recorder_path,
    )


def fig9_hit_uniform(
    preset: ScalePreset = SMALL,
    seed: int = 42,
    jobs: int = 1,
    shards: int = 1,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
    pipelined: bool = False,
    slo_spec: Optional[str] = None,
    flight_recorder_events: int = 0,
    flight_recorder_path: Optional[str] = None,
) -> FigureResult:
    return _hit_figure(
        "fig9",
        "uniform",
        preset,
        seed,
        "Absolute hit ratios low for all policies (rare keys dominate a "
        "uniform load); kFlushing variants give large *relative* gains "
        "(paper: 100-330% over FIFO, 26-240% over LRU).",
        jobs=jobs,
        shards=shards,
        disk_cache_bytes=disk_cache_bytes,
        disk_elide_empty=disk_elide_empty,
        pipelined=pipelined,
        slo_spec=slo_spec,
        flight_recorder_events=flight_recorder_events,
        flight_recorder_path=flight_recorder_path,
    )


# ----------------------------------------------------------------------
# Figure 10: flushing overhead
# ----------------------------------------------------------------------

def fig10_overhead(
    preset: ScalePreset = SMALL,
    seed: int = 42,
    jobs: int = 1,
    digestion_seeds: int = 1,
    shards: int = 1,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
) -> FigureResult:
    """Figure 10 grid: one digestion-stress run per (policy, k).

    ``digestion_seeds`` > 1 repeats the grid under ``seed``, ``seed+1``,
    ... and reports the *mean* digestion rate per (policy, k).  Single-run
    wall-clock timings are noisy enough that the paper's policy ordering
    (FIFO > kFlushing > MK > LRU) can flip at individual points on a
    loaded machine; averaging a few seeds makes the comparison stable.
    The overhead panel (modelled bytes, deterministic) uses the base seed
    only.
    """
    disk_kwargs = dict(
        disk_cache_bytes=disk_cache_bytes, disk_elide_empty=disk_elide_empty
    )
    seeds = [seed + i for i in range(max(1, digestion_seeds))]
    grid = [
        (policy, k, s)
        for s in seeds
        for k in K_SWEEP_SHORT
        for policy in ALL_POLICIES
    ]
    trial_results = run_trials(
        [
            TrialSpec(
                policy=policy,
                k=k,
                scale=preset,
                seed=s,
                shards=shards,
                **disk_kwargs,
            )
            for policy, k, s in grid
        ],
        jobs=jobs,
        runner=run_digestion_stress,
    )
    by_point: dict[tuple[str, int, int], TrialResult] = {
        point: result for point, result in zip(grid, trial_results)
    }
    results: dict[tuple[str, int], TrialResult] = {
        (policy, k): by_point[(policy, k, seeds[0])]
        for policy in ALL_POLICIES
        for k in K_SWEEP_SHORT
    }

    def mean_digestion(policy: str, k: int) -> float:
        rates = [by_point[(policy, k, s)].effective_digestion_rate for s in seeds]
        return sum(rates) / len(rates)

    xs = list(K_SWEEP_SHORT)
    overhead = SweepResult(
        panel_id="fig10a",
        title="Policy bookkeeping memory vs k",
        x_label="k",
        y_label="overhead (simulated GB)",
        xs=xs,
        series={
            policy: [
                round(results[(policy, k)].policy_overhead_bytes / preset.bytes_per_gb, 4)
                for k in xs
            ]
            for policy in ALL_POLICIES
        },
        expectation=(
            "Stable in k for all policies; LRU highest (per-item list "
            "nodes; paper ~2-2.5x the kFlushing variants), FIFO lowest "
            "(segment headers only); kFlushing's cost is per-entry "
            "timestamps plus the temporary flush buffer."
        ),
    )
    digestion = SweepResult(
        panel_id="fig10b",
        title="Digestion rate vs k (unbounded arrival, wall-paced queries)",
        x_label="k",
        y_label="digestion rate (K records/s)",
        xs=xs,
        series={
            policy: [round(mean_digestion(policy, k) / 1000.0, 1) for k in xs]
            for policy in ALL_POLICIES
        },
        expectation=(
            "Roughly flat in k; FIFO highest (paper ~120K/s), kFlushing "
            "close behind (~100K/s), kFlushing-MK below it (~80K/s), LRU "
            "far lowest (~29K/s, per-item bookkeeping on the query path)."
        ),
    )
    return FigureResult("fig10", "Flushing overhead vs k (Fig 10)", [overhead, digestion])


# ----------------------------------------------------------------------
# Figures 11 and 12: extensibility (spatial and user attributes)
# ----------------------------------------------------------------------

def _attribute_figure(
    figure_id: str,
    attribute: str,
    key_label: str,
    preset: ScalePreset,
    seed: int,
    jobs: int = 1,
    shards: int = 1,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
) -> FigureResult:
    # Both panels draw from the same (policy, memory, mode) trial grid;
    # enumerate it once so the whole figure can fan out in parallel.
    points = [
        (policy, gb, mode)
        for mode in ("correlated", "uniform")
        for policy in SINGLE_KEY_POLICIES
        for gb in MEMORY_SWEEP_GB
    ]
    trial_results = run_trials(
        [
            TrialSpec(
                policy=policy,
                attribute=attribute,
                workload_mode=mode,
                memory_gb=gb,
                scale=preset,
                seed=seed,
                shards=shards,
                disk_cache_bytes=disk_cache_bytes,
                disk_elide_empty=disk_elide_empty,
            )
            for policy, gb, mode in points
        ],
        jobs=jobs,
    )
    cache: dict[tuple[str, float, str], TrialResult] = {
        point: result for point, result in zip(points, trial_results)
    }

    def trial(policy: str, memory_gb: float, mode: str) -> TrialResult:
        return cache[(policy, memory_gb, mode)]

    xs = list(MEMORY_SWEEP_GB)
    k_filled = SweepResult(
        panel_id=f"{figure_id}a",
        title=f"k-filled {key_label} vs memory budget",
        x_label="memory budget (GB)",
        y_label=f"k-filled {key_label}",
        xs=xs,
        series={
            policy: [float(trial(policy, gb, "correlated").k_filled) for gb in xs]
            for policy in SINGLE_KEY_POLICIES
        },
        expectation=(
            "kFlushing 2-5x the baselines, holding up at tight budgets "
            "(paper Fig 11a / 12a)."
        ),
    )
    hit_series: dict[str, list[float]] = {}
    for mode in ("uniform", "correlated"):
        for policy in SINGLE_KEY_POLICIES:
            hit_series[f"{policy}-{mode}"] = [
                round(trial(policy, gb, mode).hit_percent, 2) for gb in xs
            ]
    hit = SweepResult(
        panel_id=f"{figure_id}b",
        title=f"hit ratio vs memory budget ({attribute} attribute)",
        x_label="memory budget (GB)",
        y_label="hit ratio (%)",
        xs=xs,
        series=hit_series,
        expectation=(
            "kFlushing above FIFO and LRU on both workloads at every "
            "budget, with the largest margins at <=30GB (paper Fig 11b / "
            "12b)."
        ),
    )
    title = (
        "kFlushing on the spatial attribute (Fig 11)"
        if attribute == "spatial"
        else "kFlushing on the user attribute (Fig 12)"
    )
    return FigureResult(figure_id, title, [k_filled, hit])


def fig11_spatial(
    preset: ScalePreset = SMALL,
    seed: int = 42,
    jobs: int = 1,
    shards: int = 1,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
) -> FigureResult:
    return _attribute_figure(
        "fig11",
        "spatial",
        "spatial tiles",
        preset,
        seed,
        jobs=jobs,
        shards=shards,
        disk_cache_bytes=disk_cache_bytes,
        disk_elide_empty=disk_elide_empty,
    )


def fig12_user(
    preset: ScalePreset = SMALL,
    seed: int = 42,
    jobs: int = 1,
    shards: int = 1,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
) -> FigureResult:
    return _attribute_figure(
        "fig12",
        "user",
        "user ids",
        preset,
        seed,
        jobs=jobs,
        shards=shards,
        disk_cache_bytes=disk_cache_bytes,
        disk_elide_empty=disk_elide_empty,
    )


# ----------------------------------------------------------------------
# Shard-count sweep (sharded-architecture experiment; no paper analogue)
# ----------------------------------------------------------------------

def shard_sweep(
    preset: ScalePreset = SMALL,
    seed: int = 42,
    jobs: int = 1,
    shard_counts: Sequence[int] = SHARD_SWEEP,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
) -> FigureResult:
    """Hit ratio and effective digestion rate vs shard count.

    Every trial keeps the *total* memory budget fixed and splits it over
    N hash-partitioned shards (capacity/N each, independent flush
    cycles).  Two effects compete as N grows: per-shard flushes are
    smaller and cheaper, but multi-key records are replicated into every
    owning shard, so the same budget holds fewer distinct records — the
    hit-ratio curve prices that replication.
    """
    policies = ("fifo", "kflushing")

    def spec_for(policy: str, x: float) -> TrialSpec:
        return TrialSpec(
            policy=policy,
            scale=preset,
            seed=seed,
            shards=int(x),
            disk_cache_bytes=disk_cache_bytes,
            disk_elide_empty=disk_elide_empty,
        )

    panels = [
        _sweep(
            "shardsa",
            "hit ratio vs shard count",
            "shards",
            "hit ratio (%)",
            list(shard_counts),
            policies,
            spec_for,
            lambda result: round(result.hit_percent, 2),
            "Gently decreasing in N (fan-out replication dilutes the "
            "fixed total budget); kFlushing stays above FIFO at every N.",
            jobs=jobs,
        ),
        _sweep(
            "shardsb",
            "effective digestion rate vs shard count",
            "shards",
            "digestion rate (K records/s)",
            list(shard_counts),
            policies,
            spec_for,
            lambda result: round(result.effective_digestion_rate / 1000.0, 1),
            "Within a small factor of N=1 (single-process simulation pays "
            "routing overhead without the parallel-flush win a threaded "
            "deployment would collect); smaller per-shard flushes shorten "
            "the ingestion stalls.",
            jobs=jobs,
        ),
    ]
    return FigureResult("shards", "Hash-partitioned shard-count sweep", panels)


#: Registry used by the CLI and the benchmark harness.  The extension
#: experiments register themselves on import (see experiments/__init__).
ALL_FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig1": fig1_snapshot,
    "fig5": fig5_timeline,
    "fig7": fig7_k_filled,
    "fig8": fig8_hit_correlated,
    "fig9": fig9_hit_uniform,
    "fig10": fig10_overhead,
    "fig11": fig11_spatial,
    "fig12": fig12_user,
    "shards": shard_sweep,
}
