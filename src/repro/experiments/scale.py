"""Paper↔simulation scaling.

The paper runs on 2B+ real tweets against a 30 GB memory budget; this
reproduction runs on a synthetic stream against a *modelled* byte budget.
A :class:`ScalePreset` fixes the exchange rate (simulated bytes per paper
gigabyte) together with the workload sizes, so every figure harness can be
run at three fidelities:

* ``tiny``   — seconds per trial; used by the test suite;
* ``small``  — the default for ``benchmarks/``; minutes per figure;
* ``full``   — the highest fidelity; use for EXPERIMENTS.md numbers when
  time allows.

What must be preserved for the paper's phenomena to reproduce is not the
absolute size but the *regime*: the memory budget must hold far fewer than
``vocabulary_size * k`` postings, so that the long Zipf tail stays below k
and flushing policy choices matter.  All presets satisfy this.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "ScalePreset",
    "TINY",
    "SMALL",
    "FULL",
    "PRESETS",
    "preset_from_env",
    "PAPER_MEMORY_GB",
    "PAPER_FLUSH_BUDGET",
    "PAPER_K",
    "PAPER_QUERY_RATE_PER_S",
]

#: The paper's defaults (Section V).
PAPER_MEMORY_GB = 30.0
PAPER_FLUSH_BUDGET = 0.10
PAPER_K = 20
#: Query arrival rate in the paper's workload replay.
PAPER_QUERY_RATE_PER_S = 25_000.0


@dataclass(frozen=True)
class ScalePreset:
    """One fidelity level for the experiment harness."""

    name: str
    #: Simulated (modelled) bytes representing one paper gigabyte.
    bytes_per_gb: int
    #: Synthetic hashtag vocabulary size.
    vocabulary_size: int
    #: Synthetic user population size.
    user_count: int
    #: Steady state is declared after this many flush operations.
    warm_flushes: int
    #: Hard cap on warm-up records (safety against tiny flush budgets).
    max_warm_records: int
    #: Records ingested during the measured phase.
    eval_records: int
    #: Queries issued per ingested record during the measured phase.
    queries_per_record: float
    #: AND-evaluation scan caps (see SystemConfig).
    and_scan_depth: int
    and_disk_limit: int
    #: Grid tile side for the spatial attribute.  The paper's 4 mi^2
    #: (~0.03 deg) tiles assume 2B tweets; scaled-down streams need
    #: proportionally coarser tiles so hotspot tiles can reach k at all.
    tile_side_degrees: float = 0.03

    def capacity_bytes(self, memory_gb: float) -> int:
        """Simulated memory budget for a paper-scale gigabyte figure."""
        return max(1, int(memory_gb * self.bytes_per_gb))


TINY = ScalePreset(
    name="tiny",
    bytes_per_gb=100_000,
    vocabulary_size=3_000,
    user_count=8_000,
    warm_flushes=3,
    max_warm_records=150_000,
    eval_records=6_000,
    queries_per_record=1.0,
    and_scan_depth=400,
    and_disk_limit=400,
    tile_side_degrees=0.30,
)

SMALL = ScalePreset(
    name="small",
    bytes_per_gb=300_000,
    vocabulary_size=12_000,
    user_count=30_000,
    warm_flushes=5,
    max_warm_records=500_000,
    eval_records=25_000,
    queries_per_record=1.5,
    and_scan_depth=1_000,
    and_disk_limit=1_000,
    tile_side_degrees=0.15,
)

FULL = ScalePreset(
    name="full",
    bytes_per_gb=1_000_000,
    vocabulary_size=30_000,
    user_count=80_000,
    warm_flushes=5,
    max_warm_records=2_000_000,
    eval_records=80_000,
    queries_per_record=2.0,
    and_scan_depth=1_500,
    and_disk_limit=1_500,
    tile_side_degrees=0.08,
)

PRESETS: dict[str, ScalePreset] = {p.name: p for p in (TINY, SMALL, FULL)}


def preset_from_env(default: str = "small") -> ScalePreset:
    """Resolve the preset from ``REPRO_SCALE`` (tiny/small/full)."""
    name = os.environ.get("REPRO_SCALE", default).strip().lower()
    try:
        return PRESETS[name]
    except KeyError:
        valid = ", ".join(sorted(PRESETS))
        raise ValueError(f"REPRO_SCALE={name!r} unknown; expected one of: {valid}") from None
