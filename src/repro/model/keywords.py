"""Keyword extraction and normalisation.

The paper indexes tweets by their hashtags ("we use hashtags, if available,
as keywords", Section V).  This module provides the tokenizer used when a
data source supplies raw text instead of pre-extracted keywords, plus the
normalisation rules shared by the indexer and the query parser so that a
query for ``#Obama`` matches a record tagged ``#obama``.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

__all__ = [
    "normalize_keyword",
    "extract_hashtags",
    "extract_terms",
    "STOPWORDS",
]

# A compact English stopword list.  Term extraction (the non-hashtag
# fallback) drops these so that the inverted index is not dominated by
# function words that no user would search for.
STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again all am an and any are as at be because been
    before being below between both but by did do does doing down during
    each few for from further had has have having he her here hers him his
    how i if in into is it its just me more most my no nor not now of off
    on once only or other our out over own same she so some such than that
    the their them then there these they this those through to too under
    until up very was we were what when where which while who whom why will
    with you your
    """.split()
)

_HASHTAG_RE = re.compile(r"#(\w[\w'-]*)", re.UNICODE)
_TERM_RE = re.compile(r"[A-Za-z][A-Za-z'-]{1,}", re.UNICODE)


def normalize_keyword(raw: str) -> str:
    """Normalise a keyword for indexing and querying.

    Lower-cases, strips a leading ``#`` and surrounding whitespace.  Returns
    the empty string when nothing indexable remains; callers must skip empty
    results.
    """
    kw = raw.strip().lstrip("#").lower()
    return kw


def extract_hashtags(text: str) -> tuple[str, ...]:
    """Extract normalised, de-duplicated hashtags from ``text`` in order of
    first appearance.

    >>> extract_hashtags("Breaking #NBA finals!!! #nba #obama")
    ('nba', 'obama')
    """
    seen: set[str] = set()
    out: list[str] = []
    for match in _HASHTAG_RE.finditer(text):
        kw = normalize_keyword(match.group(1))
        if kw and kw not in seen:
            seen.add(kw)
            out.append(kw)
    return tuple(out)


def _iter_terms(text: str) -> Iterator[str]:
    for match in _TERM_RE.finditer(text):
        term = match.group(0).lower()
        if term not in STOPWORDS:
            yield term


def extract_terms(text: str, limit: int | None = None) -> tuple[str, ...]:
    """Extract normalised, de-duplicated content terms from ``text``.

    Used as a fallback keyword source for records without hashtags.  At most
    ``limit`` terms are returned (``None`` means unlimited), in order of
    first appearance.

    >>> extract_terms("The game was in the final minute")
    ('game', 'final', 'minute')
    """
    seen: set[str] = set()
    out: list[str] = []
    for term in _iter_terms(text):
        if term in seen:
            continue
        seen.add(term)
        out.append(term)
        if limit is not None and len(out) >= limit:
            break
    return tuple(out)


def normalize_all(raws: Iterable[str]) -> tuple[str, ...]:
    """Normalise an iterable of raw keywords, dropping empties and
    duplicates while preserving first-appearance order."""
    seen: set[str] = set()
    out: list[str] = []
    for raw in raws:
        kw = normalize_keyword(raw)
        if kw and kw not in seen:
            seen.add(kw)
            out.append(kw)
    return tuple(out)
