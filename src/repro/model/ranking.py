"""Ranking functions for top-k microblog search.

Section IV-B of the paper requires that kFlushing work with any ranking
function whose score "can be all computed upon the microblog arrival".
Each ranking function here therefore maps a record to a single float at
insert time; posting lists keep their postings ordered by that score so the
top-k of any index entry is directly accessible (the paper's Figure 3 list
layout).

Higher scores rank better.  Ties are broken by timestamp (newer first) and
then by ``blog_id`` so that every total order is deterministic.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.model.microblog import Microblog

__all__ = [
    "RankingFunction",
    "TemporalRanking",
    "PopularityRanking",
    "WeightedRanking",
    "CallableRanking",
    "ranking_from_name",
]


class RankingFunction(ABC):
    """Maps a microblog to a scalar relevance score at arrival time."""

    #: Short, stable identifier used in configs and experiment labels.
    name: str = "abstract"

    @abstractmethod
    def score(self, record: Microblog) -> float:
        """Return the ranking score of ``record`` (higher is better)."""

    def sort_key(self, record: Microblog) -> tuple[float, float, int]:
        """Total-order key: score, then recency, then id."""
        return (self.score(record), record.timestamp, record.blog_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class TemporalRanking(RankingFunction):
    """The paper's default: most recent first (Twitter's *All* ranking)."""

    name = "temporal"

    def score(self, record: Microblog) -> float:
        return record.timestamp


class PopularityRanking(RankingFunction):
    """Recency blended with poster popularity (Twitter's *Top* ranking).

    The score is ``timestamp + popularity_weight * log2(1 + followers)``:
    a microblog from a user with many followers ranks as if it were
    ``popularity_weight`` seconds newer per doubling of the follower count.
    With ``popularity_weight=0`` this degenerates to temporal ranking.
    """

    name = "popularity"

    def __init__(self, popularity_weight: float = 60.0) -> None:
        if popularity_weight < 0:
            raise ValueError("popularity_weight must be non-negative")
        self.popularity_weight = popularity_weight

    def score(self, record: Microblog) -> float:
        boost = self.popularity_weight * math.log2(1.0 + record.followers)
        return record.timestamp + boost


class WeightedRanking(RankingFunction):
    """A linear combination of other ranking functions.

    Models the paper's examples of combined functions (timestamp with
    spatial attributes, popularity, or textual relevance) in a single
    composable form: ``sum(w_i * f_i(record))``.
    """

    name = "weighted"

    def __init__(
        self,
        components: Sequence[tuple[float, RankingFunction]],
    ) -> None:
        if not components:
            raise ValueError("WeightedRanking needs at least one component")
        self._components = tuple((float(w), f) for w, f in components)

    def score(self, record: Microblog) -> float:
        return sum(w * f.score(record) for w, f in self._components)


class CallableRanking(RankingFunction):
    """Adapts an arbitrary ``record -> float`` callable.

    The callable must be a pure function of the record (arrival-computable,
    per Section IV-B); this is not enforced but is assumed by the posting
    lists, which never re-score.
    """

    name = "callable"

    def __init__(self, fn: Callable[[Microblog], float], name: str = "callable") -> None:
        self._fn = fn
        self.name = name

    def score(self, record: Microblog) -> float:
        return float(self._fn(record))


_BUILTIN: dict[str, Callable[[], RankingFunction]] = {
    "temporal": TemporalRanking,
    "popularity": PopularityRanking,
}


def ranking_from_name(name: str) -> RankingFunction:
    """Instantiate a built-in ranking function by its ``name``.

    Raises ``ValueError`` for unknown names; the message lists the valid
    options to keep configuration errors actionable.
    """
    try:
        factory = _BUILTIN[name]
    except KeyError:
        valid = ", ".join(sorted(_BUILTIN))
        raise ValueError(f"unknown ranking function {name!r}; expected one of: {valid}") from None
    return factory()
