"""Attribute extractors: how a microblog maps to index keys.

Section IV-A generalises kFlushing beyond keywords to "any search
attribute" that has an index: the paper evaluates keyword, user-id, and
spatial-grid attributes.  An :class:`AttributeExtractor` encapsulates that
mapping — given a record it yields the index keys under which the record is
posted.  The storage engines, flushing policies, and query executor are all
generic over the extractor, which is what makes the extensibility
experiments (Figures 11 and 12) share the entire code path with keywords.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Hashable

from repro.errors import ConfigurationError
from repro.model.microblog import Microblog

__all__ = [
    "AttributeExtractor",
    "KeywordAttribute",
    "UserAttribute",
    "SpatialGridAttribute",
    "attribute_from_name",
]

Key = Hashable


class AttributeExtractor(ABC):
    """Maps a microblog to the index keys it should be posted under."""

    #: Short, stable identifier used in configs and experiment labels.
    name: str = "abstract"

    #: Whether one record can map to multiple keys (keywords: yes; a user
    #: id or a point location: no).  AND-queries are only meaningful for
    #: multi-key attributes (the paper notes spatial AND is semantically
    #: invalid), and the MK extension only changes behaviour when this is
    #: true.
    multi_key: bool = False

    @abstractmethod
    def keys(self, record: Microblog) -> tuple[Key, ...]:
        """Return the (possibly empty) tuple of index keys for ``record``.

        A record with no keys is unindexable under this attribute and is
        skipped by the storage engine.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class KeywordAttribute(AttributeExtractor):
    """Index by the record's keywords (the paper's default)."""

    name = "keyword"
    multi_key = True

    def keys(self, record: Microblog) -> tuple[Key, ...]:
        return record.keywords


class UserAttribute(AttributeExtractor):
    """Index by posting user for timeline queries (Figure 12)."""

    name = "user"
    multi_key = False

    def keys(self, record: Microblog) -> tuple[Key, ...]:
        return (record.user_id,)


class SpatialGridAttribute(AttributeExtractor):
    """Index by equal-area spatial grid tile (Figure 11).

    The paper uses tiles of 4 mi².  We model the grid directly in degrees
    with a configurable tile side; at mid-latitudes the default of 0.03°
    (~2 miles) matches the paper's tile area.  Tile keys are ``(ix, iy)``
    integer pairs.
    """

    name = "spatial"
    multi_key = False

    def __init__(self, tile_side_degrees: float = 0.03) -> None:
        if not tile_side_degrees > 0:
            raise ConfigurationError(
                f"tile_side_degrees must be positive, got {tile_side_degrees!r}"
            )
        self.tile_side_degrees = tile_side_degrees

    def keys(self, record: Microblog) -> tuple[Key, ...]:
        if record.location is None:
            return ()
        return (self.tile_of(record.location.latitude, record.location.longitude),)

    def tile_of(self, latitude: float, longitude: float) -> tuple[int, int]:
        """Return the ``(ix, iy)`` tile containing a coordinate."""
        ix = math.floor(longitude / self.tile_side_degrees)
        iy = math.floor(latitude / self.tile_side_degrees)
        return (ix, iy)

    def tile_bounds(self, tile: tuple[int, int]) -> tuple[float, float, float, float]:
        """Return ``(min_lon, min_lat, max_lon, max_lat)`` of ``tile``."""
        ix, iy = tile
        side = self.tile_side_degrees
        return (ix * side, iy * side, (ix + 1) * side, (iy + 1) * side)


def attribute_from_name(name: str, **kwargs: float) -> AttributeExtractor:
    """Instantiate a built-in attribute extractor by ``name``.

    ``kwargs`` are forwarded to the extractor constructor (e.g.
    ``tile_side_degrees`` for ``"spatial"``).
    """
    if name == "keyword":
        return KeywordAttribute()
    if name == "user":
        return UserAttribute()
    if name == "spatial":
        return SpatialGridAttribute(**kwargs)
    raise ValueError(
        f"unknown attribute {name!r}; expected one of: keyword, spatial, user"
    )
