"""Data model: records, keyword extraction, ranking, attribute extractors."""

from repro.model.attributes import (
    AttributeExtractor,
    KeywordAttribute,
    SpatialGridAttribute,
    UserAttribute,
    attribute_from_name,
)
from repro.model.keywords import extract_hashtags, extract_terms, normalize_keyword
from repro.model.microblog import GeoPoint, Microblog
from repro.model.ranking import (
    CallableRanking,
    PopularityRanking,
    RankingFunction,
    TemporalRanking,
    WeightedRanking,
    ranking_from_name,
)

__all__ = [
    "AttributeExtractor",
    "CallableRanking",
    "GeoPoint",
    "KeywordAttribute",
    "Microblog",
    "PopularityRanking",
    "RankingFunction",
    "SpatialGridAttribute",
    "TemporalRanking",
    "UserAttribute",
    "WeightedRanking",
    "attribute_from_name",
    "extract_hashtags",
    "extract_terms",
    "normalize_keyword",
    "ranking_from_name",
]
