"""The microblog record: the unit of data the whole system manages.

A :class:`Microblog` mirrors the information the paper's environment keeps
for each tweet-like item (Section II-A): a unique id, an arrival timestamp,
the posting user, the raw text, the extracted keywords (the paper uses
hashtags), an optional point location, and the user's follower count (used
by the popularity ranking function of Section IV-B).

Records are immutable; all mutable bookkeeping (reference counts, index
membership) lives in the storage layer, keyed by ``blog_id``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

__all__ = ["Microblog", "GeoPoint"]


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS-84 point location attached to a microblog.

    Latitude is in degrees in ``[-90, 90]``; longitude in ``[-180, 180)``.
    Validation is performed on construction because tile assignment in the
    spatial index assumes in-range coordinates.
    """

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude!r}")
        if not -180.0 <= self.longitude < 180.0001:
            raise ValueError(f"longitude out of range: {self.longitude!r}")


@dataclass(frozen=True, slots=True)
class Microblog:
    """One immutable microblog record.

    Parameters
    ----------
    blog_id:
        Unique, monotonically increasing integer id.  Ids are assigned by
        the stream source; the storage layer rejects duplicates.
    timestamp:
        Arrival time in (possibly simulated) seconds.  The temporal ranking
        function orders by this field, newest first.
    user_id:
        Integer id of the posting user.
    text:
        Raw text of the microblog.  Only its length matters to the memory
        model, but examples render it.
    keywords:
        Extracted, normalised keywords (the paper uses hashtags).  May be
        empty, in which case the record is unindexable by keyword and a
        keyword-attribute system ignores it.
    location:
        Optional point location; required for spatial indexing.
    followers:
        Follower count of the posting user at posting time; input to the
        popularity ranking function.
    """

    blog_id: int
    timestamp: float
    user_id: int
    text: str = ""
    keywords: tuple[str, ...] = field(default=())
    location: Optional[GeoPoint] = None
    followers: int = 0

    def __post_init__(self) -> None:
        if self.blog_id < 0:
            raise ValueError(f"blog_id must be non-negative, got {self.blog_id}")
        if self.followers < 0:
            raise ValueError(f"followers must be non-negative, got {self.followers}")
        if not isinstance(self.keywords, tuple):
            # Accept any iterable at construction for caller convenience but
            # store a tuple so the record stays hashable and immutable.
            object.__setattr__(self, "keywords", tuple(self.keywords))
        for kw in self.keywords:
            if not kw:
                raise ValueError("keywords must be non-empty strings")

    @property
    def has_location(self) -> bool:
        """Whether the record can participate in a spatial index."""
        return self.location is not None

    @property
    def keyword_count(self) -> int:
        """Number of distinct keywords attached to this record."""
        return len(self.keywords)

    def with_keywords(self, keywords: Iterable[str]) -> "Microblog":
        """Return a copy of this record with ``keywords`` replaced."""
        return replace(self, keywords=tuple(keywords))

    def age_at(self, now: float) -> float:
        """Seconds elapsed between this record's arrival and ``now``."""
        return now - self.timestamp

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tags = " ".join(f"#{kw}" for kw in self.keywords)
        return f"[{self.blog_id} @t={self.timestamp:.2f} u={self.user_id}] {self.text} {tags}".rstrip()
