"""Exception hierarchy for the microblogs data-management reproduction.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one type at their boundary.  Subclasses are split by
subsystem so that tests and callers can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A :class:`~repro.config.SystemConfig` (or a component parameter)
    carries an invalid or inconsistent value."""


class CapacityError(ReproError):
    """A store was asked to hold data that cannot fit even after flushing.

    This occurs, for example, when a single microblog record is larger than
    the whole configured memory budget.
    """


class DuplicateRecordError(ReproError):
    """A record with an already-ingested ``blog_id`` was inserted again."""


class UnknownRecordError(ReproError, KeyError):
    """A ``blog_id`` was requested that is in neither memory nor disk."""


class UnknownKeyError(ReproError, KeyError):
    """An index key (keyword, user id, tile id) has no entry anywhere."""


class FlushError(ReproError):
    """A flushing policy could not satisfy its contract.

    Raised when a policy finishes all of its phases without freeing the
    requested budget even though the budget was satisfiable.
    """


class QueryError(ReproError):
    """A query object is malformed (e.g. ``k <= 0`` or no search keys)."""


class WorkloadError(ReproError):
    """A workload generator was configured with impossible parameters."""
