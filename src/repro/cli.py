"""Command-line interface: ``repro-microblogs``.

Subcommands
-----------
``list``
    Show the available figure experiments and scale presets.
``run --figure fig7 [--scale small] [--seed 42]``
    Run one figure experiment (or ``all``) and print its tables.
``demo``
    A 30-second end-to-end demo: ingest a synthetic stream under two
    policies and compare their steady-state hit ratios.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.config import SystemConfig
from repro.engine.system import MicroblogSystem
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import print_figure
from repro.experiments.scale import PRESETS, SMALL
from repro.workload.queryload import QueryLoad, QueryLoadConfig
from repro.workload.stream import MicroblogStream, StreamConfig

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    print("figures:")
    for name, fn in sorted(ALL_FIGURES.items()):
        doc = (fn.__doc__ or "").strip().splitlines()
        print(f"  {name:7s} {doc[0] if doc else ''}")
    print("scale presets:", ", ".join(sorted(PRESETS)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    preset = PRESETS[args.scale]
    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        fn = ALL_FIGURES[name]
        start = time.perf_counter()
        figure = fn(preset, seed=args.seed)
        elapsed = time.perf_counter() - start
        print_figure(figure)
        print(f"[{name} completed in {elapsed:.1f}s at scale={preset.name}]\n")
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    print("Comparing FIFO and kFlushing on the same synthetic stream ...")
    for policy in ("fifo", "kflushing"):
        config = SystemConfig(
            policy=policy,
            k=20,
            memory_capacity_bytes=2_000_000,
            and_scan_depth=500,
            and_disk_limit=500,
        )
        system = MicroblogSystem(config)
        stream = MicroblogStream(
            StreamConfig(seed=7, vocabulary_size=5_000, with_locations=False)
        )
        queries = QueryLoad(QueryLoadConfig(seed=8, mode="correlated"), stream)
        system.ingest_many(stream.take(40_000))
        from repro.engine.stats import QueryStats

        system.stats.queries = QueryStats()
        for record in stream.take(10_000):
            system.ingest(record)
            system.search(queries.next_query())
        print(
            f"  {policy:10s} hit ratio {100 * system.hit_ratio():5.1f}%  "
            f"k-filled keys {system.k_filled_count():5d}  "
            f"flushes {len(system.flush_reports())}"
        )
    print("kFlushing should answer noticeably more queries from memory.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-microblogs",
        description=(
            "Reproduction harness for 'On Main-memory Flushing in "
            "Microblogs Data Management Systems' (ICDE 2016)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list figures and scale presets").set_defaults(
        fn=_cmd_list
    )

    run = sub.add_parser("run", help="run a figure experiment")
    run.add_argument(
        "--figure",
        default="all",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="which paper figure to regenerate",
    )
    run.add_argument(
        "--scale", default=SMALL.name, choices=sorted(PRESETS), help="fidelity preset"
    )
    run.add_argument("--seed", type=int, default=42, help="workload seed")
    run.set_defaults(fn=_cmd_run)

    sub.add_parser("demo", help="quick FIFO vs kFlushing comparison").set_defaults(
        fn=_cmd_demo
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
