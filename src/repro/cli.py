"""Command-line interface: ``repro-microblogs``.

Subcommands
-----------
``list``
    Show the available figure experiments and scale presets.
``run --figure fig7 [--scale small] [--seed 42] [--jobs 4] [--shards 4] [--metrics-out m.jsonl]``
    Run one figure experiment (or ``all``) and print its tables;
    ``--jobs`` fans the figure's trial grid out over worker processes
    (results are identical to a serial run); ``--shards`` hash-partitions
    each trial's system over N shards; ``--disk-cache-bytes`` /
    ``--disk-elide-empty`` enable the modelled disk read cache and
    negative-lookup elision (both off by default — answers never change,
    only disk-lookup counts and simulated latency); ``--metrics-out``
    streams every instrumentation event of the run (flush spans, query
    events, final snapshot) to a JSONL file — parallel workers write
    per-trial metric shards that are merged into the same file after the
    pool drains.
``bench [--preset tiny] [--seed 42] [--jobs 2] [--out BENCH_PR4.json]``
    Run the performance benchmark suites (k-filled sampling, digestion
    rate, flush cost, sweep wall-clock, shard scaling, disk tier) and
    write the perf-trajectory JSON (see docs/PERFORMANCE.md).
``stats [--shards 4] [--disk-cache-bytes N] [--disk-elide-empty]``
    Run a tiny synthetic workload and dump the instrumentation registry
    (flush phase spans, per-mode query counters, disk I/O, per-shard
    gauges when sharded) as JSON or Prometheus-style text; the system's
    invariants are checked before the dump.
``demo``
    A 30-second end-to-end demo: ingest a synthetic stream under two
    policies and compare their steady-state hit ratios.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.config import SystemConfig
from repro.engine.sharded import build_system
from repro.engine.system import MicroblogSystem
from repro.experiments.bench import ALL_SUITES, run_bench
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.parallel import resolve_jobs
from repro.experiments.report import print_figure
from repro.experiments.scale import PRESETS, SMALL
from repro.obs import Instrumentation, JsonlSink, activated, to_json, to_prometheus_text
from repro.workload.queryload import QueryLoad, QueryLoadConfig
from repro.workload.stream import MicroblogStream, StreamConfig

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    print("figures:")
    for name, fn in sorted(ALL_FIGURES.items()):
        doc = (fn.__doc__ or "").strip().splitlines()
        print(f"  {name:7s} {doc[0] if doc else ''}")
    print("scale presets:", ", ".join(sorted(PRESETS)))
    return 0


def _figure_kwargs(
    fn,
    seed: int,
    jobs: int,
    shards: int = 1,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
) -> dict:
    """Keyword arguments for one figure function.

    ``jobs``, ``shards``, and the disk-tier gates are forwarded only to
    figures whose signatures support them (the extension experiments,
    for instance, run serially; fig5 is an engine-level experiment with
    no sharded variant).
    """
    kwargs = {"seed": seed}
    params = inspect.signature(fn).parameters
    if jobs > 1 and "jobs" in params:
        kwargs["jobs"] = jobs
    if shards > 1 and "shards" in params:
        kwargs["shards"] = shards
    if disk_cache_bytes > 0 and "disk_cache_bytes" in params:
        kwargs["disk_cache_bytes"] = disk_cache_bytes
    if disk_elide_empty and "disk_elide_empty" in params:
        kwargs["disk_elide_empty"] = disk_elide_empty
    return kwargs


def _cmd_run(args: argparse.Namespace) -> int:
    preset = PRESETS[args.scale]
    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    obs: Optional[Instrumentation] = None
    jobs = resolve_jobs(args.jobs)
    if args.metrics_out:
        # Parallel workers write per-trial metric shards that run_trials
        # merges back into this sink's file, so --jobs stays effective.
        obs = Instrumentation(sink=JsonlSink(args.metrics_out))
    for name in names:
        fn = ALL_FIGURES[name]
        kwargs = _figure_kwargs(
            fn,
            args.seed,
            jobs,
            args.shards,
            disk_cache_bytes=args.disk_cache_bytes,
            disk_elide_empty=args.disk_elide_empty,
        )
        start = time.perf_counter()
        if obs is not None:
            # Every system built inside the figure shares this registry
            # and streams its events to the JSONL sink.
            with activated(obs):
                figure = fn(preset, **kwargs)
        else:
            figure = fn(preset, **kwargs)
        elapsed = time.perf_counter() - start
        print_figure(figure)
        print(f"[{name} completed in {elapsed:.1f}s at scale={preset.name}]\n")
    if obs is not None:
        obs.event("run_snapshot", figures=names, metrics=obs.registry.snapshot())
        obs.close()
        print(f"[metrics written to {args.metrics_out}]")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    records = run_bench(
        preset=args.preset,
        seed=args.seed,
        out=args.out,
        jobs=resolve_jobs(args.jobs),
        suites=args.suites,
    )
    elapsed = time.perf_counter() - start
    for record in records:
        print(
            f"  {record.metric:32s} {record.policy:13s} "
            f"{record.value:12.2f} {record.unit}"
        )
    print(f"[{len(records)} measurements written to {args.out} in {elapsed:.1f}s]")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Tiny fig1-style run: ingest + interleaved queries, dump metrics."""
    obs = Instrumentation(
        sink=JsonlSink(args.events_out) if args.events_out else None
    )
    config = SystemConfig(
        policy=args.policy,
        k=args.k,
        memory_capacity_bytes=args.capacity_bytes,
        and_scan_depth=500,
        and_disk_limit=500,
        shards=args.shards,
        disk_cache_bytes=args.disk_cache_bytes,
        disk_elide_empty=args.disk_elide_empty,
    )
    system = build_system(config, obs=obs)
    stream = MicroblogStream(
        StreamConfig(seed=args.seed, vocabulary_size=5_000, with_locations=False)
    )
    queries = QueryLoad(QueryLoadConfig(seed=args.seed + 1, mode="correlated"), stream)
    per_query = max(1, args.records // max(1, args.queries))
    ingested = 0
    for record in stream.take(args.records):
        system.ingest(record)
        ingested += 1
        if ingested % per_query == 0:
            system.search(queries.next_query())
    # Invariant check through the facade: per-engine structure plus, when
    # sharded, the router's key-ownership invariant on every shard.
    system.check_integrity()
    # snapshot() refreshes the per-shard gauges into the registry, so the
    # rendered dump includes shard.<i>.* series for a sharded run.
    system.snapshot()
    obs.close()
    rendered = (
        to_prometheus_text(obs.registry)
        if args.format == "prom"
        else to_json(obs.registry)
    )
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(rendered + "\n", encoding="utf-8")
        print(f"[metrics snapshot written to {args.out}]")
    else:
        print(rendered)
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    print("Comparing FIFO and kFlushing on the same synthetic stream ...")
    for policy in ("fifo", "kflushing"):
        config = SystemConfig(
            policy=policy,
            k=20,
            memory_capacity_bytes=2_000_000,
            and_scan_depth=500,
            and_disk_limit=500,
        )
        system = MicroblogSystem(config)
        stream = MicroblogStream(
            StreamConfig(seed=7, vocabulary_size=5_000, with_locations=False)
        )
        queries = QueryLoad(QueryLoadConfig(seed=8, mode="correlated"), stream)
        system.ingest_many(stream.take(40_000))
        from repro.engine.stats import QueryStats

        system.stats.queries = QueryStats()
        for record in stream.take(10_000):
            system.ingest(record)
            system.search(queries.next_query())
        print(
            f"  {policy:10s} hit ratio {100 * system.hit_ratio():5.1f}%  "
            f"k-filled keys {system.k_filled_count():5d}  "
            f"flushes {len(system.flush_reports())}"
        )
    print("kFlushing should answer noticeably more queries from memory.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-microblogs",
        description=(
            "Reproduction harness for 'On Main-memory Flushing in "
            "Microblogs Data Management Systems' (ICDE 2016)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list figures and scale presets").set_defaults(
        fn=_cmd_list
    )

    run = sub.add_parser("run", help="run a figure experiment")
    run.add_argument(
        "--figure",
        default="all",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="which paper figure to regenerate",
    )
    run.add_argument(
        "--scale", default=SMALL.name, choices=sorted(PRESETS), help="fidelity preset"
    )
    run.add_argument("--seed", type=int, default=42, help="workload seed")
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for the trial grid (default: REPRO_JOBS env "
            "or 1; negative = all cores); results match a serial run"
        ),
    )
    run.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "hash-partition each trial's system over N shards (total "
            "memory budget split N ways; 1 = the paper's single partition)"
        ),
    )
    run.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "stream instrumentation events of the run to this JSONL file "
            "(works with --jobs: worker metric shards are merged in)"
        ),
    )
    run.add_argument(
        "--disk-cache-bytes",
        type=int,
        default=0,
        metavar="N",
        help=(
            "modelled disk read-cache budget in bytes (0 = off, the "
            "paper's accounting; cache hits skip the seek)"
        ),
    )
    run.add_argument(
        "--disk-elide-empty",
        action="store_true",
        help=(
            "skip disk lookups for keys the archive provably holds no "
            "postings for (never changes answers)"
        ),
    )
    run.set_defaults(fn=_cmd_run)

    bench = sub.add_parser(
        "bench", help="run the performance benchmark suites"
    )
    bench.add_argument(
        "--preset", default="tiny", choices=sorted(PRESETS), help="workload preset"
    )
    bench.add_argument("--seed", type=int, default=42, help="workload seed")
    bench.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes for the sweep wall-clock suite",
    )
    bench.add_argument(
        "--out",
        default="BENCH_PR4.json",
        metavar="PATH",
        help="where to write the benchmark records (JSON)",
    )
    bench.add_argument(
        "--suites",
        nargs="+",
        default=None,
        choices=sorted(ALL_SUITES),
        help="subset of suites to run (default: all)",
    )
    bench.set_defaults(fn=_cmd_bench)

    stats = sub.add_parser(
        "stats", help="run a tiny workload and dump the metrics registry"
    )
    stats.add_argument(
        "--policy",
        default="kflushing",
        choices=("fifo", "kflushing", "kflushing-mk", "lru"),
        help="flushing policy to exercise",
    )
    stats.add_argument("--records", type=int, default=20_000, help="records to ingest")
    stats.add_argument(
        "--queries", type=int, default=2_000, help="queries interleaved with ingestion"
    )
    stats.add_argument("--k", type=int, default=20, help="top-k answer size")
    stats.add_argument(
        "--capacity-bytes",
        type=int,
        default=2_000_000,
        help="modelled memory budget (small by default so flushes happen)",
    )
    stats.add_argument("--seed", type=int, default=42, help="workload seed")
    stats.add_argument(
        "--shards",
        type=int,
        default=1,
        help="hash-partition the system over N shards (adds shard.<i>.* series)",
    )
    stats.add_argument(
        "--format",
        default="json",
        choices=("json", "prom"),
        help="snapshot format: JSON or Prometheus text exposition",
    )
    stats.add_argument(
        "--out", default=None, metavar="PATH", help="write the snapshot here"
    )
    stats.add_argument(
        "--events-out",
        default=None,
        metavar="PATH",
        help="also stream per-flush/per-query events to this JSONL file",
    )
    stats.add_argument(
        "--disk-cache-bytes",
        type=int,
        default=0,
        metavar="N",
        help=(
            "modelled disk read-cache budget in bytes (0 = off, the "
            "paper's accounting; cache hits skip the seek)"
        ),
    )
    stats.add_argument(
        "--disk-elide-empty",
        action="store_true",
        help=(
            "skip disk lookups for keys the archive provably holds no "
            "postings for (never changes answers)"
        ),
    )
    stats.set_defaults(fn=_cmd_stats)

    sub.add_parser("demo", help="quick FIFO vs kFlushing comparison").set_defaults(
        fn=_cmd_demo
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
