"""Command-line interface: ``repro-microblogs``.

Subcommands
-----------
``list``
    Show the available figure experiments and scale presets.
``run --figure fig7 [--scale small] [--seed 42] [--jobs 4] [--shards 4] [--metrics-out m.jsonl]``
    Run one figure experiment (or ``all``) and print its tables;
    ``--jobs`` fans the figure's trial grid out over worker processes
    (results are identical to a serial run); ``--shards`` hash-partitions
    each trial's system over N shards; ``--disk-cache-bytes`` /
    ``--disk-elide-empty`` enable the modelled disk read cache and
    negative-lookup elision (both off by default — answers never change,
    only disk-lookup counts and simulated latency); ``--pipelined``
    rotates over-budget memtables to background flush workers instead of
    flushing inline; ``--metrics-out`` streams every instrumentation
    event of the run (flush spans, query events, final snapshot) to a
    JSONL file — parallel workers write per-trial metric shards that are
    merged into the same file after the pool drains.
``bench [--preset tiny] [--seed 42] [--jobs 2] [--out BENCH_PR9.json] [--profile]``
    Run the performance benchmark suites (k-filled sampling, digestion
    rate, flush cost, sweep wall-clock, shard scaling, disk tier,
    pipelined ingest stalls, columnar digestion, adaptive-vs-static
    matrix) and write the perf-trajectory JSON (see
    docs/PERFORMANCE.md); ``--profile`` also writes a cProfile
    top-cumulative table beside the JSON.
``stats [--shards 4] [--disk-cache-bytes N] [--disk-elide-empty] [--pipelined]``
    Run a tiny synthetic workload and dump the instrumentation registry
    (flush phase spans, per-mode query counters, disk I/O, per-shard
    gauges when sharded, ingest-stall histogram and pipeline counters
    when pipelined) as JSON or Prometheus-style text; the system's
    invariants are checked before the dump.
``trace metrics.jsonl [--top 5] [--require-miss-causes] [--strict]``
    Offline analysis of an events JSONL (``--metrics-out`` /
    ``--events-out`` output): reconstruct query/flush span trees, print
    the top-N slowest queries with their shard/disk breakdown, flush
    wall-time attribution per phase, the eviction-cause miss table, and
    the count of orphan spans dropped during reconstruction
    (``--strict`` turns orphans into a non-zero exit).
``slo spec.json (--events m.jsonl | --bench BENCH.json | --url http://...) [--check]``
    Evaluate a declarative SLO spec against captured metrics (registry
    snapshots inside an events JSONL), a benchmark-trajectory JSON, or
    a live ops endpoint's ``/snapshot``; exits non-zero on any violated
    objective (``--check`` also fails objectives with no data).
``serve [--port 8080] [--policy kflushing] [--duration 0]``
    Standalone ops-endpoint demo: drive a continuous synthetic workload
    while serving ``/metrics`` (Prometheus), ``/snapshot`` (JSON) and
    ``/healthz`` on the given port.  ``run --serve PORT`` serves the
    same endpoints for the duration of a figure run.
``demo``
    A 30-second end-to-end demo: ingest a synthetic stream under two
    policies and compare their steady-state hit ratios.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.config import SystemConfig
from repro.engine.sharded import build_system
from repro.engine.system import MicroblogSystem
from repro.experiments.bench import ALL_SUITES, run_bench
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.parallel import resolve_jobs
from repro.experiments.report import format_miss_attribution, print_figure
from repro.experiments.scale import PRESETS, SMALL
from repro.obs import (
    Instrumentation,
    JsonlSink,
    MetricsRegistry,
    activated,
    to_json,
    to_prometheus_text,
)
from repro.obs.slo import SLOSpec, evaluate_registry
from repro.obs.traceview import (
    build_traces_report,
    flush_attribution,
    load_events,
    merge_snapshot_events,
    miss_cause_table,
    query_summaries,
)
from repro.workload.queryload import QueryLoad, QueryLoadConfig
from repro.workload.stream import MicroblogStream, StreamConfig

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    print("figures:")
    for name, fn in sorted(ALL_FIGURES.items()):
        doc = (fn.__doc__ or "").strip().splitlines()
        print(f"  {name:7s} {doc[0] if doc else ''}")
    print("scale presets:", ", ".join(sorted(PRESETS)))
    return 0


def _figure_kwargs(
    fn,
    seed: int,
    jobs: int,
    shards: int = 1,
    disk_cache_bytes: int = 0,
    disk_elide_empty: bool = False,
    pipelined: bool = False,
    columnar: bool = False,
    adaptive: bool = False,
    slo_spec: Optional[str] = None,
    flight_recorder_events: int = 0,
    flight_recorder_path: Optional[str] = None,
) -> dict:
    """Keyword arguments for one figure function.

    ``jobs``, ``shards``, the disk-tier gates, and ``pipelined`` are
    forwarded only to figures whose signatures support them (the
    extension experiments, for instance, run serially; fig5 is an
    engine-level experiment with no sharded variant).
    """
    kwargs = {"seed": seed}
    params = inspect.signature(fn).parameters
    if jobs > 1 and "jobs" in params:
        kwargs["jobs"] = jobs
    if shards > 1 and "shards" in params:
        kwargs["shards"] = shards
    if disk_cache_bytes > 0 and "disk_cache_bytes" in params:
        kwargs["disk_cache_bytes"] = disk_cache_bytes
    if disk_elide_empty and "disk_elide_empty" in params:
        kwargs["disk_elide_empty"] = disk_elide_empty
    if pipelined and "pipelined" in params:
        kwargs["pipelined"] = pipelined
    if columnar and "columnar" in params:
        kwargs["columnar"] = columnar
    if adaptive and "adaptive" in params:
        kwargs["adaptive"] = adaptive
    if slo_spec and "slo_spec" in params:
        kwargs["slo_spec"] = slo_spec
    if flight_recorder_events > 0 and "flight_recorder_events" in params:
        kwargs["flight_recorder_events"] = flight_recorder_events
        if flight_recorder_path and "flight_recorder_path" in params:
            kwargs["flight_recorder_path"] = flight_recorder_path
    return kwargs


def _print_slo_report(report: dict) -> int:
    """Render a one-shot SLO evaluation; returns the violation count."""
    violations = 0
    print("-- SLO report --")
    for obj in report["objectives"]:
        if obj["no_data"]:
            status, shown = "NO DATA", "-"
        elif obj["ok"]:
            status, shown = "ok", f"{obj['value']:g}"
        else:
            status, shown = "VIOLATED", f"{obj['value']:g}"
            violations += 1
        print(
            f"  {status:9s} {obj['name']}: {obj['metric']} {obj['op']} "
            f"{obj['threshold']:g} (observed {shown})"
        )
    return violations


def _cmd_run(args: argparse.Namespace) -> int:
    preset = PRESETS[args.scale]
    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    obs: Optional[Instrumentation] = None
    jobs = resolve_jobs(args.jobs)
    slo_spec: Optional[SLOSpec] = None
    if args.slo:
        # Fail fast: a malformed spec should die before hours of trials.
        slo_spec = SLOSpec.parse(args.slo)
    if args.metrics_out:
        # Parallel workers write per-trial metric shards that run_trials
        # merges back into this sink's file, so --jobs stays effective.
        # Metrics-collecting runs get the full observability surface:
        # trace trees and eviction-cause miss attribution.
        obs = Instrumentation(
            sink=JsonlSink(args.metrics_out), tracing=True, attribution=True
        )
    elif slo_spec is not None:
        # The end-of-run SLO verdict needs every system of the run on one
        # shared registry even when no events file was requested.
        obs = Instrumentation(attribution=True)
    server = None
    if args.serve is not None:
        from repro.obs import OpsServer

        serve_registry = obs.registry if obs is not None else MetricsRegistry()
        if obs is None:
            # Figures must still share one registry so /metrics has data.
            obs = Instrumentation(registry=serve_registry)
        slo_provider = None
        if slo_spec is not None:
            spec = slo_spec

            def slo_provider() -> dict:
                return evaluate_registry(spec, serve_registry)

        server = OpsServer(
            serve_registry, port=args.serve, slo_provider=slo_provider
        ).start()
        endpoints = "/metrics /snapshot /healthz" + (
            " /slo" if slo_provider is not None else ""
        )
        print(f"[ops endpoint live at {server.url} — {endpoints}]")
    exit_code = 0
    try:
        for name in names:
            fn = ALL_FIGURES[name]
            kwargs = _figure_kwargs(
                fn,
                args.seed,
                jobs,
                args.shards,
                disk_cache_bytes=args.disk_cache_bytes,
                disk_elide_empty=args.disk_elide_empty,
                pipelined=args.pipelined,
                columnar=args.columnar,
                adaptive=args.adaptive,
                slo_spec=args.slo,
                flight_recorder_events=args.flight_recorder,
                flight_recorder_path=args.flight_recorder_dump,
            )
            start = time.perf_counter()
            if obs is not None:
                # Every system built inside the figure shares this registry
                # and streams its events to the JSONL sink.
                with activated(obs):
                    figure = fn(preset, **kwargs)
            else:
                figure = fn(preset, **kwargs)
            elapsed = time.perf_counter() - start
            print_figure(figure)
            print(f"[{name} completed in {elapsed:.1f}s at scale={preset.name}]\n")
        if obs is not None and args.metrics_out:
            # Parallel trials ship their registries as trial_snapshot
            # events inside the merged file; fold them into the parent
            # registry so the run snapshot (and the miss table) covers
            # worker trials too.  Serial runs shared the registry
            # directly and left no trial_snapshot events, so this no-ops.
            if Path(args.metrics_out).exists():
                merge_snapshot_events(
                    args.metrics_out, obs.registry, types=("trial_snapshot",)
                )
            causes = obs.registry.counter_values("query.miss.cause.")
            if causes:
                print(format_miss_attribution(causes))
                print()
            obs.event("run_snapshot", figures=names, metrics=obs.registry.snapshot())
            obs.close()
            print(f"[metrics written to {args.metrics_out}]")
        if slo_spec is not None and obs is not None:
            # One-shot verdict over the whole run (the per-system
            # SLOTrackers already ticked at flush boundaries; this is the
            # CI-facing aggregate over the shared registry).
            report = evaluate_registry(slo_spec, obs.registry)
            violations = _print_slo_report(report)
            if violations:
                print(f"[slo: {violations} objective(s) violated]")
                exit_code = 1
            else:
                print("[slo: all objectives met]")
    finally:
        if server is not None:
            server.stop()
    return exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    records = run_bench(
        preset=args.preset,
        seed=args.seed,
        out=args.out,
        jobs=resolve_jobs(args.jobs),
        suites=args.suites,
        profile=args.profile,
    )
    elapsed = time.perf_counter() - start
    for record in records:
        print(
            f"  {record.metric:32s} {record.policy:13s} "
            f"{record.value:12.2f} {record.unit}"
        )
    print(f"[{len(records)} measurements written to {args.out} in {elapsed:.1f}s]")
    if args.profile:
        profile_path = Path(args.out).with_suffix(".profile.txt")
        print(f"[cProfile top-cumulative table written to {profile_path}]")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Offline analysis of an events JSONL: span trees + attributions."""
    events = load_events(args.path)
    report = build_traces_report(events)
    traces = report.traces
    print(f"[{args.path}: {len(events)} events, {len(traces)} complete traces]")
    print(f"[dropped_orphans: {report.dropped_orphans}]")

    queries = query_summaries(traces, top=args.top)
    print(f"\n-- Top {min(args.top, len(queries))} slowest query traces --")
    if not queries:
        print("(no query traces — was the file produced with tracing on?)")
    for summary in queries:
        outcome = "hit" if summary["hit"] else f"MISS({summary['miss_cause'] or '?'})"
        print(
            f"  {summary['trace']:>12s}  {summary['seconds'] * 1e6:9.1f}us  "
            f"mode={summary['mode'] or '?':6s} {outcome:24s} "
            f"disk_lookups={summary['disk_lookups']}  spans={summary['spans']}"
        )
        for child in summary["children"]:
            where = "" if child["shard"] is None else f" shard={child['shard']}"
            cache = "" if child["cache"] is None else f" cache={child['cache']}"
            print(
                f"      {child['name']:22s} {child['seconds'] * 1e6:9.1f}us"
                f"{where}{cache}"
            )

    flush = flush_attribution(traces)
    print(
        f"\n-- Flush wall-time attribution "
        f"({flush['flush_traces']} flush traces, "
        f"{flush['total_seconds'] * 1e3:.2f}ms total) --"
    )
    for phase, seconds in flush["per_phase_seconds"].items():
        share = seconds / flush["total_seconds"] if flush["total_seconds"] else 0.0
        print(f"  {phase:20s} {seconds * 1e3:9.3f}ms  {share:6.1%}")
    if not flush["per_phase_seconds"]:
        print("  (no phase spans — FIFO/LRU flushes have no phases)")

    causes = miss_cause_table(events)
    print()
    print(format_miss_attribution(causes))
    if args.require_miss_causes and not causes:
        print("error: no miss causes found (expected a non-empty table)")
        return 1
    if args.strict and report.dropped_orphans:
        print(
            f"error: {report.dropped_orphans} orphan span(s) could not be "
            "attached to any trace (truncated or corrupt events file)"
        )
        return 1
    return 0


def _slo_registry_from_bench(path: str) -> MetricsRegistry:
    """Pseudo-registry over a BENCH_*.json file.

    Every record becomes a gauge ``bench.<metric>.<policy>``; the first
    record seen for each metric also sets the bare ``bench.<metric>``
    gauge, so specs can target a metric without naming a policy.
    """
    registry = MetricsRegistry()
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a JSON list of bench records")
    seen: set = set()
    for record in payload:
        metric = record.get("metric")
        policy = record.get("policy")
        value = record.get("value")
        if not metric or value is None:
            continue
        if policy:
            registry.gauge(f"bench.{metric}.{policy}").set(float(value))
        if metric not in seen:
            seen.add(metric)
            registry.gauge(f"bench.{metric}").set(float(value))
    return registry


def _slo_registry_from_url(url: str) -> MetricsRegistry:
    """Registry built from a live ops endpoint's ``/snapshot``."""
    from urllib.request import urlopen

    base = url.rstrip("/")
    if not base.endswith("/snapshot"):
        base = f"{base}/snapshot"
    with urlopen(base, timeout=10.0) as response:
        payload = json.loads(response.read().decode("utf-8"))
    registry = MetricsRegistry()
    registry.merge(payload)
    return registry


def _cmd_slo(args: argparse.Namespace) -> int:
    """Evaluate an SLO spec against captured or live metrics."""
    sources = [name for name in ("events", "bench", "url") if getattr(args, name)]
    if len(sources) != 1:
        print("error: provide exactly one of --events, --bench, --url")
        return 2
    try:
        spec = SLOSpec.parse(args.spec)
    except (ValueError, OSError) as exc:
        print(f"error: invalid SLO spec: {exc}")
        return 2
    try:
        if args.events:
            registry = merge_snapshot_events(args.events)
        elif args.bench:
            registry = _slo_registry_from_bench(args.bench)
        else:
            registry = _slo_registry_from_url(args.url)
    except (OSError, ValueError) as exc:
        print(f"error: could not load metrics: {exc}")
        return 2
    report = evaluate_registry(spec, registry)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        violations = sum(
            1 for obj in report["objectives"] if not obj["no_data"] and not obj["ok"]
        )
    else:
        violations = _print_slo_report(report)
    no_data = sum(1 for obj in report["objectives"] if obj["no_data"])
    if violations:
        print(f"[slo: {violations} objective(s) violated]")
        return 1
    if no_data:
        print(f"[slo: {no_data} objective(s) had no data]")
        if args.check:
            # --check is the CI gate: an objective that silently never
            # measured anything must fail loudly, not pass vacuously.
            return 1
        return 0
    print("[slo: all objectives met]")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Standalone ops-endpoint demo over a continuous workload."""
    from repro.obs import OpsServer

    obs = Instrumentation(attribution=True)
    config = SystemConfig(
        policy=args.policy,
        k=20,
        memory_capacity_bytes=2_000_000,
        and_scan_depth=500,
        and_disk_limit=500,
        shards=args.shards,
        slo_spec=args.slo,
        flight_recorder_events=args.flight_recorder,
    )
    system = build_system(config, obs=obs)
    server = OpsServer(
        system.obs.registry,
        port=args.port,
        snapshot_provider=system.snapshot,
        slo_provider=system.slo_state if args.slo else None,
    ).start()
    endpoints = "/metrics /snapshot /healthz" + (" /slo" if args.slo else "")
    print(f"[serving {endpoints} at {server.url}]")
    if args.duration > 0:
        print(f"[driving a {args.policy} workload for {args.duration:.0f}s ...]")
    else:
        print(f"[driving a {args.policy} workload until interrupted (Ctrl-C) ...]")
    stream = MicroblogStream(
        StreamConfig(seed=args.seed, vocabulary_size=5_000, with_locations=False)
    )
    queries = QueryLoad(QueryLoadConfig(seed=args.seed + 1, mode="correlated"), stream)
    deadline = time.monotonic() + args.duration if args.duration > 0 else None
    try:
        while deadline is None or time.monotonic() < deadline:
            for record in stream.take(500):
                system.ingest(record)
            for _ in range(50):
                system.search(queries.next_query())
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print(
        f"[served {args.policy}: hit ratio {100 * system.hit_ratio():.1f}%, "
        f"{len(system.flush_reports())} flushes]"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Tiny fig1-style run: ingest + interleaved queries, dump metrics."""
    obs = Instrumentation(
        sink=JsonlSink(args.events_out) if args.events_out else None,
        # Events-producing runs also get trace trees; attribution is
        # always on here so the dump includes the miss-cause counters.
        tracing=bool(args.events_out),
        attribution=True,
    )
    config = SystemConfig(
        policy=args.policy,
        k=args.k,
        memory_capacity_bytes=args.capacity_bytes,
        and_scan_depth=500,
        and_disk_limit=500,
        shards=args.shards,
        disk_cache_bytes=args.disk_cache_bytes,
        disk_elide_empty=args.disk_elide_empty,
        pipelined_ingest=args.pipelined,
        flush_workers=args.flush_workers,
        columnar=args.columnar,
        columnar_cost=args.columnar_cost,
        adaptive=args.adaptive,
    )
    system = build_system(config, obs=obs)
    stream = MicroblogStream(
        StreamConfig(seed=args.seed, vocabulary_size=5_000, with_locations=False)
    )
    queries = QueryLoad(QueryLoadConfig(seed=args.seed + 1, mode="correlated"), stream)
    per_query = max(1, args.records // max(1, args.queries))
    ingested = 0
    for record in stream.take(args.records):
        system.ingest(record)
        ingested += 1
        if ingested % per_query == 0:
            system.search(queries.next_query())
    # Fold any in-flight pipelined flush back in before checking.
    system.quiesce()
    # Invariant check through the facade: per-engine structure plus, when
    # sharded, the router's key-ownership invariant on every shard.
    system.check_integrity()
    # snapshot() refreshes the per-shard gauges into the registry, so the
    # rendered dump includes shard.<i>.* series for a sharded run; it also
    # carries the per-key hotness tables when query-heat tracking is on.
    snap = system.snapshot()
    system.close()
    obs.close()
    if args.format == "prom":
        rendered = to_prometheus_text(obs.registry)
    else:
        # Stdout must stay a single JSON document (scripts parse it), so
        # the hot-key tables ride inside the payload, not beside it.
        payload = json.loads(to_json(obs.registry))
        if snap.get("hot_keys"):
            payload["hot_keys"] = snap["hot_keys"]
        rendered = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(rendered + "\n", encoding="utf-8")
        print(f"[metrics snapshot written to {args.out}]")
    else:
        print(rendered)
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    print("Comparing FIFO and kFlushing on the same synthetic stream ...")
    for policy in ("fifo", "kflushing"):
        config = SystemConfig(
            policy=policy,
            k=20,
            memory_capacity_bytes=2_000_000,
            and_scan_depth=500,
            and_disk_limit=500,
        )
        system = MicroblogSystem(config)
        stream = MicroblogStream(
            StreamConfig(seed=7, vocabulary_size=5_000, with_locations=False)
        )
        queries = QueryLoad(QueryLoadConfig(seed=8, mode="correlated"), stream)
        system.ingest_many(stream.take(40_000))
        from repro.engine.stats import QueryStats

        system.stats.queries = QueryStats()
        for record in stream.take(10_000):
            system.ingest(record)
            system.search(queries.next_query())
        print(
            f"  {policy:10s} hit ratio {100 * system.hit_ratio():5.1f}%  "
            f"k-filled keys {system.k_filled_count():5d}  "
            f"flushes {len(system.flush_reports())}"
        )
    print("kFlushing should answer noticeably more queries from memory.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-microblogs",
        description=(
            "Reproduction harness for 'On Main-memory Flushing in "
            "Microblogs Data Management Systems' (ICDE 2016)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list figures and scale presets").set_defaults(
        fn=_cmd_list
    )

    run = sub.add_parser("run", help="run a figure experiment")
    run.add_argument(
        "--figure",
        default="all",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="which paper figure to regenerate",
    )
    run.add_argument(
        "--scale", default=SMALL.name, choices=sorted(PRESETS), help="fidelity preset"
    )
    run.add_argument("--seed", type=int, default=42, help="workload seed")
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for the trial grid (default: REPRO_JOBS env "
            "or 1; negative = all cores); results match a serial run"
        ),
    )
    run.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "hash-partition each trial's system over N shards (total "
            "memory budget split N ways; 1 = the paper's single partition)"
        ),
    )
    run.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "stream instrumentation events of the run to this JSONL file "
            "(works with --jobs: worker metric shards are merged in)"
        ),
    )
    run.add_argument(
        "--disk-cache-bytes",
        type=int,
        default=0,
        metavar="N",
        help=(
            "modelled disk read-cache budget in bytes (0 = off, the "
            "paper's accounting; cache hits skip the seek)"
        ),
    )
    run.add_argument(
        "--disk-elide-empty",
        action="store_true",
        help=(
            "skip disk lookups for keys the archive provably holds no "
            "postings for (never changes answers)"
        ),
    )
    run.add_argument(
        "--pipelined",
        action="store_true",
        help=(
            "pipelined ingest: rotate over-budget memtables to background "
            "flush workers instead of flushing inline (answers unchanged; "
            "removes the per-flush ingest stall)"
        ),
    )
    run.add_argument(
        "--columnar",
        action="store_true",
        help=(
            "run the memory tier on the array-backed columnar layout "
            "with interned key ids (answers identical to the legacy "
            "object layout; digestion is faster)"
        ),
    )
    run.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "adaptive kFlushing: a deterministic feedback controller "
            "retunes per-key retention depth, shard budget slices and "
            "phase-escalation slack at flush boundaries (fig1 only; "
            "off = the paper's static tuning)"
        ),
    )
    run.add_argument(
        "--serve",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve /metrics, /snapshot and /healthz on this port for the "
            "duration of the run (0 = OS-assigned)"
        ),
    )
    run.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help=(
            "SLO spec (JSON file path or inline JSON object): every "
            "system of the run tracks its error budgets at flush "
            "boundaries, and the run exits non-zero when the aggregate "
            "registry violates any objective; with --serve also turns "
            "on /slo and breach-aware /healthz"
        ),
    )
    run.add_argument(
        "--flight-recorder",
        type=int,
        default=0,
        metavar="N",
        help=(
            "keep the last N instrumentation events in a flight-recorder "
            "ring per system; an SLO breach dumps them plus the registry "
            "and SLO state as JSONL (0 = off, zero overhead)"
        ),
    )
    run.add_argument(
        "--flight-recorder-dump",
        default=None,
        metavar="PATH",
        help=(
            "where breach dumps are written (default: "
            "flight_recorder_dump.jsonl in the working directory)"
        ),
    )
    run.set_defaults(fn=_cmd_run)

    bench = sub.add_parser(
        "bench", help="run the performance benchmark suites"
    )
    bench.add_argument(
        "--preset", default="tiny", choices=sorted(PRESETS), help="workload preset"
    )
    bench.add_argument("--seed", type=int, default=42, help="workload seed")
    bench.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes for the sweep wall-clock suite",
    )
    bench.add_argument(
        "--out",
        default="BENCH_PR10.json",
        metavar="PATH",
        help="where to write the benchmark records (JSON)",
    )
    bench.add_argument(
        "--suites",
        nargs="+",
        default=None,
        choices=sorted(ALL_SUITES),
        help="subset of suites to run (default: all)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the suites under cProfile and write the top cumulative-"
            "time functions to <out-stem>.profile.txt (profiled timings "
            "carry tracer overhead; use for hot-spot hunting only)"
        ),
    )
    bench.set_defaults(fn=_cmd_bench)

    stats = sub.add_parser(
        "stats", help="run a tiny workload and dump the metrics registry"
    )
    stats.add_argument(
        "--policy",
        default="kflushing",
        choices=("fifo", "kflushing", "kflushing-mk", "lru"),
        help="flushing policy to exercise",
    )
    stats.add_argument("--records", type=int, default=20_000, help="records to ingest")
    stats.add_argument(
        "--queries", type=int, default=2_000, help="queries interleaved with ingestion"
    )
    stats.add_argument("--k", type=int, default=20, help="top-k answer size")
    stats.add_argument(
        "--capacity-bytes",
        type=int,
        default=2_000_000,
        help="modelled memory budget (small by default so flushes happen)",
    )
    stats.add_argument("--seed", type=int, default=42, help="workload seed")
    stats.add_argument(
        "--shards",
        type=int,
        default=1,
        help="hash-partition the system over N shards (adds shard.<i>.* series)",
    )
    stats.add_argument(
        "--format",
        default="json",
        choices=("json", "prom"),
        help="snapshot format: JSON or Prometheus text exposition",
    )
    stats.add_argument(
        "--out", default=None, metavar="PATH", help="write the snapshot here"
    )
    stats.add_argument(
        "--events-out",
        default=None,
        metavar="PATH",
        help="also stream per-flush/per-query events to this JSONL file",
    )
    stats.add_argument(
        "--disk-cache-bytes",
        type=int,
        default=0,
        metavar="N",
        help=(
            "modelled disk read-cache budget in bytes (0 = off, the "
            "paper's accounting; cache hits skip the seek)"
        ),
    )
    stats.add_argument(
        "--disk-elide-empty",
        action="store_true",
        help=(
            "skip disk lookups for keys the archive provably holds no "
            "postings for (never changes answers)"
        ),
    )
    stats.add_argument(
        "--pipelined",
        action="store_true",
        help=(
            "pipelined ingest: background flush workers + memtable "
            "rotation (adds ingest.stall_seconds / pipeline.* series)"
        ),
    )
    stats.add_argument(
        "--flush-workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "flush worker threads under --pipelined (default: one per "
            "shard; 0 = deterministic inline drain)"
        ),
    )
    stats.add_argument(
        "--columnar",
        action="store_true",
        help=(
            "columnar memory tier: array-backed posting columns and "
            "interned key ids (adds memory.columnar.* gauges)"
        ),
    )
    stats.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "adaptive kFlushing controller: per-key retention depth, "
            "shard budget slices and escalation slack retuned at flush "
            "boundaries (adds adaptive.* series and hot_keys tables)"
        ),
    )
    stats.add_argument(
        "--columnar-cost",
        action="store_true",
        help=(
            "budget memory under the columnar byte layout (24-byte "
            "postings) instead of the legacy object layout; requires "
            "--columnar"
        ),
    )
    stats.set_defaults(fn=_cmd_stats)

    trace = sub.add_parser(
        "trace", help="offline span-tree / attribution analysis of an events JSONL"
    )
    trace.add_argument("path", help="events JSONL (--metrics-out / --events-out output)")
    trace.add_argument(
        "--top", type=int, default=5, help="how many slowest query traces to show"
    )
    trace.add_argument(
        "--require-miss-causes",
        action="store_true",
        help="exit non-zero when the miss-cause table is empty (CI gate)",
    )
    trace.add_argument(
        "--strict",
        action="store_true",
        help=(
            "exit non-zero when any span could not be attached to a "
            "complete trace (dropped_orphans > 0; CI gate for truncated "
            "event files)"
        ),
    )
    trace.set_defaults(fn=_cmd_trace)

    slo = sub.add_parser(
        "slo", help="evaluate an SLO spec against captured or live metrics"
    )
    slo.add_argument(
        "spec", help="SLO spec: JSON file path or inline JSON object"
    )
    slo.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help=(
            "evaluate against the merged registry snapshots of an events "
            "JSONL (--metrics-out / --events-out output)"
        ),
    )
    slo.add_argument(
        "--bench",
        default=None,
        metavar="PATH",
        help=(
            "evaluate against a BENCH_*.json file (records become "
            "bench.<metric>.<policy> and bench.<metric> gauges)"
        ),
    )
    slo.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="evaluate against a live ops endpoint's /snapshot",
    )
    slo.add_argument(
        "--check",
        action="store_true",
        help=(
            "CI gate: also exit non-zero when any objective had no data "
            "(a spec that measures nothing must not pass vacuously)"
        ),
    )
    slo.add_argument(
        "--json",
        action="store_true",
        help="print the evaluation as JSON instead of a table",
    )
    slo.set_defaults(fn=_cmd_slo)

    serve = sub.add_parser(
        "serve", help="live ops endpoint over a continuous demo workload"
    )
    serve.add_argument(
        "--port", type=int, default=8080, help="HTTP port (0 = OS-assigned)"
    )
    serve.add_argument(
        "--policy",
        default="kflushing",
        choices=("fifo", "kflushing", "kflushing-mk", "lru"),
        help="flushing policy to drive",
    )
    serve.add_argument(
        "--shards", type=int, default=1, help="hash-partition over N shards"
    )
    serve.add_argument("--seed", type=int, default=42, help="workload seed")
    serve.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="seconds to run before exiting (0 = until interrupted)",
    )
    serve.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help=(
            "SLO spec (JSON file or inline JSON): the system tracks "
            "error budgets at flush boundaries and serves /slo; /healthz "
            "turns 503 while any budget is exhausted"
        ),
    )
    serve.add_argument(
        "--flight-recorder",
        type=int,
        default=0,
        metavar="N",
        help=(
            "flight-recorder ring of the last N events; SLO breaches "
            "dump it as JSONL (0 = off)"
        ),
    )
    serve.set_defaults(fn=_cmd_serve)

    sub.add_parser("demo", help="quick FIFO vs kFlushing comparison").set_defaults(
        fn=_cmd_demo
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
