"""System configuration: one validated object describing a whole system.

A :class:`SystemConfig` captures the paper's experimental knobs — policy,
search attribute, ranking function, ``k``, memory budget, and flushing
budget ``B`` — together with the byte-cost and disk-cost models.  The
:class:`~repro.engine.system.MicroblogSystem` is built from one of these.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

from repro.core import POLICY_NAMES
from repro.errors import ConfigurationError
from repro.model.attributes import AttributeExtractor, attribute_from_name
from repro.model.ranking import RankingFunction, ranking_from_name
from repro.storage.disk import DiskCostModel
from repro.storage.memory_model import MemoryModel

__all__ = ["SystemConfig"]

#: Default memory budget: the paper's 30 GB at the repo's 1 GB -> 1 MB
#: simulation scale (see ``repro.experiments.scale``).
DEFAULT_CAPACITY_BYTES = 30_000_000


@dataclass(frozen=True)
class SystemConfig:
    """Validated configuration for one microblogs data-management system.

    Attributes
    ----------
    policy:
        Flushing policy name: ``"kflushing"``, ``"kflushing-mk"``,
        ``"fifo"``, or ``"lru"``.
    attribute:
        Search attribute: ``"keyword"`` (default), ``"user"``,
        ``"spatial"``, or a custom :class:`AttributeExtractor`.
    ranking:
        Ranking function: ``"temporal"`` (default), ``"popularity"``, or a
        custom :class:`RankingFunction`.
    k:
        Top-k answer size (the paper's default is 20).
    memory_capacity_bytes:
        Modelled main-memory budget; flushing triggers when the data
        (records + index) reaches this.
    flush_fraction:
        The flushing budget B as a fraction of memory contents
        (paper default 10%).
    memory_model / disk_cost:
        Byte-cost and I/O-cost models.
    tile_side_degrees:
        Grid tile side used when ``attribute="spatial"``.
    """

    policy: str = "kflushing"
    attribute: Union[str, AttributeExtractor] = "keyword"
    ranking: Union[str, RankingFunction] = "temporal"
    k: int = 20
    memory_capacity_bytes: int = DEFAULT_CAPACITY_BYTES
    flush_fraction: float = 0.10
    memory_model: MemoryModel = field(default_factory=MemoryModel)
    disk_cost: DiskCostModel = field(default_factory=DiskCostModel)
    tile_side_degrees: float = 0.03
    #: Optional caps on AND-query evaluation depth (per-key in-memory scan
    #: and per-key disk read).  None = unbounded, exact answers.  The
    #: experiment harness bounds these the way a production system would;
    #: capped answers are flagged via ``QueryResult.provably_exact``.
    and_scan_depth: Union[int, None] = None
    and_disk_limit: Union[int, None] = None

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            valid = ", ".join(POLICY_NAMES)
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; expected one of: {valid}"
            )
        if self.k <= 0:
            raise ConfigurationError(f"k must be positive, got {self.k}")
        if self.memory_capacity_bytes <= 0:
            raise ConfigurationError(
                f"memory_capacity_bytes must be positive, got {self.memory_capacity_bytes}"
            )
        if not 0.0 < self.flush_fraction <= 1.0:
            raise ConfigurationError(
                f"flush_fraction must be in (0, 1], got {self.flush_fraction}"
            )
        if self.tile_side_degrees <= 0:
            raise ConfigurationError(
                f"tile_side_degrees must be positive, got {self.tile_side_degrees}"
            )
        for name in ("and_scan_depth", "and_disk_limit"):
            value = getattr(self, name)
            if value is not None and value < self.k:
                raise ConfigurationError(
                    f"{name} must be None or >= k, got {value} (k={self.k})"
                )
        # Fail fast on unknown names rather than at system build time.
        self.build_attribute()
        self.build_ranking()

    def build_attribute(self) -> AttributeExtractor:
        """Resolve the configured attribute to an extractor instance."""
        if isinstance(self.attribute, AttributeExtractor):
            return self.attribute
        if self.attribute == "spatial":
            return attribute_from_name("spatial", tile_side_degrees=self.tile_side_degrees)
        return attribute_from_name(self.attribute)

    def build_ranking(self) -> RankingFunction:
        """Resolve the configured ranking to a function instance."""
        if isinstance(self.ranking, RankingFunction):
            return self.ranking
        return ranking_from_name(self.ranking)

    def with_overrides(self, **changes) -> "SystemConfig":
        """Return a copy with ``changes`` applied (sweep helper)."""
        return replace(self, **changes)
