"""System configuration: one validated object describing a whole system.

A :class:`SystemConfig` captures the paper's experimental knobs — policy,
search attribute, ranking function, ``k``, memory budget, and flushing
budget ``B`` — together with the byte-cost and disk-cost models.  The
:class:`~repro.engine.system.MicroblogSystem` is built from one of these.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

from repro.core import policy_names
from repro.core.adaptive import AdaptiveSettings
from repro.core.eviction_ledger import EvictionLedger
from repro.errors import ConfigurationError
from repro.model.attributes import AttributeExtractor, attribute_from_name
from repro.model.ranking import RankingFunction, ranking_from_name
from repro.storage.disk import DiskCostModel
from repro.storage.memory_model import MemoryModel

__all__ = ["SystemConfig"]

#: Default memory budget: the paper's 30 GB at the repo's 1 GB -> 1 MB
#: simulation scale (see ``repro.experiments.scale``).
DEFAULT_CAPACITY_BYTES = 30_000_000


@dataclass(frozen=True)
class SystemConfig:
    """Validated configuration for one microblogs data-management system.

    Attributes
    ----------
    policy:
        Flushing policy name: ``"kflushing"``, ``"kflushing-mk"``,
        ``"fifo"``, or ``"lru"``.
    attribute:
        Search attribute: ``"keyword"`` (default), ``"user"``,
        ``"spatial"``, or a custom :class:`AttributeExtractor`.
    ranking:
        Ranking function: ``"temporal"`` (default), ``"popularity"``, or a
        custom :class:`RankingFunction`.
    k:
        Top-k answer size (the paper's default is 20).
    memory_capacity_bytes:
        Modelled main-memory budget; flushing triggers when the data
        (records + index) reaches this.
    flush_fraction:
        The flushing budget B as a fraction of memory contents
        (paper default 10%).
    memory_model / disk_cost:
        Byte-cost and I/O-cost models.
    tile_side_degrees:
        Grid tile side used when ``attribute="spatial"``.
    shards:
        Number of hash-partitioned shards the system is split into
        (1 = the paper's single-partition system).  Each shard owns its
        own memory engine, budget, flush cycle, and disk-archive
        namespace; see ``docs/ARCHITECTURE.md``.
    shard_capacity_bytes:
        Optional per-shard memory budgets (one entry per shard).  When
        None, ``memory_capacity_bytes`` is split evenly across shards
        (the first ``memory_capacity_bytes % shards`` shards absorb the
        remainder byte each).
    disk_cache_bytes:
        Byte budget of the modelled disk read cache (0 = off, the
        default: the paper's cost accounting, every lookup pays a seek).
        Sharded systems split the budget across shards the same way the
        memory budget is split (see :meth:`disk_cache_capacity`).
    disk_elide_empty:
        When True, the query executor skips disk lookups for keys the
        archive provably holds no postings for (counted under
        ``disk.lookups_elided``).  Off by default; never changes
        answers, only disk-lookup counts and simulated latency.
    pipelined_ingest:
        When True, capacity crossings *rotate* the over-budget engine
        aside as an immutable memtable and hand it to a background
        flush worker instead of flushing inline — digestion continues
        into a fresh active overlay and blocks only on backpressure
        (see ``docs/ARCHITECTURE.md``, "Pipelined ingest").  Off by
        default: the synchronous flush path is untouched.
    flush_workers:
        Worker threads draining rotated memtables (pipelined mode
        only).  None = one per shard; 0 = inline drain — the rotation
        machinery runs but every flush completes synchronously on the
        ingest thread, which is deterministic and bit-identical to the
        synchronous path (the differential-test mode).
    flush_queue_limit:
        Bound of the rotated-memtable worker queue; a rotation that
        finds the queue full blocks the ingest path (recorded as an
        ``ingest.stall_seconds`` sample).  None = max(shards, workers).
    pipelined_overlay_fraction:
        Fraction of a shard's budget the active overlay may reach while
        its frozen sibling is still being flushed before ingest blocks
        on the flush completing.  None = ``flush_fraction`` (transient
        overshoot is bounded by one flush budget B).
    columnar:
        Store the hot memory tier as array-backed posting columns with
        interned key ids (see ``docs/ARCHITECTURE.md``, "Columnar
        memory tier").  Off by default; answers are identical either
        way, digestion is a multiple faster with it on.
    columnar_cost:
        Budget memory under the columnar byte layout instead of the
        legacy object layout.  Requires ``columnar=True``; changes
        flush cadence, so the differential tests leave it off.
    """

    policy: str = "kflushing"
    attribute: Union[str, AttributeExtractor] = "keyword"
    ranking: Union[str, RankingFunction] = "temporal"
    k: int = 20
    memory_capacity_bytes: int = DEFAULT_CAPACITY_BYTES
    flush_fraction: float = 0.10
    memory_model: MemoryModel = field(default_factory=MemoryModel)
    disk_cost: DiskCostModel = field(default_factory=DiskCostModel)
    tile_side_degrees: float = 0.03
    #: Optional caps on AND-query evaluation depth (per-key in-memory scan
    #: and per-key disk read).  None = unbounded, exact answers.  The
    #: experiment harness bounds these the way a production system would;
    #: capped answers are flagged via ``QueryResult.provably_exact``.
    and_scan_depth: Union[int, None] = None
    and_disk_limit: Union[int, None] = None
    #: Hash-partitioned shard count (1 = unsharded, the paper's system).
    shards: int = 1
    #: Optional per-shard budgets overriding the even capacity/N split.
    shard_capacity_bytes: Union[tuple[int, ...], None] = None
    #: Modelled disk read-cache budget in bytes (0 = cache off).
    disk_cache_bytes: int = 0
    #: Skip provably-empty disk lookups on the executor miss paths.
    disk_elide_empty: bool = False
    #: Rotate over-budget memtables to background flush workers instead
    #: of flushing inline (off = the paper's synchronous flush path).
    pipelined_ingest: bool = False
    #: Flush worker threads (pipelined mode): None = one per shard,
    #: 0 = deterministic inline drain.
    flush_workers: Union[int, None] = None
    #: Bound of the rotated-memtable queue (None = max(shards, workers)).
    flush_queue_limit: Union[int, None] = None
    #: Active-overlay budget fraction before backpressure (None = B).
    pipelined_overlay_fraction: Union[float, None] = None
    #: Columnar memory tier: array-backed posting columns plus interned
    #: key ids on every hot dict (off = the legacy object layout, kept as
    #: the differential reference — same pattern as ``use_runs``).
    columnar: bool = False
    #: Budget memory under the columnar byte layout (24-byte postings,
    #: array headers per entry).  Separate from ``columnar`` so the
    #: default columnar run keeps legacy budget math — and therefore a
    #: bit-identical flush cadence — for the differential tests.
    columnar_cost: bool = False
    #: Adaptive memory allocation (``repro.core.adaptive``): a
    #: deterministic feedback controller retunes per-key retention
    #: depths, phase-escalation slack, and (sharded) budget slices at
    #: flush-cycle boundaries.  Off by default: the static paper
    #: behaviour is the differential reference.
    adaptive: bool = False
    #: Flush cycles between controller retune decisions (1 = every
    #: flush boundary; retuning is a few bounded sorts, so cheap).
    adaptive_interval: int = 1
    #: Cap on any per-key retention depth (None = ``16 * k``).
    adaptive_k_max: Union[int, None] = None
    #: Hot-set size promoted to deeper retention each retune.
    adaptive_hot_keys: int = 32
    #: Max fraction of the total budget one shard rebalance may move.
    adaptive_shard_step: float = 0.05
    #: Eviction-cause ledger capacity (keys).  Evictions recorded past
    #: it drop the oldest entry and bump ``eviction_ledger.dropped``.
    eviction_ledger_capacity: int = EvictionLedger.DEFAULT_CAPACITY
    #: Declarative SLO objectives (``repro.obs.slo``): a spec dict, a
    #: JSON string, or a path to a spec file.  None (default) = no
    #: tracker is built and flush boundaries pay one None test.
    slo_spec: Union[str, dict, None] = None
    #: Flight-recorder ring-buffer capacity in events (0 = off, the
    #: default).  When on, the system's tracing routes through a
    #: bounded :class:`~repro.obs.recorder.FlightRecorder` that dumps a
    #: JSONL black box on SLO breach or on demand.
    flight_recorder_events: int = 0
    #: Where breach-triggered flight-recorder dumps land (None = the
    #: default ``flight_recorder_dump.jsonl`` in the working directory).
    flight_recorder_path: Union[str, None] = None

    def __post_init__(self) -> None:
        names = policy_names()
        if self.policy not in names:
            valid = ", ".join(names)
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; expected one of: {valid}"
            )
        if self.k <= 0:
            raise ConfigurationError(f"k must be positive, got {self.k}")
        if self.memory_capacity_bytes <= 0:
            raise ConfigurationError(
                f"memory_capacity_bytes must be positive, got {self.memory_capacity_bytes}"
            )
        if not 0.0 < self.flush_fraction <= 1.0:
            raise ConfigurationError(
                f"flush_fraction must be in (0, 1], got {self.flush_fraction}"
            )
        if self.tile_side_degrees <= 0:
            raise ConfigurationError(
                f"tile_side_degrees must be positive, got {self.tile_side_degrees}"
            )
        for name in ("and_scan_depth", "and_disk_limit"):
            value = getattr(self, name)
            if value is not None and value < self.k:
                raise ConfigurationError(
                    f"{name} must be None or >= k, got {value} (k={self.k})"
                )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.shard_capacity_bytes is not None:
            budgets = self.shard_capacity_bytes
            if len(budgets) != self.shards:
                raise ConfigurationError(
                    f"shard_capacity_bytes needs one entry per shard: got "
                    f"{len(budgets)} entries for {self.shards} shards"
                )
            for i, budget in enumerate(budgets):
                if budget <= 0:
                    raise ConfigurationError(
                        f"shard_capacity_bytes[{i}] must be positive, got {budget}"
                    )
        if self.disk_cache_bytes < 0:
            raise ConfigurationError(
                f"disk_cache_bytes must be non-negative, got {self.disk_cache_bytes}"
            )
        if self.flush_workers is not None and self.flush_workers < 0:
            raise ConfigurationError(
                f"flush_workers must be None or >= 0, got {self.flush_workers}"
            )
        if self.flush_queue_limit is not None and self.flush_queue_limit < 1:
            raise ConfigurationError(
                f"flush_queue_limit must be None or >= 1, got {self.flush_queue_limit}"
            )
        if self.pipelined_overlay_fraction is not None and not (
            0.0 < self.pipelined_overlay_fraction <= 1.0
        ):
            raise ConfigurationError(
                f"pipelined_overlay_fraction must be None or in (0, 1], got "
                f"{self.pipelined_overlay_fraction}"
            )
        if self.columnar_cost and not self.columnar:
            raise ConfigurationError(
                "columnar_cost requires columnar=True (it prices the "
                "columnar layout, which is not in use otherwise)"
            )
        if self.adaptive_interval < 1:
            raise ConfigurationError(
                f"adaptive_interval must be >= 1, got {self.adaptive_interval}"
            )
        if self.adaptive_k_max is not None and self.adaptive_k_max < self.k:
            raise ConfigurationError(
                f"adaptive_k_max must be None or >= k, got "
                f"{self.adaptive_k_max} (k={self.k})"
            )
        if self.adaptive_hot_keys < 1:
            raise ConfigurationError(
                f"adaptive_hot_keys must be >= 1, got {self.adaptive_hot_keys}"
            )
        if not 0.0 < self.adaptive_shard_step < 1.0:
            raise ConfigurationError(
                f"adaptive_shard_step must be in (0, 1), got "
                f"{self.adaptive_shard_step}"
            )
        if self.eviction_ledger_capacity < 1:
            raise ConfigurationError(
                f"eviction_ledger_capacity must be >= 1, got "
                f"{self.eviction_ledger_capacity}"
            )
        if self.flight_recorder_events < 0:
            raise ConfigurationError(
                f"flight_recorder_events must be >= 0, got "
                f"{self.flight_recorder_events}"
            )
        # Fail fast on unknown names rather than at system build time.
        # An inline slo_spec dict/JSON string is validated eagerly too;
        # a file path is resolved lazily at system build (the file may
        # be written after the config is constructed).
        if isinstance(self.slo_spec, dict) or (
            isinstance(self.slo_spec, str) and self.slo_spec.strip().startswith("{")
        ):
            try:
                self.build_slo_spec()
            except (ValueError, TypeError) as exc:
                raise ConfigurationError(f"invalid slo_spec: {exc}") from exc
        self.build_attribute()
        self.build_ranking()

    def shard_capacity(self, shard_id: int) -> int:
        """Memory budget of one shard.

        Explicit ``shard_capacity_bytes`` wins; otherwise the global
        budget is split evenly, with the first ``capacity % shards``
        shards absorbing one remainder byte each so the shard budgets
        always sum to ``memory_capacity_bytes``.
        """
        if not 0 <= shard_id < self.shards:
            raise ConfigurationError(
                f"shard_id must be in [0, {self.shards}), got {shard_id}"
            )
        if self.shard_capacity_bytes is not None:
            return self.shard_capacity_bytes[shard_id]
        base, remainder = divmod(self.memory_capacity_bytes, self.shards)
        return base + (1 if shard_id < remainder else 0)

    def disk_cache_capacity(self, shard_id: int) -> int:
        """Disk-cache byte budget of one shard.

        Mirrors :meth:`shard_capacity`: the global ``disk_cache_bytes``
        is split evenly with the first ``budget % shards`` shards
        absorbing one remainder byte each, so per-shard caches always
        sum to the configured total.  Returns 0 when the cache is off.
        """
        if not 0 <= shard_id < self.shards:
            raise ConfigurationError(
                f"shard_id must be in [0, {self.shards}), got {shard_id}"
            )
        base, remainder = divmod(self.disk_cache_bytes, self.shards)
        return base + (1 if shard_id < remainder else 0)

    def resolved_flush_workers(self) -> int:
        """Worker-thread count for pipelined ingest (None = one per
        shard; 0 = the deterministic inline-drain mode)."""
        if self.flush_workers is None:
            return self.shards
        return self.flush_workers

    def resolved_flush_queue_limit(self) -> int:
        """Bound of the rotated-memtable worker queue."""
        if self.flush_queue_limit is not None:
            return self.flush_queue_limit
        return max(self.shards, self.resolved_flush_workers(), 1)

    def overlay_capacity(self, shard_id: int = 0) -> int:
        """Byte budget of one shard's active overlay while its frozen
        sibling is being flushed; exceeding it blocks ingest until the
        background flush completes (backpressure)."""
        fraction = (
            self.pipelined_overlay_fraction
            if self.pipelined_overlay_fraction is not None
            else self.flush_fraction
        )
        return max(1, int(fraction * self.shard_capacity(shard_id)))

    @property
    def total_capacity_bytes(self) -> int:
        """Summed memory budget across all shards."""
        if self.shard_capacity_bytes is not None:
            return sum(self.shard_capacity_bytes)
        return self.memory_capacity_bytes

    def adaptive_settings(self) -> Union[AdaptiveSettings, None]:
        """The controller settings engines are built with, or None when
        ``adaptive`` is off (the legacy static path)."""
        if not self.adaptive:
            return None
        return AdaptiveSettings(
            interval=self.adaptive_interval,
            k_max=self.adaptive_k_max,
            hot_keys=self.adaptive_hot_keys,
            shard_step=self.adaptive_shard_step,
        )

    def build_slo_spec(self):
        """The parsed :class:`~repro.obs.slo.SLOSpec`, or None when
        ``slo_spec`` is unset (the legacy untracked path)."""
        if self.slo_spec is None:
            return None
        from repro.obs.slo import SLOSpec

        return SLOSpec.parse(self.slo_spec)

    def resolved_flight_recorder_path(self) -> str:
        """Where a breach-triggered flight-recorder dump is written."""
        if self.flight_recorder_path is not None:
            return self.flight_recorder_path
        return "flight_recorder_dump.jsonl"

    def effective_memory_model(self) -> MemoryModel:
        """The byte-cost model engines and archives should budget with:
        the configured model, re-priced for the columnar layout when
        ``columnar_cost`` is on."""
        if self.columnar_cost:
            return self.memory_model.columnar_layout()
        return self.memory_model

    def build_attribute(self) -> AttributeExtractor:
        """Resolve the configured attribute to an extractor instance."""
        if isinstance(self.attribute, AttributeExtractor):
            return self.attribute
        if self.attribute == "spatial":
            return attribute_from_name("spatial", tile_side_degrees=self.tile_side_degrees)
        return attribute_from_name(self.attribute)

    def build_ranking(self) -> RankingFunction:
        """Resolve the configured ranking to a function instance."""
        if isinstance(self.ranking, RankingFunction):
            return self.ranking
        return ranking_from_name(self.ranking)

    def with_overrides(self, **changes) -> "SystemConfig":
        """Return a copy with ``changes`` applied (sweep helper)."""
        return replace(self, **changes)
