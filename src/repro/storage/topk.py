"""Shared top-k merge: one implementation for every merge site.

Top-k merging appears at three layers of the system — the query
executor's memory/disk merge, the sharded scatter-gather path, and the
segmented index's cross-segment candidate gather — and they must agree
exactly (same dedup rule, same ordering, same tie behaviour) or the
differential tests between those paths become meaningless.  This module
is the single implementation they all call.

Semantics:

* groups are consumed in the given order; the *first* posting seen for a
  blog id wins (relevant when the same record appears in a memory group
  and a disk group — both carry identical sort keys, so this only
  matters for object identity);
* the merged list is sorted best rank first by
  :attr:`~repro.storage.posting_list.Posting.sort_key`; Python's sort is
  stable, so equal keys keep group order;
* ``k=None`` disables truncation (the segmented index's unbounded
  gather).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.storage.posting_list import Posting

__all__ = ["merge_topk"]


def merge_topk(
    groups: Iterable[Sequence[Posting]], k: Optional[int]
) -> list[Posting]:
    """Deduplicated top-k across posting groups, best rank first.

    ``groups`` is any iterable of posting sequences (lists, tuples,
    :class:`~repro.storage.posting_list.BestFirstView` objects).  With
    ``k=None`` the full deduplicated merge is returned.
    """
    seen: set[int] = set()
    merged: list[Posting] = []
    for group in groups:
        for posting in group:
            if posting.blog_id not in seen:
                seen.add(posting.blog_id)
                merged.append(posting)
    merged.sort(key=lambda p: p.sort_key, reverse=True)
    if k is not None:
        del merged[k:]
    return merged
