"""Shared top-k merge: one implementation for every merge site.

Top-k merging appears at three layers of the system — the query
executor's memory/disk merge, the sharded scatter-gather path, and the
segmented index's cross-segment candidate gather — and they must agree
exactly (same dedup rule, same ordering, same tie behaviour) or the
differential tests between those paths become meaningless.  This module
is the single implementation they all call.

Semantics:

* groups are consumed in the given order; the *first* posting seen for a
  blog id wins (relevant when the same record appears in a memory group
  and a disk group — both carry identical sort keys, so this only
  matters for object identity);
* the merged list is sorted best rank first by
  :attr:`~repro.storage.posting_list.Posting.sort_key`; Python's sort is
  stable, so equal keys keep group order;
* ``k=None`` disables truncation (the segmented index's unbounded
  gather).
"""

from __future__ import annotations

from heapq import merge as _heap_merge
from itertools import islice
from typing import Iterable, Iterator, Optional, Sequence

from repro.storage.posting_list import Posting

__all__ = ["merge_topk", "merge_run_tails", "MergedRunsView"]


def merge_topk(
    groups: Iterable[Sequence[Posting]], k: Optional[int]
) -> list[Posting]:
    """Deduplicated top-k across posting groups, best rank first.

    ``groups`` is any iterable of posting sequences (lists, tuples,
    :class:`~repro.storage.posting_list.BestFirstView` objects).  With
    ``k=None`` the full deduplicated merge is returned.
    """
    seen: set[int] = set()
    merged: list[Posting] = []
    for group in groups:
        for posting in group:
            if posting.blog_id not in seen:
                seen.add(posting.blog_id)
                merged.append(posting)
    merged.sort(key=lambda p: p.sort_key, reverse=True)
    if k is not None:
        del merged[k:]
    return merged


def merge_run_tails(
    runs: Sequence[Iterable[Posting]], k: Optional[int]
) -> list[Posting]:
    """Top-``k`` across best-first posting streams, best rank first.

    Each element of ``runs`` must already yield postings in descending
    sort-key order (a run *tail* walk — ``reversed(ascending_run)``, a
    :meth:`PostingList.iter_best_first`, …), and blog ids must be
    distinct across runs.  Unlike :func:`merge_topk` this never sorts or
    deduplicates: it lazily k-way-merges the streams and stops after
    ``k`` postings, so a bounded gather over many runs reads only the
    run tails.  ``k=None`` returns the full merge.

    :class:`~repro.storage.posting_list.Posting` is a NamedTuple whose
    natural tuple order *is* its ``sort_key``, which is what lets the
    heap merge compare postings directly.
    """
    if not runs:
        return []
    if len(runs) == 1:
        stream: Iterable[Posting] = runs[0]
    else:
        stream = _heap_merge(*runs, reverse=True)
    if k is None:
        return list(stream)
    return list(islice(stream, k))


class MergedRunsView:
    """A lazy best-rank-first view over several ascending sorted runs.

    The disk tier's unbounded ``lookup(limit=None)`` used to build a full
    reversed copy of the posting list even though its only caller (the
    AND miss path) immediately dict-ifies it.  This view is the zero-copy
    replacement: it aliases the archive's live run storage, ``len()`` is
    O(1), and merging happens only when (and as far as) the caller
    iterates.  Like ``BestFirstView`` it is a snapshot by aliasing —
    consume it before the next ``commit_flush`` can append or compact.
    """

    __slots__ = ("_runs", "_length")

    def __init__(self, runs: Sequence[Sequence[Posting]]) -> None:
        self._runs = tuple(runs)
        self._length = sum(len(run) for run in self._runs)

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Posting]:
        runs = self._runs
        if not runs:
            return iter(())
        if len(runs) == 1:
            return reversed(runs[0])
        return _heap_merge(*map(reversed, runs), reverse=True)

    def __eq__(self, other) -> bool:
        if isinstance(other, MergedRunsView):
            return list(self) == list(other)
        if isinstance(other, (tuple, list)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MergedRunsView(runs={len(self._runs)}, n={self._length})"
