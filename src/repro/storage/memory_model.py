"""Byte-cost model for memory accounting.

The paper's experiments are parameterised by a memory budget in gigabytes.
Rather than relying on the Python interpreter's (noisy, version-dependent)
object sizes, the store charges every structure against an explicit,
configurable cost model, the way a C++/Java system would lay the data out:

* a raw record costs a fixed overhead plus its variable-length payload
  (text bytes and keyword bytes);
* an index entry costs a fixed overhead (hash slot, key, the per-entry
  arrival/query timestamps that kFlushing adds) plus one pointer per
  posting;
* each policy's private bookkeeping (LRU list nodes, FIFO segment headers,
  kFlushing's overflow list) is charged through the same model so the
  Figure 10(a) overhead experiment is apples-to-apples.

All constants are per-instance so experiments can sweep them; the defaults
approximate a compact Java layout like the paper's implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.model.microblog import Microblog

__all__ = ["MemoryModel"]


@dataclass(frozen=True)
class MemoryModel:
    """Explicit byte costs for every structure held in main memory."""

    #: Fixed bytes per raw record: object header, id, timestamp, user id,
    #: follower count, location, pcount, and store slot.
    record_overhead: int = 96
    #: Bytes charged per character of record text.
    text_byte_cost: int = 1
    #: Bytes charged per character of each stored keyword string.
    keyword_byte_cost: int = 1
    #: Bytes per posting (a microblog id held in an index entry list).
    posting_bytes: int = 8
    #: Fixed bytes per index entry: hash slot, key reference, list header,
    #: and the entry-level timestamps kFlushing maintains.
    entry_overhead: int = 64
    #: Bytes for one timestamp field (used to price policy bookkeeping).
    timestamp_bytes: int = 8
    #: Bytes per record of the global doubly-linked LRU list (H-Store
    #: anti-cache).  Two raw pointers would be 16 bytes; the paper's Java
    #: implementation measures ~4.9 GB for a ~30 GB / ~100M-tweet budget,
    #: i.e. ~48 bytes per tracked microblog (object header + prev + next
    #: + key), which this default mirrors.
    lru_node_bytes: int = 48
    #: Fixed bytes per FIFO time segment header.
    segment_overhead: int = 128
    #: Bytes per pointer (used for the kFlushing overflow list L, etc).
    pointer_bytes: int = 8

    def __post_init__(self) -> None:
        for field_name in (
            "record_overhead",
            "text_byte_cost",
            "keyword_byte_cost",
            "posting_bytes",
            "entry_overhead",
            "timestamp_bytes",
            "lru_node_bytes",
            "segment_overhead",
            "pointer_bytes",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ConfigurationError(f"{field_name} must be non-negative, got {value}")
        if self.record_overhead == 0 and self.text_byte_cost == 0:
            raise ConfigurationError("records must have a non-zero cost")

    def record_bytes(self, record: Microblog) -> int:
        """Total bytes a raw record occupies in the raw data store."""
        # Hot path: called for every insert and every eviction.
        payload = self.text_byte_cost * len(record.text)
        if record.keywords:
            payload += self.keyword_byte_cost * sum(map(len, record.keywords))
        return self.record_overhead + payload

    def entry_bytes(self, posting_count: int) -> int:
        """Bytes one index entry with ``posting_count`` postings occupies."""
        if posting_count < 0:
            raise ValueError(f"posting_count must be non-negative, got {posting_count}")
        return self.entry_overhead + posting_count * self.posting_bytes

    def postings_bytes(self, posting_count: int) -> int:
        """Bytes of just the posting pointers (no entry overhead)."""
        return posting_count * self.posting_bytes

    def columnar_layout(self) -> "MemoryModel":
        """The cost model for the columnar memory tier.

        A columnar posting stores its full (id, score, timestamp) triple
        inline — 24 bytes of raw column data instead of an 8-byte pointer
        to a shared object — while each entry carries three array headers
        on top of the legacy entry overhead.  Opt-in via
        ``SystemConfig.columnar_cost`` so the default columnar run keeps
        the legacy budget math (and hence bit-identical flush cadence)
        for the differential tests.
        """
        return replace(
            self,
            posting_bytes=24,
            entry_overhead=self.entry_overhead + 48,
        )
