"""Simulated disk archive: where flushed microblogs go.

The paper's disk tier (Figure 2/3) mirrors the in-memory layout — a raw
record store plus an attribute index — and is "an expensive process" to
visit.  We model it as in-process dictionaries wrapped in an explicit I/O
cost model, because what the experiments measure is not real disk latency
but (a) *how often* queries must fall to disk (the memory hit ratio) and
(b) the I/O volume a flushing policy generates.

Cost model: every batch write pays one seek plus bytes/bandwidth; every
index lookup pays one seek plus the postings read; every record fetch pays
one seek plus the record read.  The accumulated simulated seconds and the
operation counters are exposed through :class:`DiskStats`.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional

from repro.model.microblog import Microblog
from repro.obs import Instrumentation
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting

__all__ = ["DiskArchive", "DiskStats", "DiskCostModel"]


@dataclass(frozen=True)
class DiskCostModel:
    """Latency/bandwidth constants of the simulated disk."""

    seek_seconds: float = 5e-3
    read_bandwidth_bytes_per_s: float = 150e6
    write_bandwidth_bytes_per_s: float = 120e6

    def write_cost(self, nbytes: int) -> float:
        return self.seek_seconds + nbytes / self.write_bandwidth_bytes_per_s

    def read_cost(self, nbytes: int) -> float:
        return self.seek_seconds + nbytes / self.read_bandwidth_bytes_per_s


@dataclass
class DiskStats:
    """Counters accumulated by the disk archive."""

    flush_batches: int = 0
    records_written: int = 0
    postings_written: int = 0
    bytes_written: int = 0
    index_lookups: int = 0
    record_fetches: int = 0
    bytes_read: int = 0
    simulated_io_seconds: float = 0.0

    def snapshot(self) -> "DiskStats":
        return DiskStats(**vars(self))


class DiskArchive:
    """Append-mostly disk tier with an attribute index over flushed data.

    Postings may arrive before their record does: kFlushing trims a
    microblog id from one entry while the record stays memory-resident
    under another key.  The trimmed posting is written to the disk index
    immediately so that a later disk lookup on that key is exact; the
    record body follows once its reference count reaches zero.  The query
    executor resolves a disk posting to the in-memory record when it is
    still resident.
    """

    def __init__(
        self,
        model: MemoryModel,
        cost_model: Optional[DiskCostModel] = None,
        obs: Optional[Instrumentation] = None,
        shard_id: Optional[int] = None,
    ) -> None:
        self._model = model
        self._cost = cost_model or DiskCostModel()
        self._records: dict[int, Microblog] = {}
        #: key -> postings ascending by sort key (best at the end), the
        #: same layout as the in-memory posting lists.
        self._index: dict[Hashable, list[Posting]] = {}
        self.stats = DiskStats()
        self.obs = obs if obs is not None else Instrumentation()
        #: Which shard's namespace this archive holds (None = unsharded).
        #: A sharded system builds one archive per shard; the shard id
        #: labels this archive's counters so ``snapshot()`` can expose
        #: per-shard I/O alongside the aggregate ``disk.*`` series.
        self.shard_id = shard_id
        self._shard_prefix = None if shard_id is None else f"shard.{shard_id}.disk."

    def _count(self, name: str, amount: float = 1) -> None:
        """Increment the aggregate counter and its per-shard twin."""
        registry = self.obs.registry
        registry.counter(f"disk.{name}").inc(amount)
        if self._shard_prefix is not None:
            registry.counter(self._shard_prefix + name).inc(amount)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def key_count(self) -> int:
        return len(self._index)

    def contains_record(self, blog_id: int) -> bool:
        return blog_id in self._records

    def posting_count(self, key: Hashable) -> int:
        postings = self._index.get(key)
        return 0 if postings is None else len(postings)

    # ------------------------------------------------------------------
    # Writes (called by the flush buffer on commit)
    # ------------------------------------------------------------------

    def commit_flush(
        self,
        records: Iterable[Microblog],
        postings_by_key: dict[Hashable, list[Posting]],
    ) -> int:
        """Persist one flush batch; returns modelled bytes written."""
        nbytes = 0
        nrecords = 0
        for record in records:
            # Re-flushing the same record id is idempotent (can happen when
            # a record's postings were flushed from several keys and the
            # record itself follows later).
            if record.blog_id not in self._records:
                self._records[record.blog_id] = record
                nbytes += self._model.record_bytes(record)
                nrecords += 1
        npostings = 0
        for key, postings in postings_by_key.items():
            if not postings:
                continue
            target = self._index.setdefault(key, [])
            for posting in postings:
                if not target or posting.sort_key >= target[-1].sort_key:
                    target.append(posting)
                else:
                    insort(target, posting)
            npostings += len(postings)
            nbytes += self._model.postings_bytes(len(postings))
        self.stats.flush_batches += 1
        self.stats.records_written += nrecords
        self.stats.postings_written += npostings
        self.stats.bytes_written += nbytes
        self.stats.simulated_io_seconds += self._cost.write_cost(nbytes)
        self._count("flush_batches")
        self._count("records_written", nrecords)
        self._count("postings_written", npostings)
        self._count("bytes_written", nbytes)
        return nbytes

    # ------------------------------------------------------------------
    # Reads (called by the query executor on a memory miss)
    # ------------------------------------------------------------------

    def lookup(self, key: Hashable, limit: Optional[int] = None) -> list[Posting]:
        """Return disk postings for ``key``, best rank first.

        ``limit`` bounds the number returned (a real system reads the head
        blocks of the posting file); the I/O cost charges the postings
        actually read.
        """
        postings = self._index.get(key, [])
        if limit is not None:
            result = postings[-limit:][::-1]
        else:
            result = postings[::-1]
        nbytes = self._model.postings_bytes(len(result))
        self.stats.index_lookups += 1
        self.stats.bytes_read += nbytes
        self.stats.simulated_io_seconds += self._cost.read_cost(nbytes)
        self._count("index_lookups")
        self._count("bytes_read", nbytes)
        return result

    def fetch_record(self, blog_id: int) -> Optional[Microblog]:
        """Fetch a flushed record body, charging one read."""
        record = self._records.get(blog_id)
        if record is None:
            return None
        nbytes = self._model.record_bytes(record)
        self.stats.record_fetches += 1
        self.stats.bytes_read += nbytes
        self.stats.simulated_io_seconds += self._cost.read_cost(nbytes)
        self._count("record_fetches")
        self._count("bytes_read", nbytes)
        return record

    def peek_record(self, blog_id: int) -> Optional[Microblog]:
        """Record access without I/O accounting (tests / ground truth)."""
        return self._records.get(blog_id)
