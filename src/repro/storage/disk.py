"""Simulated disk archive: where flushed microblogs go.

The paper's disk tier (Figure 2/3) mirrors the in-memory layout — a raw
record store plus an attribute index — and is "an expensive process" to
visit.  We model it as in-process dictionaries wrapped in an explicit I/O
cost model, because what the experiments measure is not real disk latency
but (a) *how often* queries must fall to disk (the memory hit ratio) and
(b) the I/O volume a flushing policy generates.

Cost model: every batch write pays one seek plus bytes/bandwidth; every
index lookup pays one seek plus the postings read; every record fetch pays
one seek plus the record read.  The accumulated simulated seconds and the
operation counters are exposed through :class:`DiskStats`.

Index layout (PR 4): the attribute index is log-structured.  Each key
holds a :class:`_PostingRuns` — a set of sorted *runs* appended O(1) per
flush batch (flush batches arrive rank-ordered from the posting lists),
lazily k-way-merged on read, and size-tiered-compacted when the run count
exceeds ``max_runs_per_key``.  This replaces the per-posting ``insort``
of the flat layout; the flat layout survives behind the class switch
``DiskArchive.use_runs = False`` as the differential/bench reference.

Two config-gated read optimizations ride on top, both off by default so
the paper's cost accounting stays bit-identical:

* ``cache_bytes > 0`` enables a :class:`DiskReadCache` of bounded lookup
  blocks — a cache hit skips the seek and charges transfer bytes only;
* ``elide_empty=True`` lets callers use :meth:`DiskArchive.elides` to
  skip lookups for keys the disk provably holds no postings for.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from heapq import merge as _heap_merge
from itertools import islice
from typing import Hashable, Iterable, Optional, Sequence, Union

from repro.model.microblog import Microblog
from repro.obs import Instrumentation
from repro.storage.columnar import PostingBlock
from repro.storage.disk_cache import DiskReadCache
from repro.storage.interner import KeyInterner
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting
from repro.storage.topk import MergedRunsView

__all__ = ["DiskArchive", "DiskStats", "DiskCostModel"]


@dataclass(frozen=True)
class DiskCostModel:
    """Latency/bandwidth constants of the simulated disk."""

    seek_seconds: float = 5e-3
    read_bandwidth_bytes_per_s: float = 150e6
    write_bandwidth_bytes_per_s: float = 120e6

    def write_cost(self, nbytes: int) -> float:
        return self.seek_seconds + nbytes / self.write_bandwidth_bytes_per_s

    def read_cost(self, nbytes: int) -> float:
        return self.seek_seconds + nbytes / self.read_bandwidth_bytes_per_s

    def read_transfer_cost(self, nbytes: int) -> float:
        """Transfer-only read: what a cache hit pays (no seek)."""
        return nbytes / self.read_bandwidth_bytes_per_s


@dataclass
class DiskStats:
    """Counters accumulated by the disk archive."""

    flush_batches: int = 0
    records_written: int = 0
    postings_written: int = 0
    bytes_written: int = 0
    index_lookups: int = 0
    record_fetches: int = 0
    bytes_read: int = 0
    simulated_io_seconds: float = 0.0
    compactions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    lookups_elided: int = 0

    def snapshot(self) -> "DiskStats":
        return DiskStats(**vars(self))


class _PostingRuns:
    """Per-key log-structured posting storage: sorted runs + id set.

    Each run is ascending by sort key (best posting at the end — the same
    orientation as the in-memory :class:`PostingList`).  Blog ids are
    unique across all runs (``commit_flush`` dedups against ``ids``), and
    a posting's sort key embeds its blog id, so every sort key appears in
    exactly one run and the merged best-first order is independent of the
    order runs are stored in — compaction may regroup them freely.
    """

    __slots__ = ("runs", "ids")

    def __init__(self) -> None:
        self.runs: list[list[Posting]] = []
        self.ids: set[int] = set()

    def __len__(self) -> int:
        return len(self.ids)

    def append_batch(
        self, postings: Union[Sequence[Posting], PostingBlock]
    ) -> int:
        """Append one flush batch; returns the count of fresh postings.

        Postings whose blog id is already indexed under this key are
        dropped (idempotent re-flush).  The batch lands as one new run —
        or extends the newest run in place when it ranks entirely above
        it — so the per-batch cost is O(batch), not O(list).

        A columnar :class:`PostingBlock` with no id collisions is stored
        *as the run itself* — three set operations, zero tuples — and
        only expanded to ``Posting`` tuples when this key is first read
        (or when a collision forces the per-posting dedup path).  Blocks
        come off ascending posting lists, so they are sorted by
        construction.
        """
        if type(postings) is PostingBlock:
            block_ids = postings.ids
            ids = self.ids
            if ids.isdisjoint(block_ids):
                ids.update(block_ids)
                runs = self.runs
                if runs:
                    tail = runs[-1]
                    worst = (
                        postings.scores[0],
                        postings.times[0],
                        block_ids[0],
                    )
                    if type(tail) is PostingBlock:
                        if worst > (
                            tail.scores[-1],
                            tail.times[-1],
                            tail.ids[-1],
                        ):
                            tail.scores.extend(postings.scores)
                            tail.times.extend(postings.times)
                            tail.ids.extend(block_ids)
                            return len(block_ids)
                    elif worst > tail[-1]:
                        tail.extend(postings.postings())
                        return len(block_ids)
                runs.append(postings)
                return len(block_ids)
            # Id collision with an earlier flush: fall back to the
            # per-posting dedup path on the expanded block.
            postings = postings.postings()
        ids = self.ids
        fresh = []
        for p in postings:
            # Membership check against ids as we go also drops duplicate
            # blog ids *within* one batch, matching the flat layout.
            if p.blog_id not in ids:
                ids.add(p.blog_id)
                fresh.append(p)
        if not fresh:
            return 0
        # Flush batches come off ascending posting lists and normally
        # arrive already sorted; fall back to sorting when they don't.
        for i in range(len(fresh) - 1):
            if fresh[i] > fresh[i + 1]:
                fresh.sort()
                break
        runs = self.runs
        if runs:
            tail = runs[-1]
            if type(tail) is PostingBlock:
                # Mixed case (loose postings after a block run): expand
                # the tail once; later block appends extend it as a list.
                tail = runs[-1] = tail.postings()
            if fresh[0] > tail[-1]:
                tail.extend(fresh)
                return len(fresh)
        runs.append(fresh)
        return len(fresh)

    def _materialized(self) -> list[list[Posting]]:
        """Expand any block runs to ``Posting`` lists, in place.

        Read paths call this; a key that is only ever written keeps its
        runs as raw column blocks for its whole lifetime.
        """
        runs = self.runs
        for i, run in enumerate(runs):
            if type(run) is PostingBlock:
                runs[i] = run.postings()
        return runs

    def compact(self, target: int) -> int:
        """Merge the smallest runs until at most ``target`` remain.

        Size-tiered: the largest ``target - 1`` runs are kept as-is and
        everything smaller is merged into a single sorted run, so big
        cold runs are not rewritten every cycle.  Returns the number of
        runs merged away (0 when already within target).
        """
        runs = self.runs
        if len(runs) <= target:
            return 0
        runs = self._materialized()
        runs.sort(key=len, reverse=True)
        victims = runs[max(1, target) - 1 :]
        del runs[max(1, target) - 1 :]
        runs.append(list(_heap_merge(*victims)))
        return len(victims)

    def top(self, limit: int) -> list[Posting]:
        """Best ``limit`` postings, best rank first, reading run tails."""
        runs = self._materialized()
        if len(runs) == 1:
            run = runs[0]
            # C-speed tail slice: the last `limit` postings, reversed.
            return run[: -limit - 1 : -1] if limit < len(run) else run[::-1]
        return list(
            islice(_heap_merge(*map(reversed, runs), reverse=True), limit)
        )

    def best_first_view(self) -> MergedRunsView:
        """Zero-copy best-first view over all runs (unbounded lookup)."""
        return MergedRunsView(self._materialized())


class DiskArchive:
    """Append-mostly disk tier with an attribute index over flushed data.

    Postings may arrive before their record does: kFlushing trims a
    microblog id from one entry while the record stays memory-resident
    under another key.  The trimmed posting is written to the disk index
    immediately so that a later disk lookup on that key is exact; the
    record body follows once its reference count reaches zero.  The query
    executor resolves a disk posting to the in-memory record when it is
    still resident.
    """

    #: Class-level default for the index layout.  ``True`` is the
    #: segmented-runs layout; flipping to ``False`` (or passing
    #: ``use_runs=False``) restores the flat ``insort`` layout of the
    #: pre-PR-4 archive — kept as the reference path for differential
    #: tests and before/after benchmarks, like
    #: ``KFlushingEngine.use_flush_cache``.
    use_runs: bool = True

    def __init__(
        self,
        model: MemoryModel,
        cost_model: Optional[DiskCostModel] = None,
        obs: Optional[Instrumentation] = None,
        shard_id: Optional[int] = None,
        *,
        cache_bytes: int = 0,
        elide_empty: bool = False,
        use_runs: Optional[bool] = None,
        max_runs_per_key: int = 8,
        interner: Optional[KeyInterner] = None,
    ) -> None:
        self._model = model
        self._cost = cost_model or DiskCostModel()
        self._records: dict[int, Microblog] = {}
        self._use_runs = type(self).use_runs if use_runs is None else use_runs
        #: When set (columnar systems), ``_index`` is keyed by interned id
        #: and every public method translates at its boundary: writes
        #: intern, reads probe without growing the table.  Keys on the
        #: wire (commit batches, lookups) stay raw either way.
        self._interner = interner
        #: key -> per-key postings.  Runs layout: a ``_PostingRuns``.
        #: Flat layout: a plain ascending ``list[Posting]`` (best at the
        #: end), the same layout as the in-memory posting lists.
        self._index: dict[Hashable, Union[_PostingRuns, list[Posting]]] = {}
        if max_runs_per_key < 1:
            raise ValueError(
                f"max_runs_per_key must be >= 1, got {max_runs_per_key}"
            )
        self._max_runs = max_runs_per_key
        self.cache = (
            DiskReadCache(cache_bytes, model) if cache_bytes > 0 else None
        )
        self.elide_empty = elide_empty
        self.stats = DiskStats()
        self.obs = obs if obs is not None else Instrumentation()
        #: Which shard's namespace this archive holds (None = unsharded).
        #: A sharded system builds one archive per shard; the shard id
        #: labels this archive's counters so ``snapshot()`` can expose
        #: per-shard I/O alongside the aggregate ``disk.*`` series.
        self.shard_id = shard_id
        self._shard_prefix = None if shard_id is None else f"shard.{shard_id}.disk."

    def _count(self, name: str, amount: float = 1) -> None:
        """Increment the aggregate counter and its per-shard twin."""
        registry = self.obs.registry
        registry.counter(f"disk.{name}").inc(amount)
        if self._shard_prefix is not None:
            registry.counter(self._shard_prefix + name).inc(amount)

    def _probe(self, key: Hashable) -> Hashable:
        """Read-side key translation (no-op without an interner).

        A key the interner has never seen maps to ``-1`` — a valid dict
        probe that can never collide with a real id (ids are dense and
        non-negative), so the read path behaves exactly as for any other
        absent key without growing the interner.
        """
        if self._interner is None:
            return key
        kid = self._interner.maybe(key)
        return -1 if kid is None else kid

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def key_count(self) -> int:
        return len(self._index)

    def contains_record(self, blog_id: int) -> bool:
        return blog_id in self._records

    def posting_count(self, key: Hashable) -> int:
        postings = self._index.get(self._probe(key))
        return 0 if postings is None else len(postings)

    def run_count(self, key: Hashable) -> int:
        """Number of stored runs for ``key`` (1 for the flat layout)."""
        entry = self._index.get(self._probe(key))
        if entry is None:
            return 0
        if isinstance(entry, _PostingRuns):
            return len(entry.runs)
        return 1

    # ------------------------------------------------------------------
    # Writes (called by the flush buffer on commit)
    # ------------------------------------------------------------------

    def commit_flush(
        self,
        records: Iterable[Microblog],
        postings_by_key: dict[Hashable, Union[list[Posting], PostingBlock]],
        *,
        keys_interned: bool = False,
    ) -> int:
        """Persist one flush batch; returns modelled bytes written.

        Idempotent per ``(key, blog_id)``: a posting trimmed in one flush
        and re-flushed later (e.g. alongside its record body) is written
        once — re-commits neither inflate ``posting_count`` nor widen the
        merge inputs of later lookups.

        Columnar fast path: a flush buffer that shares this archive's
        interner passes ``keys_interned=True`` with the keys already as
        dense ids (skipping the unintern/re-intern round trip) and may
        pass whole :class:`PostingBlock` column slices as values — the
        runs layout stores an uncontended block without materializing a
        single ``Posting`` tuple.
        """
        nbytes = 0
        nrecords = 0
        for record in records:
            # Re-flushing the same record id is idempotent (can happen when
            # a record's postings were flushed from several keys and the
            # record itself follows later).
            if record.blog_id not in self._records:
                self._records[record.blog_id] = record
                nbytes += self._model.record_bytes(record)
                nrecords += 1
        npostings = 0
        intern = None if self._interner is None else self._interner.intern
        if keys_interned:
            if self._interner is None:
                raise ValueError(
                    "keys_interned=True requires an interned archive"
                )
            intern = None
        for key, postings in postings_by_key.items():
            if not postings:
                continue
            if intern is not None:
                key = intern(key)
            fresh = (
                self._commit_key_runs(key, postings)
                if self._use_runs
                else self._commit_key_flat(key, postings)
            )
            if not fresh:
                continue
            npostings += fresh
            nbytes += self._model.postings_bytes(fresh)
            if self.cache is not None:
                self.cache.invalidate(key)
        self.stats.flush_batches += 1
        self.stats.records_written += nrecords
        self.stats.postings_written += npostings
        self.stats.bytes_written += nbytes
        self.stats.simulated_io_seconds += self._cost.write_cost(nbytes)
        self._count("flush_batches")
        self._count("records_written", nrecords)
        self._count("postings_written", npostings)
        self._count("bytes_written", nbytes)
        return nbytes

    def _commit_key_runs(self, key: Hashable, postings: list[Posting]) -> int:
        """Runs layout: O(1) batch append plus occasional compaction."""
        entry = self._index.get(key)
        if entry is None:
            entry = _PostingRuns()
            fresh = entry.append_batch(postings)
            if fresh:
                self._index[key] = entry
            return fresh
        fresh = entry.append_batch(postings)
        if len(entry.runs) > self._max_runs:
            entry.compact(max(1, self._max_runs // 2))
            self.stats.compactions += 1
            self._count("compactions")
        return fresh

    def _commit_key_flat(self, key: Hashable, postings) -> int:
        """Flat layout: per-posting append-or-insort (pre-PR-4 path)."""
        if type(postings) is PostingBlock:
            postings = postings.postings()
        target = self._index.get(key)
        if target is None:
            target = self._index[key] = []
        seen = {p.blog_id for p in target}
        fresh = 0
        for posting in postings:
            if posting.blog_id in seen:
                continue
            seen.add(posting.blog_id)
            if not target or posting.sort_key >= target[-1].sort_key:
                target.append(posting)
            else:
                insort(target, posting)
            fresh += 1
        if not target:
            del self._index[key]
        return fresh

    # ------------------------------------------------------------------
    # Reads (called by the query executor on a memory miss)
    # ------------------------------------------------------------------

    def elides(self, key: Hashable) -> bool:
        """True when elision is on and ``key`` provably has no postings.

        Callers (the executor's miss paths, the sharded router) use this
        to skip a disk lookup entirely — no seek, no ``index_lookups``
        tick — for keys the archive has never indexed.  Counted under
        ``disk.lookups_elided``.  Always ``False`` with the gate off, so
        default behaviour (every miss pays the lookup) is unchanged.
        """
        if not self.elide_empty or self._probe(key) in self._index:
            return False
        self.stats.lookups_elided += 1
        self._count("lookups_elided")
        self.obs.trace_point("disk.elide", key=str(key), shard=self.shard_id)
        return True

    def lookup(
        self, key: Hashable, limit: Optional[int] = None
    ) -> Sequence[Posting]:
        """Return disk postings for ``key``, best rank first.

        ``limit`` bounds the number returned (a real system reads the head
        blocks of the posting file); the I/O cost charges the postings
        actually read.  Bounded lookups return a materialized sequence and
        consult the read cache when enabled; unbounded lookups return a
        zero-copy best-first view over the live runs (consume it before
        the next ``commit_flush``).  Inside an open trace, each lookup
        becomes a ``disk.lookup`` child span recording cache outcome,
        runs merged, and postings returned.
        """
        index_key = self._probe(key)
        if self.obs.current_trace is None:
            return self._lookup(index_key, limit, None)
        with self.obs.trace_span(
            "disk.lookup", key=str(key), shard=self.shard_id
        ) as extra:
            result = self._lookup(index_key, limit, extra)
            extra["postings"] = len(result)
            extra["runs"] = self.run_count(key)
            return result

    def _lookup(
        self, key: Hashable, limit: Optional[int], trace: Optional[dict]
    ) -> Sequence[Posting]:
        if limit is not None and self.cache is not None:
            block = self.cache.get(key, limit)
            if block is not None:
                self.stats.cache_hits += 1
                self._count("cache.hits")
                if trace is not None:
                    trace["cache"] = "hit"
                return self._charge_read(block, seek=False)
            self.stats.cache_misses += 1
            self._count("cache.misses")
            if trace is not None:
                trace["cache"] = "miss"
            result = self._read_index(key, limit)
            evicted = self.cache.put(key, limit, tuple(result))
            if evicted:
                self.stats.cache_evictions += evicted
                self._count("cache.evictions", evicted)
            return self._charge_read(result, seek=True)
        return self._charge_read(self._read_index(key, limit), seek=True)

    def _read_index(
        self, key: Hashable, limit: Optional[int]
    ) -> Sequence[Posting]:
        """Materialize (bounded) or view (unbounded) one key's postings."""
        entry = self._index.get(key)
        if entry is None:
            return [] if limit is not None else MergedRunsView(())
        if isinstance(entry, _PostingRuns):
            if limit is not None:
                return entry.top(limit)
            return entry.best_first_view()
        # Flat layout: the pre-PR-4 slice-and-reverse copies, kept verbatim
        # as the micro-benchmark reference for the zero-copy view above.
        if limit is not None:
            return entry[-limit:][::-1]
        return entry[::-1]

    def _charge_read(
        self, result: Sequence[Posting], *, seek: bool
    ) -> Sequence[Posting]:
        """Account one index read; a cache hit skips the seek."""
        nbytes = self._model.postings_bytes(len(result))
        self.stats.index_lookups += 1
        self.stats.bytes_read += nbytes
        self.stats.simulated_io_seconds += (
            self._cost.read_cost(nbytes)
            if seek
            else self._cost.read_transfer_cost(nbytes)
        )
        self._count("index_lookups")
        self._count("bytes_read", nbytes)
        return result

    def fetch_record(self, blog_id: int) -> Optional[Microblog]:
        """Fetch a flushed record body, charging one read."""
        record = self._records.get(blog_id)
        if record is None:
            return None
        nbytes = self._model.record_bytes(record)
        self.stats.record_fetches += 1
        self.stats.bytes_read += nbytes
        self.stats.simulated_io_seconds += self._cost.read_cost(nbytes)
        self._count("record_fetches")
        self._count("bytes_read", nbytes)
        return record

    def peek_record(self, blog_id: int) -> Optional[Microblog]:
        """Record access without I/O accounting (tests / ground truth)."""
        return self._records.get(blog_id)
