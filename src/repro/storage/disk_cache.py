"""Modelled LRU read cache over per-key top-k disk blocks.

A real deployment gets an OS page cache between the query engine and the
spindle for free; the simulated disk tier has to model it explicitly or
every repeated memory miss on the same hot key pays a full seek forever.
:class:`DiskReadCache` is that model: it holds the materialized result of
bounded index lookups — ``(key, limit) -> tuple[Posting, ...]`` blocks —
under an explicit byte budget, evicting least-recently-used blocks.

The cache changes *costs only*, never answers: a hit returns the exact
block a cold read would have produced, and the archive charges transfer
bytes without the seek (see ``DiskCostModel.read_transfer_cost``).  Any
``commit_flush`` touching a key drops that key's blocks, so a cached
block can never go stale.  It is off by default
(``SystemConfig.disk_cache_bytes = 0``) to preserve the paper's cost
accounting bit-for-bit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting

__all__ = ["DiskReadCache"]

#: Cache-key of one block: the looked-up index key plus the read bound.
_BlockKey = tuple[Hashable, int]


class DiskReadCache:
    """Byte-budgeted LRU cache of bounded disk lookup results."""

    __slots__ = (
        "capacity_bytes",
        "_model",
        "_blocks",
        "_limits_by_key",
        "bytes_used",
        "hits",
        "misses",
        "evictions",
        "invalidations",
    )

    def __init__(self, capacity_bytes: int, model: MemoryModel) -> None:
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._model = model
        #: Insertion/recency order: least recently used block first.
        self._blocks: OrderedDict[_BlockKey, tuple[Posting, ...]] = OrderedDict()
        #: key -> the limits cached for it, so a ``commit_flush`` touching
        #: a key invalidates all its blocks without scanning the cache.
        self._limits_by_key: dict[Hashable, set[int]] = {}
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def block_bytes(self, block: tuple[Posting, ...]) -> int:
        """Modelled footprint of one cached block (entry header + ids)."""
        return self._model.entry_bytes(len(block))

    def contains(self, key: Hashable, limit: int) -> bool:
        """Membership test without touching recency or counters."""
        return (key, limit) in self._blocks

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def get(self, key: Hashable, limit: int) -> Optional[tuple[Posting, ...]]:
        """Return the cached block and mark it most recently used."""
        block = self._blocks.get((key, limit))
        if block is None:
            self.misses += 1
            return None
        self._blocks.move_to_end((key, limit))
        self.hits += 1
        return block

    def put(self, key: Hashable, limit: int, block: tuple[Posting, ...]) -> int:
        """Admit a block, evicting LRU blocks to fit; returns evictions.

        A block larger than the whole budget is not admitted (it would
        wipe the cache for a single unreusable read).
        """
        cost = self.block_bytes(block)
        if cost > self.capacity_bytes:
            return 0
        block_key = (key, limit)
        old = self._blocks.pop(block_key, None)
        if old is not None:
            self.bytes_used -= self.block_bytes(old)
        self._blocks[block_key] = block
        self._limits_by_key.setdefault(key, set()).add(limit)
        self.bytes_used += cost
        evicted = 0
        while self.bytes_used > self.capacity_bytes:
            (victim_key, victim_limit), victim = self._blocks.popitem(last=False)
            self.bytes_used -= self.block_bytes(victim)
            limits = self._limits_by_key[victim_key]
            limits.discard(victim_limit)
            if not limits:
                del self._limits_by_key[victim_key]
            evicted += 1
        self.evictions += evicted
        return evicted

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate(self, key: Hashable) -> int:
        """Drop every block cached for ``key``; returns blocks dropped."""
        limits = self._limits_by_key.pop(key, None)
        if not limits:
            return 0
        dropped = 0
        for limit in limits:
            block = self._blocks.pop((key, limit), None)
            if block is not None:
                self.bytes_used -= self.block_bytes(block)
                dropped += 1
        self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        self._blocks.clear()
        self._limits_by_key.clear()
        self.bytes_used = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskReadCache(blocks={len(self._blocks)}, "
            f"bytes={self.bytes_used}/{self.capacity_bytes})"
        )
