"""Dense interning of index keys (string ⇄ int id).

The columnar memory tier keys every hot dict — the inverted index's
entries, the k-filled set, flush-cycle memos, the eviction ledger, and
the disk archive's index — by a small dense integer instead of the raw
key (usually a keyword string).  Hashing a small int is several times
cheaper than hashing a string, equality checks are pointer-free, and the
dense id space doubles as the natural row id for future snapshot /
serialization work.

Interned ids are process-wide and never recycled: a key observed once
keeps its id for the lifetime of the interner, so ids are stable across
memtable rotations, shard handoffs, and flush cycles.  Translation back
to the raw key happens only at API/snapshot boundaries (query results,
``frequency_snapshot``, traces).

Two lookup flavours matter on the hot paths:

* :meth:`KeyInterner.intern` — ingest-side, *growing*: assigns the next
  dense id on first sight.
* :meth:`KeyInterner.maybe` — query-side, *non-growing*: returns None
  for a never-ingested key, so probe-heavy query workloads do not bloat
  the table with one id per unseen search term.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional

__all__ = ["KeyInterner", "get_global_interner", "reset_global_interner"]


class KeyInterner:
    """Bijective string ⇄ dense-int mapping with O(1) lookups both ways."""

    __slots__ = ("_ids", "_keys")

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._keys: list[Hashable] = []

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._ids

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KeyInterner(n={len(self._keys)})"

    def intern(self, key: Hashable) -> int:
        """Return the dense id for ``key``, assigning one on first sight."""
        kid = self._ids.get(key)
        if kid is None:
            kid = len(self._keys)
            self._ids[key] = kid
            self._keys.append(key)
        return kid

    def maybe(self, key: Hashable) -> Optional[int]:
        """Return the id for ``key`` or None — never grows the table.

        Query paths use this so a probe for a never-ingested key does not
        permanently allocate an id.
        """
        return self._ids.get(key)

    def unintern(self, kid: int) -> Hashable:
        """Translate a dense id back to its raw key."""
        return self._keys[kid]

    def intern_many(self, keys: Iterable[Hashable]) -> list[int]:
        """Batch :meth:`intern` with the lookup loop inlined (hot path)."""
        ids = self._ids
        ids_get = ids.get
        table = self._keys
        out = []
        append = out.append
        for key in keys:
            kid = ids_get(key)
            if kid is None:
                kid = len(table)
                ids[key] = kid
                table.append(key)
            append(kid)
        return out

    def keys(self) -> Iterator[Hashable]:
        """Iterate raw keys in id order (id ``i`` is the i-th yielded)."""
        return iter(self._keys)

    def check_integrity(self) -> None:
        """Assert the two directions agree (tests / debug builds)."""
        assert len(self._ids) == len(self._keys), (
            f"interner drift: {len(self._ids)} ids != {len(self._keys)} keys"
        )
        for kid, key in enumerate(self._keys):
            assert self._ids.get(key) == kid, (
                f"interner round-trip broken for {key!r}: "
                f"{self._ids.get(key)} != {kid}"
            )


#: Process-wide interner shared by every columnar system in this process.
#: Ids never leak into results or accounting, so sharing across systems
#: (and across trials in one process) is safe and keeps sharded overlays
#: and memtable rotations id-stable for free.
_GLOBAL: KeyInterner = KeyInterner()


def get_global_interner() -> KeyInterner:
    """The process-wide interner used when no explicit one is passed."""
    return _GLOBAL


def reset_global_interner() -> KeyInterner:
    """Swap in a fresh process-wide interner (tests only) and return it."""
    global _GLOBAL
    _GLOBAL = KeyInterner()
    return _GLOBAL
