"""Posting lists: the per-key entry of the in-memory inverted index.

This is the "list of microblog IDs" of the paper's Figure 3, with three
additions the kFlushing machinery needs:

* postings are kept ordered by ranking score so the top-k of an entry is
  directly accessible (Section IV-B);
* each entry carries ``last_arrival`` and ``last_query`` timestamps — the
  per-entry (not per-item!) bookkeeping that Phases 2 and 3 order their
  victims by;
* each entry carries a **completeness floor**: the highest sort key ever
  removed from it.  Everything ranked strictly above the floor is
  guaranteed to still be present, which is what lets the query executor
  decide *provably* whether the top-k answer is fully in memory (a memory
  hit) without consulting the disk.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Hashable, Iterator, NamedTuple, Optional

__all__ = ["BestFirstView", "Posting", "PostingList", "MIN_SORT_KEY", "SortKey"]

#: Total-order key for postings: (score, timestamp, blog_id), higher wins.
SortKey = tuple[float, float, int]

#: A sort key smaller than any real posting's key.  A floor at this value
#: means the entry has never lost a posting and is complete.
MIN_SORT_KEY: SortKey = (float("-inf"), float("-inf"), -1)


class Posting(NamedTuple):
    """One indexed microblog reference inside an entry."""

    score: float
    timestamp: float
    blog_id: int

    @property
    def sort_key(self) -> SortKey:
        return (self.score, self.timestamp, self.blog_id)


class BestFirstView:
    """A read-only, best-rank-first sequence view over a posting list.

    Engines hand this to :class:`~repro.core.policy.LookupResult` for
    unbounded lookups so that reading an entry never copies it: the view
    aliases the entry's live storage and reverses lazily.  Indexing and
    slicing follow best-first order (``view[0]`` is the best posting);
    slices materialize tuples of just the requested size.

    The view is a *snapshot by aliasing*: it reflects later mutations of
    the entry.  Query evaluation reads it synchronously before any
    bookkeeping or flushing can run, which is the only supported use.
    """

    __slots__ = ("_postings",)

    def __init__(self, postings: list[Posting]) -> None:
        self._postings = postings

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        return reversed(self._postings)

    def __getitem__(self, index):
        n = len(self._postings)
        if isinstance(index, slice):
            start, stop, step = index.indices(n)
            if step == 1:
                # One reversed extended slice of the underlying list —
                # no per-element indexing loop, no intermediate copy.
                if start >= stop:
                    return ()
                return tuple(self._postings[n - 1 - start : n - 1 - stop : -1]
                             if n - 1 - stop >= 0
                             else self._postings[n - 1 - start :: -1])
            return tuple(
                self._postings[n - 1 - i] for i in range(start, stop, step)
            )
        if index < -n or index >= n:
            raise IndexError(index)
        return self._postings[n - 1 - index if index >= 0 else -1 - index - n]

    def __eq__(self, other) -> bool:
        if isinstance(other, BestFirstView):
            return self._postings == other._postings
        if isinstance(other, (tuple, list)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BestFirstView(n={len(self._postings)})"


class PostingList:
    """An ordered, floor-tracking list of postings for one index key.

    Postings are stored ascending by sort key, so the best-ranked posting
    sits at the *end* of the list: appends (the overwhelmingly common case
    under temporal ranking, where arrival order equals score order) are
    O(1), and trimming the worst-ranked postings is a single slice.
    """

    __slots__ = ("key", "_postings", "last_arrival", "last_query", "floor")

    def __init__(
        self,
        key: Hashable,
        created_at: float,
        floor: SortKey = MIN_SORT_KEY,
    ) -> None:
        self.key = key
        self._postings: list[Posting] = []
        #: Arrival timestamp of the most recent insert (Phase 2 order key).
        self.last_arrival: float = created_at
        #: Timestamp of the most recent query touching this key (Phase 3
        #: order key).  Initialised to creation time so never-queried keys
        #: age out first.
        self.last_query: float = created_at
        #: Completeness floor: all postings ranked strictly above this sort
        #: key are guaranteed present in memory.
        self.floor: SortKey = floor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PostingList(key={self.key!r}, n={len(self._postings)})"

    @property
    def is_complete(self) -> bool:
        """True when no posting was ever removed from this entry."""
        return self.floor == MIN_SORT_KEY

    def top(self, k: int) -> list[Posting]:
        """Return up to ``k`` best-ranked postings, best first.

        One reversed extended slice — the former ``[-k:][::-1]`` spelled
        without the intermediate forward copy (query hot path).
        """
        if k <= 0:
            return []
        return self._postings[-1 : -k - 1 : -1]

    def iter_best_first(self) -> Iterator[Posting]:
        """Iterate postings best-rank-first without copying the entry.

        This is the allocation-free counterpart of
        ``tuple(reversed(list(entry)))``: unbounded lookups on hot keys
        hold thousands of postings, and materializing them per query was
        a measurable hot path (see docs/PERFORMANCE.md).
        """
        return reversed(self._postings)

    def best_first(self) -> BestFirstView:
        """A lazy best-rank-first sequence view over this entry."""
        return BestFirstView(self._postings)

    def is_k_filled(self, k: int) -> bool:
        """O(1) test for :meth:`provable_top` being non-None.

        An entry is k-filled when it holds at least ``k`` postings and
        the k-th best is strictly above the completeness floor — a query
        on this key alone is then a guaranteed memory hit.  The inverted
        index maintains its k-filled count incrementally off this test.
        """
        return (
            k > 0
            and len(self._postings) >= k
            and self._postings[-k].sort_key > self.floor
        )

    def best(self) -> Optional[Posting]:
        """The single best-ranked posting, or None when empty."""
        return self._postings[-1] if self._postings else None

    def worst(self) -> Optional[Posting]:
        """The single worst-ranked posting, or None when empty."""
        return self._postings[0] if self._postings else None

    def contains_id(self, blog_id: int) -> bool:
        """Linear membership test by microblog id."""
        return any(p.blog_id == blog_id for p in self._postings)

    def contains_in_top(self, blog_id: int, k: int) -> bool:
        """Whether ``blog_id`` is among this entry's top-k postings."""
        if k <= 0:
            return False
        return any(p.blog_id == blog_id for p in self._postings[-k:])

    def topk_id_set(self, k: int) -> frozenset[int]:
        """Ids of the top-k postings (flush-cycle memo building block)."""
        if k <= 0:
            return frozenset()
        return frozenset(p.blog_id for p in self._postings[-k:])

    def id_set(self) -> set[int]:
        """All member ids (flush-cycle memo building block)."""
        return {p.blog_id for p in self._postings}

    def provable_top(self, k: int) -> Optional[list[Posting]]:
        """Return the top-k postings iff they are *provably* the true
        top-k for this key (k postings exist, all above the floor);
        otherwise None.

        A None result means a query on this key alone is a memory miss.
        """
        if len(self._postings) < k:
            return None
        top = self._postings[-k:]
        if top[0].sort_key <= self.floor:
            return None
        return top[::-1]

    def count_above_floor(self) -> int:
        """Number of postings ranked strictly above the floor.

        These are the postings that can participate in a provably-correct
        in-memory answer.  After score-ordered trims every remaining
        posting is above the floor; per-item eviction (LRU) can leave
        postings below it.
        """
        if self.floor == MIN_SORT_KEY:
            return len(self._postings)
        keys = [p.sort_key for p in self._postings]
        return len(keys) - bisect_right(keys, self.floor)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, posting: Posting) -> None:
        """Insert a posting, maintaining score order.

        Appending is O(1) when the new posting ranks best-so-far, which is
        always the case under temporal ranking; otherwise an O(n) insort
        keeps the order.  ``last_arrival`` advances to the posting's
        arrival timestamp.
        """
        if not self._postings or posting.sort_key >= self._postings[-1].sort_key:
            self._postings.append(posting)
        else:
            insort(self._postings, posting)
        if posting.timestamp > self.last_arrival:
            self.last_arrival = posting.timestamp

    def touch_query(self, now: float) -> None:
        """Record that a query accessed this entry at time ``now``."""
        if now > self.last_query:
            self.last_query = now

    def _raise_floor(self, key: SortKey) -> None:
        if key > self.floor:
            self.floor = key

    def trim_beyond(self, k: int) -> list[Posting]:
        """Remove and return every posting ranked beyond the top-k.

        This is Phase 1's per-entry operation.  The floor rises to the
        best removed key, so the retained top-k remains provably complete.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        excess = len(self._postings) - k
        if excess <= 0:
            return []
        removed = self._postings[:excess]
        del self._postings[:excess]
        self._raise_floor(removed[-1].sort_key)
        return removed

    def trim_if(self, k: int, keep) -> list[Posting]:
        """Remove postings ranked beyond the top-k *unless* ``keep(p)``.

        This is the MK-extended Phase 1 rule: a beyond-top-k posting is
        retained when the record is still among the top-k of another
        entry.  The floor rises to the best *removed* key only; retained
        stragglers below the floor simply no longer count toward provable
        answers on this key (they exist to serve AND-queries).
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        excess = len(self._postings) - k
        if excess <= 0:
            return []
        candidates = self._postings[:excess]
        removed = [p for p in candidates if not keep(p)]
        if not removed:
            return []
        removed_ids = {p.blog_id for p in removed}
        self._postings = [p for p in self._postings if p.blog_id not in removed_ids]
        self._raise_floor(max(p.sort_key for p in removed))
        return removed

    def remove_id(self, blog_id: int) -> Optional[Posting]:
        """Remove the posting for ``blog_id`` (LRU per-item eviction).

        Returns the removed posting, or None when absent.  The floor rises
        to the removed key: an arbitrary mid-list eviction invalidates the
        completeness of everything at or below it.
        """
        for i, posting in enumerate(self._postings):
            if posting.blog_id == blog_id:
                del self._postings[i]
                self._raise_floor(posting.sort_key)
                return posting
        return None

    def drain(self) -> list[Posting]:
        """Remove and return all postings (entry is being flushed)."""
        drained = self._postings
        self._postings = []
        if drained:
            self._raise_floor(drained[-1].sort_key)
        return drained

    def drain_if(self, keep) -> list[Posting]:
        """Remove and return all postings except those with ``keep(p)``.

        MK-extended Phase 2: an entry selected for flushing retains the
        postings whose record also lives in some k-filled entry.
        """
        removed = [p for p in self._postings if not keep(p)]
        if not removed:
            return []
        removed_ids = {p.blog_id for p in removed}
        self._postings = [p for p in self._postings if p.blog_id not in removed_ids]
        self._raise_floor(max(p.sort_key for p in removed))
        return removed
