"""Hash inverted index over one search attribute.

The "keyword index" of the paper's Figure 3: a hash table mapping each key
(keyword, user id, or spatial tile) to a :class:`PostingList`.  Beyond plain
lookup/insert it maintains two things the kFlushing policy relies on:

* the **overflow list L** (Section III-A): the set of keys whose entries
  currently hold more than ``k`` postings, maintained incrementally at
  insert time so Phase 1 never scans the full index;
* incremental **byte accounting** through the shared
  :class:`~repro.storage.memory_model.MemoryModel`, so the engine can
  trigger flushing against a modelled memory budget;
* the incremental **k-filled set**: the keys whose provable top-k is
  complete in memory (the Figure 7 metric), maintained at insert, trim,
  floor-raise, and removal time so sampling the count is O(1) instead of
  a full index rescan with two slice allocations per entry.

The k-filled set stays exact as long as in-place entry mutations are
reported with their key (``charge_removed_postings(count, key=...)``).  A
legacy keyless charge only marks the set dirty; the next count rebuilds
it, so external callers remain correct, merely slower.
"""

from __future__ import annotations

from typing import Hashable, ItemsView, Iterator, Optional

from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import MIN_SORT_KEY, Posting, PostingList, SortKey

__all__ = ["HashInvertedIndex"]

#: Distinguishes "caller did not name the mutated key" from a key that
#: happens to be None.
_UNSET: object = object()


class HashInvertedIndex:
    """A byte-accounted hash inverted index with overflow tracking.

    ``entry_factory`` selects the per-key entry layout: the default
    builds the legacy list-of-tuples :class:`PostingList`; the columnar
    engines pass :class:`~repro.storage.columnar.ColumnarPostingList`.
    Both share one API, so the index itself is layout-agnostic.
    """

    def __init__(
        self, model: MemoryModel, k: int, entry_factory=PostingList, allocator=None
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._model = model
        self._k = k
        self._entry_factory = entry_factory
        #: Per-key retention depths (``repro.core.adaptive.KAllocator``,
        #: ``depth_of(key) >= k`` always).  None — the default — keeps
        #: every threshold at the global ``k``, the legacy fast path.
        self._allocator = allocator
        self._entries: dict[Hashable, PostingList] = {}
        self._overflow: set[Hashable] = set()
        self._bytes = 0
        self._postings_total = 0
        #: Keys whose entry is currently k-filled for the index's own k.
        self._k_filled: set[Hashable] = set()
        #: Set when an entry mutated without telling us which one (legacy
        #: keyless charge_removed_postings); the next count rebuilds.
        self._k_filled_dirty = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def items(self) -> ItemsView[Hashable, PostingList]:
        return self._entries.items()

    def entries(self) -> Iterator[PostingList]:
        return iter(self._entries.values())

    def get(self, key: Hashable) -> Optional[PostingList]:
        """Return the entry for ``key``, or None when absent."""
        return self._entries.get(key)

    @property
    def k(self) -> int:
        """The current top-k threshold used for overflow tracking."""
        return self._k

    @property
    def bytes_used(self) -> int:
        """Modelled bytes occupied by entries and postings."""
        return self._bytes

    @property
    def overflow_keys(self) -> frozenset[Hashable]:
        """Snapshot of the overflow list L (keys with more than k postings)."""
        return frozenset(self._overflow)

    def depth_of(self, key: Hashable) -> int:
        """Retention depth Phase 1 trims ``key`` to: the allocator's
        per-key depth when adaptive is on, else the global ``k``."""
        allocator = self._allocator
        return self._k if allocator is None else allocator.depth_of(key)

    def refresh_overflow(self, key: Hashable) -> None:
        """Re-derive ``key``'s overflow membership after its retention
        depth changed (a demotion can put an untouched entry back over
        its depth; a promotion takes it out)."""
        entry = self._entries.get(key)
        if entry is not None and len(entry) > self.depth_of(key):
            self._overflow.add(key)
        else:
            self._overflow.discard(key)

    def k_filled_count(self, k: Optional[int] = None) -> int:
        """Number of keys whose entries hold at least ``k`` postings above
        their completeness floor.

        This is the paper's "k-filled keywords" metric (Figure 7): a query
        on such a key is guaranteed to be a memory hit.  For the index's
        own ``k`` the count is maintained incrementally and returned in
        O(1); a foreign threshold falls back to the brute-force rescan.
        """
        threshold = self._k if k is None else k
        if threshold != self._k:
            return self.k_filled_count_bruteforce(threshold)
        if self._k_filled_dirty:
            self._rebuild_k_filled()
        return len(self._k_filled)

    def k_filled_count_bruteforce(self, k: Optional[int] = None) -> int:
        """Reference O(index) recount via :meth:`PostingList.provable_top`.

        Kept as the ground truth the incremental counter is verified
        against (differential tests, :meth:`check_integrity`) and for
        counting under a threshold other than the index's own ``k``.
        """
        threshold = self._k if k is None else k
        return sum(
            1
            for entry in self._entries.values()
            if len(entry) >= threshold and entry.provable_top(threshold) is not None
        )

    def _rebuild_k_filled(self) -> None:
        k = self._k
        self._k_filled = {
            key for key, entry in self._entries.items() if entry.is_k_filled(k)
        }
        self._k_filled_dirty = False

    def _refresh_k_filled(self, key: Hashable, entry: PostingList) -> None:
        """Re-derive one key's k-filled membership after a mutation."""
        if entry.is_k_filled(self._k):
            self._k_filled.add(key)
        else:
            self._k_filled.discard(key)

    def posting_count(self) -> int:
        """Total postings across all entries (tracked incrementally)."""
        return self._postings_total

    def frequency_snapshot(self) -> dict[Hashable, int]:
        """Map of key -> in-memory posting count (the Figure 1 snapshot)."""
        return {key: len(entry) for key, entry in self._entries.items()}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def set_k(self, k: int) -> None:
        """Change the top-k threshold (Section IV-C dynamic k).

        The overflow list is rebuilt for the new threshold; per the paper,
        the change takes effect at the next flushing cycle, which is
        exactly when the overflow list is consumed.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if k == self._k:
            return
        self._k = k
        allocator = self._allocator
        if allocator is None:
            self._overflow = {
                key for key, entry in self._entries.items() if len(entry) > k
            }
        else:
            # The engine rebases the allocator before calling us, so the
            # per-key depths already sit on the new floor.
            self._overflow = {
                key
                for key, entry in self._entries.items()
                if len(entry) > allocator.depth_of(key)
            }
        # One O(index) rebuild per k change; thereafter the k-filled set
        # is maintained incrementally again.
        self._rebuild_k_filled()

    def insert(
        self,
        key: Hashable,
        posting: Posting,
        now: float,
        created_floor: SortKey = MIN_SORT_KEY,
    ) -> PostingList:
        """Insert ``posting`` under ``key``, creating the entry if needed.

        ``created_floor`` seeds the completeness floor of a *newly created*
        entry; engines pass their global flush horizon so an entry that was
        flushed wholesale and later re-created does not falsely claim
        completeness for the flushed period.
        """
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entry_factory(key, created_at=now, floor=created_floor)
            self._entries[key] = entry
            self._bytes += self._model.entry_overhead
        entry.insert(posting)
        self._bytes += self._model.posting_bytes
        self._postings_total += 1
        if len(entry) > self._k:
            allocator = self._allocator
            if allocator is None or len(entry) > allocator.depth_of(key):
                self._overflow.add(key)
        # Inserting never lowers the k-th-best posting nor the floor, so
        # membership can only switch on here, never off.
        if key not in self._k_filled and entry.is_k_filled(self._k):
            self._k_filled.add(key)
        return entry

    def insert_scalar(
        self,
        key: Hashable,
        score: float,
        timestamp: float,
        blog_id: int,
        now: float,
        created_floor: SortKey = MIN_SORT_KEY,
    ) -> PostingList:
        """Scalar twin of :meth:`insert` for columnar entries.

        Identical bookkeeping, but the posting travels as three scalars
        straight into the entry's columns — the ingest hot path allocates
        no ``Posting`` tuple at all.
        """
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entry_factory(key, created_at=now, floor=created_floor)
            self._entries[key] = entry
            self._bytes += self._model.entry_overhead
        entry.insert_scalar(score, timestamp, blog_id)
        self._bytes += self._model.posting_bytes
        self._postings_total += 1
        if len(entry) > self._k:
            allocator = self._allocator
            if allocator is None or len(entry) > allocator.depth_of(key):
                self._overflow.add(key)
        if key not in self._k_filled and entry.is_k_filled(self._k):
            self._k_filled.add(key)
        return entry

    def insert_record_scalars(
        self,
        keys,
        score: float,
        timestamp: float,
        blog_id: int,
        now: float,
        created_floor: SortKey = MIN_SORT_KEY,
        interner=None,
    ) -> None:
        """Fused ingest of one record under all of its keys at once.

        Requires columnar entries (touches their columns directly): the
        append fast path — a new posting ranking best-so-far, i.e. every
        insert under temporal ranking — runs inline here, so the whole
        record costs one call frame instead of two per key.  Bookkeeping
        is identical to calling :meth:`insert_scalar` per key.

        With ``interner`` given, ``keys`` are *raw* keys and the
        string→id translation happens inside the same loop (one pass
        over the record's keys instead of an intern pass plus an insert
        pass).
        """
        entries = self._entries
        entries_get = entries.get
        factory = self._entry_factory
        k = self._k
        allocator = self._allocator
        overflow = self._overflow
        k_filled = self._k_filled
        model = self._model
        if interner is not None:
            ids_get = interner._ids.get
            id_table = interner._keys
        n_keys = 0
        for key in keys:
            if interner is not None:
                kid = ids_get(key)
                if kid is None:
                    kid = len(id_table)
                    interner._ids[key] = kid
                    id_table.append(key)
                key = kid
            entry = entries_get(key)
            if entry is None:
                entry = factory(key, created_at=now, floor=created_floor)
                entries[key] = entry
                self._bytes += model.entry_overhead
            scores = entry._scores
            if scores and (
                score < scores[-1]
                or (
                    score == scores[-1]
                    and (timestamp, blog_id) < (entry._times[-1], entry._ids[-1])
                )
            ):
                entry.insert_scalar(score, timestamp, blog_id)
            else:
                scores.append(score)
                entry._times.append(timestamp)
                entry._ids.append(blog_id)
                if timestamp > entry.last_arrival:
                    entry.last_arrival = timestamp
            n = len(scores)
            if n >= k:
                if n > k and (allocator is None or n > allocator.depth_of(key)):
                    overflow.add(key)
                if key not in k_filled and entry.is_k_filled(k):
                    k_filled.add(key)
            n_keys += 1
        self._bytes += model.posting_bytes * n_keys
        self._postings_total += n_keys

    def touch_query(self, key: Hashable, now: float) -> None:
        """Record a query access on ``key`` (Phase 3's order key)."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.touch_query(now)

    def charge_removed_postings(
        self, count: int, key: Hashable = _UNSET, *, entry: Optional[PostingList] = None
    ) -> int:
        """Account for ``count`` postings removed directly from an entry.

        Returns the bytes freed.  Callers that mutate a
        :class:`PostingList` in place (trims, per-item removals, drains)
        must call this to keep the index byte counter truthful, and should
        pass the mutated ``key`` (optionally with its ``entry`` to skip
        the dict lookup) so the k-filled set stays incremental.  A keyless
        charge is still correct: it marks the set dirty and the next
        k-filled count pays one rebuild.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        freed = count * self._model.posting_bytes
        self._bytes -= freed
        self._postings_total -= count
        if key is _UNSET:
            self._k_filled_dirty = True
            return freed
        if entry is None:
            entry = self._entries.get(key)
        if entry is not None:
            self._refresh_k_filled(key, entry)
        else:
            # Entry already removed; remove_entry dropped its membership.
            self._k_filled.discard(key)
        return freed

    def clear_overflow(self, key: Hashable) -> None:
        """Drop ``key`` from the overflow list (after Phase 1 shrinks it)."""
        self._overflow.discard(key)

    def wipe_overflow(self) -> None:
        """Wipe the overflow list L (the paper wipes it after Phase 1)."""
        self._overflow.clear()

    def remove_entry(self, key: Hashable) -> PostingList:
        """Remove the whole entry for ``key`` and return it.

        Frees the entry overhead and all of its posting bytes.  Used by
        Phases 2 and 3, which flush entries wholesale.
        """
        entry = self._entries.pop(key)
        self._bytes -= self._model.entry_bytes(len(entry))
        self._postings_total -= len(entry)
        self._overflow.discard(key)
        self._k_filled.discard(key)
        return entry

    def check_integrity(self) -> None:
        """Assert internal invariants (used by tests and debug builds)."""
        expected = sum(
            self._model.entry_bytes(len(entry)) for entry in self._entries.values()
        )
        assert self._bytes == expected, f"byte accounting drift: {self._bytes} != {expected}"
        actual_postings = sum(len(entry) for entry in self._entries.values())
        assert self._postings_total == actual_postings, (
            f"posting count drift: {self._postings_total} != {actual_postings}"
        )
        for key in self._overflow:
            assert key in self._entries, f"overflow key {key!r} has no entry"
            # Overflow may be stale-high after set_k shrinks k mid-cycle,
            # but must never contain entries at or below k postings when k
            # is unchanged; Phase 1 tolerates no-op trims either way.
        for entry in self._entries.values():
            check_columns = getattr(entry, "check_columns", None)
            if check_columns is not None:
                check_columns()
        if self._k_filled_dirty:
            self._rebuild_k_filled()
        expected_k_filled = {
            key
            for key, entry in self._entries.items()
            if len(entry) >= self._k and entry.provable_top(self._k) is not None
        }
        assert self._k_filled == expected_k_filled, (
            f"k-filled set drift: {len(self._k_filled)} tracked != "
            f"{len(expected_k_filled)} recounted"
        )
