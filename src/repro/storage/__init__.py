"""Storage substrate: memory cost model, raw store, indexes, disk tier."""

from repro.storage.disk import DiskArchive, DiskCostModel, DiskStats
from repro.storage.flush_buffer import FlushBuffer
from repro.storage.inverted_index import HashInvertedIndex
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import MIN_SORT_KEY, Posting, PostingList, SortKey
from repro.storage.raw_store import RawDataStore
from repro.storage.segmented_index import Segment, SegmentedIndex

__all__ = [
    "DiskArchive",
    "DiskCostModel",
    "DiskStats",
    "FlushBuffer",
    "HashInvertedIndex",
    "MIN_SORT_KEY",
    "MemoryModel",
    "Posting",
    "PostingList",
    "RawDataStore",
    "Segment",
    "SegmentedIndex",
    "SortKey",
]
