"""Temporally segmented index: the substrate of the FIFO baseline.

The paper's FIFO competitor "is implemented based on a temporally-segmented
hash index that consists of multiple temporally disjoint segments.  On full
memory, the oldest index segments are completely flushed out from memory."
(Section V.)  Each segment owns both the records that arrived during its
time slice and a per-segment hash index over them, so flushing a segment is
a single bulk eviction with no per-item bookkeeping — which is exactly why
FIFO has the lowest overhead and the lowest hit ratio in the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterator, Optional

from repro.errors import DuplicateRecordError
from repro.model.microblog import Microblog
from repro.storage.columnar import ColumnarPostingList
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import MIN_SORT_KEY, Posting, PostingList, SortKey
from repro.storage.topk import merge_run_tails

__all__ = ["Segment", "SegmentedIndex"]


class Segment:
    """One temporally disjoint slice: its records plus its own hash index."""

    __slots__ = (
        "seg_id",
        "start_time",
        "end_time",
        "records",
        "entries",
        "_bytes",
        "_model",
        "_columnar",
    )

    def __init__(
        self,
        seg_id: int,
        start_time: float,
        model: MemoryModel,
        columnar: bool = False,
    ) -> None:
        self.seg_id = seg_id
        self.start_time = start_time
        #: Set when the segment is sealed; open segments have None.
        self.end_time: Optional[float] = None
        self.records: dict[int, Microblog] = {}
        self.entries: dict[Hashable, PostingList] = {}
        self._model = model
        #: Columnar mode stores each per-segment entry as primitive
        #: columns (the caller keys ``entries`` by interned id).
        self._columnar = columnar
        self._bytes = model.segment_overhead

    @property
    def bytes_used(self) -> int:
        return self._bytes

    @property
    def is_sealed(self) -> bool:
        return self.end_time is not None

    def __len__(self) -> int:
        return len(self.records)

    def insert(self, record: Microblog, keys: tuple[Hashable, ...], score: float) -> None:
        """Add ``record`` posted under ``keys`` to this segment."""
        if record.blog_id in self.records:
            raise DuplicateRecordError(record.blog_id)
        self.records[record.blog_id] = record
        self._bytes += self._model.record_bytes(record)
        if self._columnar:
            timestamp = record.timestamp
            blog_id = record.blog_id
            for key in keys:
                entry = self.entries.get(key)
                if entry is None:
                    entry = ColumnarPostingList(key, created_at=timestamp)
                    self.entries[key] = entry
                    self._bytes += self._model.entry_overhead
                entry.insert_scalar(score, timestamp, blog_id)
                self._bytes += self._model.posting_bytes
            return
        posting = Posting(score, record.timestamp, record.blog_id)
        for key in keys:
            entry = self.entries.get(key)
            if entry is None:
                entry = PostingList(key, created_at=record.timestamp)
                self.entries[key] = entry
                self._bytes += self._model.entry_overhead
            entry.insert(posting)
            self._bytes += self._model.posting_bytes

    def seal(self, end_time: float) -> None:
        """Close the segment's time slice; no further inserts."""
        self.end_time = end_time

    def postings_for(self, key: Hashable) -> Optional[PostingList]:
        return self.entries.get(key)


class SegmentedIndex:
    """A chain of time segments with whole-segment eviction.

    Memory completeness is tracked by a single global ``flushed_floor``:
    the best sort key ever evicted.  Under temporal ranking this is the
    boundary timestamp of the newest flushed segment, so everything newer
    is provably in memory.
    """

    def __init__(
        self,
        model: MemoryModel,
        segment_capacity_bytes: int,
        start_time: float = 0.0,
        columnar: bool = False,
    ) -> None:
        if segment_capacity_bytes <= 0:
            raise ValueError(
                f"segment_capacity_bytes must be positive, got {segment_capacity_bytes}"
            )
        self._model = model
        self._segment_capacity = segment_capacity_bytes
        self._columnar = columnar
        self._next_seg_id = 0
        self._segments: deque[Segment] = deque()
        self._segments.append(self._new_segment(start_time))
        #: Best sort key ever flushed; memory is complete strictly above it.
        self.flushed_floor: SortKey = MIN_SORT_KEY

    def _new_segment(self, start_time: float) -> Segment:
        segment = Segment(
            self._next_seg_id, start_time, self._model, columnar=self._columnar
        )
        self._next_seg_id += 1
        return segment

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def bytes_used(self) -> int:
        return sum(segment.bytes_used for segment in self._segments)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def segments(self) -> Iterator[Segment]:
        """Oldest-to-newest iteration over in-memory segments."""
        return iter(self._segments)

    def record_count(self) -> int:
        return sum(len(segment) for segment in self._segments)

    def get_record(self, blog_id: int) -> Optional[Microblog]:
        """Fetch a resident record by id, searching newest segments first."""
        for segment in reversed(self._segments):
            record = segment.records.get(blog_id)
            if record is not None:
                return record
        return None

    def candidates(self, key: Hashable, depth: Optional[int] = None) -> list[Posting]:
        """In-memory postings for ``key``, best rank first.

        With ``depth`` set, only each segment's per-key top ``depth`` is
        gathered before the global merge — the correct global top-``depth``
        at a fraction of the cost for hot keys spanning many segments.

        Segments are temporally disjoint (a record lives in exactly one),
        so per-segment streams never share a blog id and the gather can
        k-way heap-merge best-first streams lazily instead of
        concatenating, dedupping, and re-sorting.
        """
        groups = []
        for segment in self._segments:
            entry = segment.postings_for(key)
            if entry is not None:
                groups.append(
                    entry.iter_best_first() if depth is None else entry.top(depth)
                )
        return merge_run_tails(groups, depth)

    def key_posting_counts(self) -> dict[Hashable, int]:
        """Aggregate in-memory posting count per key (metrics only)."""
        counts: dict[Hashable, int] = {}
        for segment in self._segments:
            for key, entry in segment.entries.items():
                counts[key] = counts.get(key, 0) + len(entry)
        return counts

    def k_filled_count(self, k: int) -> int:
        """Keys with a provably complete in-memory top-k.

        With whole-segment eviction, any key holding at least ``k``
        postings above the global flushed floor qualifies.
        """
        filled = 0
        for count_key, total in self.key_posting_counts().items():
            if total < k:
                continue
            candidates = self.candidates(count_key, depth=k)
            if candidates[k - 1].sort_key > self.flushed_floor:
                filled += 1
        return filled

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, record: Microblog, keys: tuple[Hashable, ...], score: float) -> None:
        """Insert into the open (newest) segment, sealing it when full."""
        current = self._segments[-1]
        if current.bytes_used >= self._segment_capacity:
            current.seal(record.timestamp)
            current = self._new_segment(record.timestamp)
            self._segments.append(current)
        current.insert(record, keys, score)

    def pop_oldest(self) -> Segment:
        """Evict and return the oldest segment, raising the flushed floor.

        The caller (the FIFO policy) moves its contents to disk.  The open
        segment may be evicted too when it is the only one left — the
        degenerate case where one flush must clear everything.
        """
        if not self._segments:
            raise ValueError("no segments to flush")
        segment = self._segments.popleft()
        if not self._segments:
            start = segment.end_time if segment.end_time is not None else segment.start_time
            self._segments.append(self._new_segment(start))
        best = self._best_sort_key(segment)
        if best is not None and best > self.flushed_floor:
            self.flushed_floor = best
        return segment

    @staticmethod
    def _best_sort_key(segment: Segment) -> Optional[SortKey]:
        best: Optional[SortKey] = None
        for entry in segment.entries.values():
            top = entry.best()
            if top is not None and (best is None or top.sort_key > best):
                best = top.sort_key
        return best
