"""The raw data store: complete microblog records with reference counts.

This is the "raw data store" container of the paper's Figure 3.  Each
record carries an auxiliary ``pcount`` (Section III-A): the number of
in-memory index entries that still reference it.  A record physically
leaves memory — and becomes eligible for the disk flush buffer — only when
its ``pcount`` falls to zero.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import DuplicateRecordError, UnknownRecordError
from repro.model.microblog import Microblog
from repro.storage.memory_model import MemoryModel

__all__ = ["RawDataStore"]


class RawDataStore:
    """In-memory container of complete records, keyed by ``blog_id``."""

    def __init__(self, model: MemoryModel) -> None:
        self._model = model
        self._records: dict[int, Microblog] = {}
        self._pcounts: dict[int, int] = {}
        #: Modelled bytes charged per resident record, memoized at insert
        #: time.  Removal refunds exactly what was charged, so the budget
        #: stays balanced even if the model's parameters change mid-run
        #: (and the refund skips re-tokenizing the record text).
        self._costs: dict[int, int] = {}
        self._bytes = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, blog_id: int) -> bool:
        return blog_id in self._records

    def __iter__(self) -> Iterator[Microblog]:
        return iter(self._records.values())

    @property
    def bytes_used(self) -> int:
        """Modelled bytes currently occupied by raw records."""
        return self._bytes

    def get(self, blog_id: int) -> Microblog:
        """Return the record for ``blog_id``.

        Raises :class:`UnknownRecordError` when the record is not resident.
        """
        try:
            return self._records[blog_id]
        except KeyError:
            raise UnknownRecordError(blog_id) from None

    def pcount(self, blog_id: int) -> int:
        """Current reference count of a resident record."""
        try:
            return self._pcounts[blog_id]
        except KeyError:
            raise UnknownRecordError(blog_id) from None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, record: Microblog, pcount: int) -> int:
        """Store ``record`` with an initial reference count.

        Returns the modelled bytes charged.  ``pcount`` is the number of
        index entries the record was posted under (Section III-A
        initialises it to the number of the record's keywords).
        """
        if record.blog_id in self._records:
            raise DuplicateRecordError(record.blog_id)
        if pcount <= 0:
            raise ValueError(f"pcount must be positive, got {pcount}")
        cost = self._model.record_bytes(record)
        self._records[record.blog_id] = record
        self._pcounts[record.blog_id] = pcount
        self._costs[record.blog_id] = cost
        self._bytes += cost
        return cost

    def decref(self, blog_id: int) -> Microblog | None:
        """Drop one index reference from a record.

        When the count reaches zero the record is removed from the store
        and returned (the caller moves it to the flush buffer, per the
        paper: "whenever M.pcount reaches zero ... flushed to disk right
        away").  Otherwise returns None and the record stays resident.
        """
        try:
            count = self._pcounts[blog_id]
        except KeyError:
            raise UnknownRecordError(blog_id) from None
        if count <= 0:
            raise ValueError(f"pcount underflow for blog_id={blog_id}")
        count -= 1
        if count > 0:
            self._pcounts[blog_id] = count
            return None
        record = self._records.pop(blog_id)
        del self._pcounts[blog_id]
        self._bytes -= self._costs.pop(blog_id)
        return record

    def decref_many(self, blog_ids) -> tuple[list[Microblog], int]:
        """Batch :meth:`decref` over an iterable of ids.

        Returns the records whose reference count reached zero (in input
        order — identical to calling :meth:`decref` per id) together with
        the total bytes freed.  This is the arena-eviction path: one call
        per flushed :class:`~repro.storage.columnar.PostingBlock` instead
        of one per posting.
        """
        pcounts = self._pcounts
        released: list[Microblog] = []
        freed = 0
        for blog_id in blog_ids:
            try:
                count = pcounts[blog_id]
            except KeyError:
                raise UnknownRecordError(blog_id) from None
            if count <= 0:
                raise ValueError(f"pcount underflow for blog_id={blog_id}")
            count -= 1
            if count > 0:
                pcounts[blog_id] = count
                continue
            released.append(self._records.pop(blog_id))
            del pcounts[blog_id]
            freed += self._costs.pop(blog_id)
        self._bytes -= freed
        return released, freed

    def remove(self, blog_id: int) -> Microblog:
        """Forcibly remove a record regardless of its reference count.

        Used by per-item policies (LRU) that evict a record from all of its
        entries at once.  Returns the removed record.
        """
        try:
            record = self._records.pop(blog_id)
        except KeyError:
            raise UnknownRecordError(blog_id) from None
        del self._pcounts[blog_id]
        self._bytes -= self._costs.pop(blog_id)
        return record

    def check_integrity(self) -> None:
        """Assert internal invariants (used by tests and debug builds).

        The byte counter is checked against the *memoized* per-record
        costs, not a recomputation under the current model: the charge at
        insert time is the truth the refund must match.
        """
        assert set(self._records) == set(self._pcounts), "record/pcount key mismatch"
        assert set(self._records) == set(self._costs), "record/cost key mismatch"
        assert all(c > 0 for c in self._pcounts.values()), "non-positive pcount"
        expected = sum(self._costs.values())
        assert self._bytes == expected, f"byte accounting drift: {self._bytes} != {expected}"
