"""Flush buffer: staging area between a flushing policy and the disk.

"All flushed data are collected in a temporary main-memory buffer before
writing them to disk.  This is mainly to reduce the number of I/O
operations." (Section III-A.)  The buffer accumulates evicted records and
postings during one flush operation and commits them to the
:class:`~repro.storage.disk.DiskArchive` in a single batch.  It also tracks
its peak size — the paper reports the ~2 GB temporary buffer kFlushing
needs — which feeds the Figure 10(a) overhead measurement.
"""

from __future__ import annotations

import statistics
from collections import deque
from typing import Hashable

from repro.model.microblog import Microblog
from repro.storage.columnar import PostingBlock
from repro.storage.disk import DiskArchive
from repro.storage.interner import KeyInterner
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting

__all__ = ["FlushBuffer"]


class FlushBuffer:
    """Accumulates one flush batch, then commits it in a single write.

    Columnar engines stage whole :class:`PostingBlock` column slices
    (``add_posting_block``) instead of per-posting tuples, and key the
    buffer by interned id; ``interner`` translates back to raw keys at
    the commit boundary, so the disk archive always sees the same wire
    format regardless of the memory-tier layout.
    """

    def __init__(
        self,
        model: MemoryModel,
        disk: DiskArchive,
        interner: KeyInterner | None = None,
    ) -> None:
        self._model = model
        self._disk = disk
        self._interner = interner
        self._records: list[Microblog] = []
        self._postings: dict[Hashable, list[Posting]] = {}
        #: Arena batches staged by the columnar eviction path, in staging
        #: order per key (each block is internally ascending by sort key,
        #: exactly the order the legacy path staged individual postings).
        self._blocks: dict[Hashable, list[PostingBlock]] = {}
        self._bytes = 0
        #: Largest modelled size the buffer ever reached.
        self.peak_bytes = 0
        #: Staged sizes of the most recent commits.  The first flush after
        #: a cold start evicts far more than the steady-state budget; the
        #: Figure 10(a) overhead metric wants the *steady-state* buffer
        #: requirement, i.e. the peak over recent flushes only.
        self._recent_commit_bytes: deque[int] = deque(maxlen=4)

    @property
    def bytes_buffered(self) -> int:
        return self._bytes

    @property
    def is_empty(self) -> bool:
        return not self._records and not self._postings and not self._blocks

    def add_record(self, record: Microblog) -> None:
        """Stage a record whose reference count reached zero."""
        self._records.append(record)
        self._bytes += self._model.record_bytes(record)
        self.peak_bytes = max(self.peak_bytes, self._bytes)

    def add_records(self, records: list[Microblog], total_bytes: int) -> None:
        """Stage a batch of released records with their pre-summed cost.

        The arena eviction path already knows the exact bytes freed (the
        raw store's memoized per-record costs), so the buffer charges the
        batch without re-tokenizing any record.
        """
        if not records:
            return
        self._records.extend(records)
        self._bytes += total_bytes
        self.peak_bytes = max(self.peak_bytes, self._bytes)

    def add_posting(self, key: Hashable, posting: Posting) -> None:
        """Stage one trimmed posting under ``key``."""
        self._postings.setdefault(key, []).append(posting)
        self._bytes += self._model.posting_bytes
        self.peak_bytes = max(self.peak_bytes, self._bytes)

    def add_postings(self, key: Hashable, postings: list[Posting]) -> None:
        """Stage a batch of trimmed postings under ``key``."""
        if not postings:
            return
        self._postings.setdefault(key, []).extend(postings)
        self._bytes += self._model.postings_bytes(len(postings))
        self.peak_bytes = max(self.peak_bytes, self._bytes)

    def add_posting_block(self, key: Hashable, block: PostingBlock) -> None:
        """Stage one evicted column slice under ``key`` (columnar path).

        The block is kept intact — three primitive arrays — until the
        commit boundary; no per-posting tuple exists while the batch sits
        in the buffer.
        """
        if not block:
            return
        self._blocks.setdefault(key, []).append(block)
        self._bytes += self._model.postings_bytes(len(block))
        self.peak_bytes = max(self.peak_bytes, self._bytes)

    @property
    def steady_peak_bytes(self) -> int:
        """Typical staged size of recent flushes (Figure 10(a)).

        The median over the recent-commit window discounts the oversized
        cold-start flushes (a fresh store's first flush can evict over
        half of memory; steady-state flushes evict ~the budget B).
        """
        if not self._recent_commit_bytes:
            return self._bytes
        return int(statistics.median(self._recent_commit_bytes))

    def absorb(self, other: "FlushBuffer") -> int:
        """Adopt everything another buffer has staged (memtable handoff).

        Used when a rotated overlay engine is merged back into its
        long-lived sibling under pipelined ingest: any batch the overlay
        staged but never committed moves here losslessly, so it still
        reaches disk with the next commit.  Returns the bytes adopted;
        ``other`` is empty afterwards.
        """
        if other.is_empty:
            return 0
        adopted = other._bytes
        self._records.extend(other._records)
        for key, postings in other._postings.items():
            self._postings.setdefault(key, []).extend(postings)
        for key, blocks in other._blocks.items():
            self._blocks.setdefault(key, []).extend(blocks)
        self._bytes += adopted
        self.peak_bytes = max(self.peak_bytes, self._bytes)
        other._records = []
        other._postings = {}
        other._blocks = {}
        other._bytes = 0
        return adopted

    def _assemble_postings(self) -> dict[Hashable, list[Posting]]:
        """Flatten staged blocks and translate interned keys for commit.

        The fast path — no blocks, no interner — hands the staged dict
        through untouched (the legacy wire format, byte for byte).
        """
        if not self._blocks and self._interner is None:
            return self._postings
        unintern = (
            self._interner.unintern if self._interner is not None else None
        )
        assembled: dict[Hashable, list[Posting]] = {}
        for key, postings in self._postings.items():
            raw = key if unintern is None else unintern(key)
            assembled.setdefault(raw, []).extend(postings)
        for key, blocks in self._blocks.items():
            raw = key if unintern is None else unintern(key)
            target = assembled.setdefault(raw, [])
            for block in blocks:
                target.extend(block.postings())
        return assembled

    def _assemble_interned(self) -> dict[Hashable, object]:
        """Commit payload for a disk that shares our interner.

        Keys stay as dense ids (the disk skips its own re-intern), and a
        key whose staged evictions are exactly one block passes that
        block through *unexpanded* — the common Phase 1/2/3 case — so no
        ``Posting`` tuple is built between eviction and disk storage.
        Keys with loose postings or several blocks fall back to one
        flattened list in staging order (identical to the legacy wire
        format).
        """
        if not self._blocks:
            return self._postings
        assembled: dict[Hashable, object] = dict(self._postings)
        for key, blocks in self._blocks.items():
            loose = assembled.get(key)
            if loose is None:
                combined = blocks[0]
                for block in blocks[1:]:
                    if combined is None:
                        break
                    if (
                        block.scores[0],
                        block.times[0],
                        block.ids[0],
                    ) > combined.best_sort_key():
                        # Staging order is ascending across one flush's
                        # blocks for a key (Phase 1 trims the worst
                        # postings before a later phase drains the rest),
                        # so concatenating the columns keeps one sorted
                        # block on the wire.
                        if combined is blocks[0]:
                            combined = PostingBlock(
                                combined.scores[:],
                                combined.times[:],
                                combined.ids[:],
                            )
                        combined.scores.extend(block.scores)
                        combined.times.extend(block.times)
                        combined.ids.extend(block.ids)
                    else:
                        combined = None
                if combined is not None:
                    assembled[key] = combined
                    continue
            merged: list[Posting] = list(loose) if loose is not None else []
            for block in blocks:
                merged.extend(block.postings())
            assembled[key] = merged
        return assembled

    def commit(self) -> int:
        """Write everything staged to disk in one batch; returns bytes
        written.  The buffer is empty afterwards and reusable."""
        if self.is_empty:
            return 0
        self._recent_commit_bytes.append(self._bytes)
        interner = self._interner
        if interner is not None and getattr(self._disk, "_interner", None) is interner:
            written = self._disk.commit_flush(
                self._records, self._assemble_interned(), keys_interned=True
            )
        else:
            written = self._disk.commit_flush(
                self._records, self._assemble_postings()
            )
        self._records = []
        self._postings = {}
        self._blocks = {}
        self._bytes = 0
        return written
