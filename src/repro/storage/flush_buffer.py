"""Flush buffer: staging area between a flushing policy and the disk.

"All flushed data are collected in a temporary main-memory buffer before
writing them to disk.  This is mainly to reduce the number of I/O
operations." (Section III-A.)  The buffer accumulates evicted records and
postings during one flush operation and commits them to the
:class:`~repro.storage.disk.DiskArchive` in a single batch.  It also tracks
its peak size — the paper reports the ~2 GB temporary buffer kFlushing
needs — which feeds the Figure 10(a) overhead measurement.
"""

from __future__ import annotations

import statistics
from collections import deque
from typing import Hashable

from repro.model.microblog import Microblog
from repro.storage.disk import DiskArchive
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import Posting

__all__ = ["FlushBuffer"]


class FlushBuffer:
    """Accumulates one flush batch, then commits it in a single write."""

    def __init__(self, model: MemoryModel, disk: DiskArchive) -> None:
        self._model = model
        self._disk = disk
        self._records: list[Microblog] = []
        self._postings: dict[Hashable, list[Posting]] = {}
        self._bytes = 0
        #: Largest modelled size the buffer ever reached.
        self.peak_bytes = 0
        #: Staged sizes of the most recent commits.  The first flush after
        #: a cold start evicts far more than the steady-state budget; the
        #: Figure 10(a) overhead metric wants the *steady-state* buffer
        #: requirement, i.e. the peak over recent flushes only.
        self._recent_commit_bytes: deque[int] = deque(maxlen=4)

    @property
    def bytes_buffered(self) -> int:
        return self._bytes

    @property
    def is_empty(self) -> bool:
        return not self._records and not self._postings

    def add_record(self, record: Microblog) -> None:
        """Stage a record whose reference count reached zero."""
        self._records.append(record)
        self._bytes += self._model.record_bytes(record)
        self.peak_bytes = max(self.peak_bytes, self._bytes)

    def add_posting(self, key: Hashable, posting: Posting) -> None:
        """Stage one trimmed posting under ``key``."""
        self._postings.setdefault(key, []).append(posting)
        self._bytes += self._model.posting_bytes
        self.peak_bytes = max(self.peak_bytes, self._bytes)

    def add_postings(self, key: Hashable, postings: list[Posting]) -> None:
        """Stage a batch of trimmed postings under ``key``."""
        if not postings:
            return
        self._postings.setdefault(key, []).extend(postings)
        self._bytes += self._model.postings_bytes(len(postings))
        self.peak_bytes = max(self.peak_bytes, self._bytes)

    @property
    def steady_peak_bytes(self) -> int:
        """Typical staged size of recent flushes (Figure 10(a)).

        The median over the recent-commit window discounts the oversized
        cold-start flushes (a fresh store's first flush can evict over
        half of memory; steady-state flushes evict ~the budget B).
        """
        if not self._recent_commit_bytes:
            return self._bytes
        return int(statistics.median(self._recent_commit_bytes))

    def absorb(self, other: "FlushBuffer") -> int:
        """Adopt everything another buffer has staged (memtable handoff).

        Used when a rotated overlay engine is merged back into its
        long-lived sibling under pipelined ingest: any batch the overlay
        staged but never committed moves here losslessly, so it still
        reaches disk with the next commit.  Returns the bytes adopted;
        ``other`` is empty afterwards.
        """
        if other.is_empty:
            return 0
        adopted = other._bytes
        self._records.extend(other._records)
        for key, postings in other._postings.items():
            self._postings.setdefault(key, []).extend(postings)
        self._bytes += adopted
        self.peak_bytes = max(self.peak_bytes, self._bytes)
        other._records = []
        other._postings = {}
        other._bytes = 0
        return adopted

    def commit(self) -> int:
        """Write everything staged to disk in one batch; returns bytes
        written.  The buffer is empty afterwards and reusable."""
        if self.is_empty:
            return 0
        self._recent_commit_bytes.append(self._bytes)
        written = self._disk.commit_flush(self._records, self._postings)
        self._records = []
        self._postings = {}
        self._bytes = 0
        return written
