"""Columnar posting storage: array-backed parallel columns per entry.

This is the compact counterpart of :class:`~repro.storage.posting_list.
PostingList`: instead of a Python list of ``Posting`` NamedTuples, each
entry keeps three parallel primitive columns —

::

    _scores : array('d')   ranking score
    _times  : array('d')   arrival timestamp
    _ids    : array('q')   microblog id

— in the same ascending sort-key order (best posting at the end), so the
whole public surface of ``PostingList`` is preserved posting-for-posting
while the per-posting cost drops from a ~64-byte tuple plus a list slot
to 24 bytes of raw column data.

Batch eviction (Phase 1 trims, Phase 2/3 drains) moves *column slices*
into a :class:`PostingBlock` — an arena-style batch of the same three
columns — instead of materializing one tuple per evicted posting.  The
flush buffer carries blocks through to the disk commit and only then
expands them, so the eviction hot path never touches per-object storage.

``Posting`` tuples still exist at the boundaries: query results, views,
and ``remove_id`` materialize them on demand, which keeps the executor
and every test oblivious to the layout underneath.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Hashable, Iterator, Optional

from repro.storage.posting_list import MIN_SORT_KEY, Posting, SortKey

__all__ = ["ColumnarBestFirstView", "ColumnarPostingList", "PostingBlock"]

#: Modelled bytes of one posting held columnar: 8 (id) + 8 (score) +
#: 8 (timestamp).  ``MemoryModel.columnar_layout()`` uses this.
COLUMN_BYTES_PER_POSTING = 24


def _new_scores() -> array:
    return array("d")


def _new_times() -> array:
    return array("d")


def _new_ids() -> array:
    return array("q")


class PostingBlock:
    """An arena batch of evicted postings: three aligned column slices.

    Produced by the trim/drain operations of :class:`ColumnarPostingList`
    and consumed by the flush buffer.  Order inside a block is ascending
    by sort key (the storage order of the source entry), so
    :meth:`best_sort_key` is the last element and :meth:`postings`
    expands in exactly the order the legacy list-based path produced.
    """

    __slots__ = ("scores", "times", "ids")

    def __init__(self, scores: array, times: array, ids: array) -> None:
        self.scores = scores
        self.times = times
        self.ids = ids

    def __len__(self) -> int:
        return len(self.ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PostingBlock(n={len(self.ids)})"

    def best_sort_key(self) -> SortKey:
        """Sort key of the best posting in the block (ascending ⇒ last)."""
        return (self.scores[-1], self.times[-1], self.ids[-1])

    def postings(self) -> list[Posting]:
        """Expand to ``Posting`` tuples, ascending (legacy drain order)."""
        return list(map(Posting, self.scores, self.times, self.ids))


class ColumnarBestFirstView:
    """Best-rank-first sequence view over an entry's live columns.

    The columnar twin of :class:`~repro.storage.posting_list.
    BestFirstView`: aliases the entry's arrays and materializes
    ``Posting`` tuples only for the elements actually read.  Step-1
    slices cut one reversed sub-slice per column — no intermediate
    full-copy, no per-element indexing loop.
    """

    __slots__ = ("_scores", "_times", "_ids")

    def __init__(self, scores: array, times: array, ids: array) -> None:
        self._scores = scores
        self._times = times
        self._ids = ids

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[Posting]:
        return map(
            Posting,
            reversed(self._scores),
            reversed(self._times),
            reversed(self._ids),
        )

    def __getitem__(self, index):
        n = len(self._ids)
        if isinstance(index, slice):
            start, stop, step = index.indices(n)
            if step == 1:
                if start >= stop:
                    return ()
                lo, hi = n - stop, n - start
                return tuple(
                    map(
                        Posting,
                        self._scores[lo:hi][::-1],
                        self._times[lo:hi][::-1],
                        self._ids[lo:hi][::-1],
                    )
                )
            return tuple(
                Posting(
                    self._scores[n - 1 - i],
                    self._times[n - 1 - i],
                    self._ids[n - 1 - i],
                )
                for i in range(start, stop, step)
            )
        if index < -n or index >= n:
            raise IndexError(index)
        i = n - 1 - index if index >= 0 else -1 - index - n
        return Posting(self._scores[i], self._times[i], self._ids[i])

    def __eq__(self, other) -> bool:
        if isinstance(other, (tuple, list)) or hasattr(other, "__len__"):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnarBestFirstView(n={len(self._ids)})"


class ColumnarPostingList:
    """Array-backed posting list, API-compatible with ``PostingList``.

    Storage order is identical (ascending sort key, best at the end) and
    every operation is posting-for-posting equivalent to the legacy
    list-of-tuples entry — proven by the property tests in
    ``tests/test_columnar.py``.  The differences are purely mechanical:

    * inserts append/insort primitive values, allocating zero tuples on
      the fast path;
    * trims and drains return :class:`PostingBlock` column slices rather
      than ``list[Posting]``;
    * the MK-variant conditional trims take an id-predicate
      (``keep_id(blog_id)``) instead of a posting-predicate, because the
      caller only ever inspected ``p.blog_id``.
    """

    __slots__ = (
        "key",
        "_scores",
        "_times",
        "_ids",
        "last_arrival",
        "last_query",
        "floor",
    )

    def __init__(
        self,
        key: Hashable,
        created_at: float,
        floor: SortKey = MIN_SORT_KEY,
    ) -> None:
        self.key = key
        self._scores = _new_scores()
        self._times = _new_times()
        self._ids = _new_ids()
        self.last_arrival: float = created_at
        self.last_query: float = created_at
        self.floor: SortKey = floor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[Posting]:
        return map(Posting, self._scores, self._times, self._ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnarPostingList(key={self.key!r}, n={len(self._ids)})"

    @property
    def is_complete(self) -> bool:
        return self.floor == MIN_SORT_KEY

    def top(self, k: int) -> list[Posting]:
        """Up to ``k`` best postings, best first — one reversed slice per
        column, zero intermediate copies."""
        if k <= 0:
            return []
        return list(
            map(
                Posting,
                self._scores[-1 : -k - 1 : -1],
                self._times[-1 : -k - 1 : -1],
                self._ids[-1 : -k - 1 : -1],
            )
        )

    def iter_best_first(self) -> Iterator[Posting]:
        return map(
            Posting,
            reversed(self._scores),
            reversed(self._times),
            reversed(self._ids),
        )

    def best_first(self) -> ColumnarBestFirstView:
        return ColumnarBestFirstView(self._scores, self._times, self._ids)

    def is_k_filled(self, k: int) -> bool:
        n = len(self._ids)
        return (
            0 < k <= n
            and (self._scores[-k], self._times[-k], self._ids[-k]) > self.floor
        )

    def best(self) -> Optional[Posting]:
        if not self._ids:
            return None
        return Posting(self._scores[-1], self._times[-1], self._ids[-1])

    def worst(self) -> Optional[Posting]:
        if not self._ids:
            return None
        return Posting(self._scores[0], self._times[0], self._ids[0])

    def best_sort_key(self) -> Optional[SortKey]:
        if not self._ids:
            return None
        return (self._scores[-1], self._times[-1], self._ids[-1])

    def contains_id(self, blog_id: int) -> bool:
        return blog_id in self._ids

    def contains_in_top(self, blog_id: int, k: int) -> bool:
        if k <= 0:
            return False
        return blog_id in self._ids[-k:]

    def topk_id_set(self, k: int) -> frozenset[int]:
        """Ids of the top-k postings (flush-cycle memo building block)."""
        if k <= 0:
            return frozenset()
        return frozenset(self._ids[-k:])

    def id_set(self) -> set[int]:
        """All member ids (flush-cycle memo building block)."""
        return set(self._ids)

    def provable_top(self, k: int) -> Optional[list[Posting]]:
        n = len(self._ids)
        if n < k:
            return None
        if (self._scores[-k], self._times[-k], self._ids[-k]) <= self.floor:
            return None
        return self.top(k)

    def count_above_floor(self) -> int:
        if self.floor == MIN_SORT_KEY:
            return len(self._ids)
        return len(self._ids) - self._bisect_key(self.floor)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _bisect_key(self, key: SortKey) -> int:
        """Rightmost insertion point for ``key`` (insort-right order).

        The score column alone narrows the window with two C-speed
        bisects; the Python refinement loop only runs over score ties.
        """
        scores = self._scores
        score = key[0]
        lo = bisect_left(scores, score)
        hi = bisect_right(scores, score, lo)
        if lo == hi:
            return lo
        times, ids = self._times, self._ids
        tie = (key[1], key[2])
        while lo < hi:
            mid = (lo + hi) // 2
            if (times[mid], ids[mid]) <= tie:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def insert_scalar(self, score: float, timestamp: float, blog_id: int) -> None:
        """Insert one posting from scalars — the zero-allocation path.

        Semantics match ``PostingList.insert(Posting(...))`` exactly: an
        append when the new posting ranks best-so-far (the common case
        under temporal ranking), otherwise an insort at the equivalent
        position.
        """
        scores = self._scores
        times = self._times
        ids = self._ids
        if scores:
            last = scores[-1]
            if score < last or (
                score == last and (timestamp, blog_id) < (times[-1], ids[-1])
            ):
                at = self._bisect_key((score, timestamp, blog_id))
                scores.insert(at, score)
                times.insert(at, timestamp)
                ids.insert(at, blog_id)
                if timestamp > self.last_arrival:
                    self.last_arrival = timestamp
                return
        scores.append(score)
        times.append(timestamp)
        ids.append(blog_id)
        if timestamp > self.last_arrival:
            self.last_arrival = timestamp

    def insert(self, posting: Posting) -> None:
        """``PostingList``-compatible insert (absorb/reconcile paths)."""
        self.insert_scalar(posting.score, posting.timestamp, posting.blog_id)

    def touch_query(self, now: float) -> None:
        if now > self.last_query:
            self.last_query = now

    def _raise_floor(self, key: SortKey) -> None:
        if key > self.floor:
            self.floor = key

    def _cut_prefix(self, count: int) -> PostingBlock:
        """Slice the worst-ranked ``count`` postings off into a block."""
        scores, times, ids = self._scores, self._times, self._ids
        block = PostingBlock(scores[:count], times[:count], ids[:count])
        del scores[:count]
        del times[:count]
        del ids[:count]
        return block

    def trim_beyond(self, k: int) -> PostingBlock:
        """Phase 1: slice everything beyond the top-k into a block."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        excess = len(self._ids) - k
        if excess <= 0:
            return PostingBlock(_new_scores(), _new_times(), _new_ids())
        block = self._cut_prefix(excess)
        self._raise_floor(block.best_sort_key())
        return block

    def trim_if_ids(self, k: int, keep_id) -> PostingBlock:
        """MK Phase 1: trim beyond-top-k postings unless ``keep_id(id)``.

        Equivalent to ``PostingList.trim_if`` — the legacy predicate only
        ever inspected ``posting.blog_id``, and ids are unique within an
        entry, so removing the non-kept *candidates in place* removes
        exactly the postings the legacy id-set filter removed.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        scores, times, ids = self._scores, self._times, self._ids
        excess = len(ids) - k
        if excess <= 0:
            return PostingBlock(_new_scores(), _new_times(), _new_ids())
        rem_s, rem_t, rem_i = _new_scores(), _new_times(), _new_ids()
        keep_s, keep_t, keep_i = _new_scores(), _new_times(), _new_ids()
        for i in range(excess):
            if keep_id(ids[i]):
                keep_s.append(scores[i])
                keep_t.append(times[i])
                keep_i.append(ids[i])
            else:
                rem_s.append(scores[i])
                rem_t.append(times[i])
                rem_i.append(ids[i])
        if not rem_i:
            return PostingBlock(rem_s, rem_t, rem_i)
        scores[:excess] = keep_s
        times[:excess] = keep_t
        ids[:excess] = keep_i
        block = PostingBlock(rem_s, rem_t, rem_i)
        self._raise_floor(block.best_sort_key())
        return block

    def remove_id(self, blog_id: int) -> Optional[Posting]:
        """Remove one posting by id (LRU per-item eviction)."""
        try:
            i = self._ids.index(blog_id)
        except ValueError:
            return None
        posting = Posting(self._scores.pop(i), self._times.pop(i), blog_id)
        del self._ids[i]
        self._raise_floor(posting.sort_key)
        return posting

    def drain(self) -> PostingBlock:
        """Phase 2/3 wholesale flush: hand the live columns over."""
        block = PostingBlock(self._scores, self._times, self._ids)
        self._scores = _new_scores()
        self._times = _new_times()
        self._ids = _new_ids()
        if block.ids:
            self._raise_floor(block.best_sort_key())
        return block

    def drain_if_ids(self, keep_id) -> PostingBlock:
        """MK Phase 2: drain all postings except ``keep_id(id)`` ones."""
        scores, times, ids = self._scores, self._times, self._ids
        rem_s, rem_t, rem_i = _new_scores(), _new_times(), _new_ids()
        keep_s, keep_t, keep_i = _new_scores(), _new_times(), _new_ids()
        for i, bid in enumerate(ids):
            if keep_id(bid):
                keep_s.append(scores[i])
                keep_t.append(times[i])
                keep_i.append(bid)
            else:
                rem_s.append(scores[i])
                rem_t.append(times[i])
                rem_i.append(bid)
        if not rem_i:
            return PostingBlock(rem_s, rem_t, rem_i)
        self._scores, self._times, self._ids = keep_s, keep_t, keep_i
        block = PostingBlock(rem_s, rem_t, rem_i)
        self._raise_floor(block.best_sort_key())
        return block

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def check_columns(self) -> None:
        """Assert column alignment and ascending sort order."""
        n = len(self._ids)
        assert len(self._scores) == n and len(self._times) == n, (
            f"column length drift for {self.key!r}: "
            f"scores={len(self._scores)} times={len(self._times)} ids={n}"
        )
        prev: Optional[SortKey] = None
        for i in range(n):
            key = (self._scores[i], self._times[i], self._ids[i])
            assert prev is None or key >= prev, (
                f"sort-order violation for {self.key!r} at column row {i}"
            )
            prev = key
