"""The memory-engine interface every flushing policy implements.

The paper frames a flushing policy as a pluggable module over the
in-memory store (Figure 2), but in practice each policy dictates part of
the store's organisation — FIFO needs a temporally segmented index, LRU
needs a global recency list, kFlushing needs reference counts and the
overflow list.  A :class:`MemoryEngine` therefore bundles one policy with
the store layout it needs, behind a uniform contract the
:class:`~repro.engine.system.MicroblogSystem` and the query executor
program against:

* ``insert`` digests one record;
* ``lookup`` returns the in-memory postings of a key together with its
  **completeness floor**, so the executor can decide provable memory hits;
* ``note_query`` feeds query-access information back to the policy (LRU
  recency touches, kFlushing's per-entry last-query timestamps);
* ``flush`` evicts at least the configured budget to the disk archive and
  returns a :class:`FlushReport`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional, Sequence

from repro.core.adaptive import AdaptiveController, AdaptiveSettings, KeyHeat
from repro.core.eviction_ledger import EvictionLedger, EvictionRecord
from repro.errors import ConfigurationError
from repro.model.attributes import AttributeExtractor
from repro.model.microblog import Microblog
from repro.model.ranking import RankingFunction
from repro.obs import Instrumentation
from repro.storage.disk import DiskArchive
from repro.storage.interner import KeyInterner, get_global_interner
from repro.storage.memory_model import MemoryModel
from repro.storage.posting_list import MIN_SORT_KEY, Posting, SortKey

__all__ = ["LookupResult", "FlushReport", "MemoryEngine"]


@dataclass(frozen=True)
class LookupResult:
    """In-memory postings of one key plus their completeness guarantee.

    ``candidates`` are best-rank-first: a tuple for bounded lookups, or a
    zero-copy :class:`~repro.storage.posting_list.BestFirstView` for
    unbounded ones (both are read-only sequences; slicing always yields
    tuples).  Every posting for this key whose sort key is strictly above
    ``floor`` is guaranteed to be present in ``candidates``; below the
    floor, memory may be missing items and only the disk knows the truth.
    """

    key: Hashable
    candidates: Sequence[Posting]
    floor: SortKey

    def provable_top(self, k: int) -> Optional[tuple[Posting, ...]]:
        """The top-k iff provably complete in memory, else None."""
        if len(self.candidates) < k:
            return None
        top = self.candidates[:k]
        if top[-1].sort_key <= self.floor:
            return None
        return tuple(top)

    @property
    def count_above_floor(self) -> int:
        return sum(1 for p in self.candidates if p.sort_key > self.floor)


@dataclass
class FlushReport:
    """What one flush operation did, for metrics and the Figure 5 series."""

    policy: str
    triggered_at: float
    target_bytes: int
    freed_bytes: int = 0
    records_flushed: int = 0
    postings_flushed: int = 0
    entries_flushed: int = 0
    bytes_written_to_disk: int = 0
    #: Freed bytes attributed to each kFlushing phase (empty for baselines).
    phase_freed: dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds the flush took (the CPU overhead the paper keeps
    #: off the digestion path via a separate thread).
    wall_seconds: float = 0.0

    @property
    def met_target(self) -> bool:
        return self.freed_bytes >= self.target_bytes


class MemoryEngine(ABC):
    """One flushing policy bundled with the store layout it requires."""

    #: Stable identifier: "kflushing", "kflushing-mk", "fifo", or "lru".
    name: str = "abstract"

    def __init__(
        self,
        *,
        model: MemoryModel,
        ranking: RankingFunction,
        attribute: AttributeExtractor,
        k: int,
        capacity_bytes: int,
        flush_fraction: float,
        disk: DiskArchive,
        obs: Optional[Instrumentation] = None,
        columnar: bool = False,
        interner: Optional[KeyInterner] = None,
        ledger_capacity: Optional[int] = None,
        adaptive: Optional[AdaptiveSettings] = None,
    ) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        if capacity_bytes <= 0:
            raise ConfigurationError(f"capacity_bytes must be positive, got {capacity_bytes}")
        if not 0.0 < flush_fraction <= 1.0:
            raise ConfigurationError(
                f"flush_fraction must be in (0, 1], got {flush_fraction}"
            )
        #: Columnar memory tier: array-backed posting columns + interned
        #: key ids on every hot dict.  Off by default; the legacy object
        #: layout stays the reference path for differential tests.
        self.columnar = columnar
        self.interner: Optional[KeyInterner] = (
            (interner if interner is not None else get_global_interner())
            if columnar
            else None
        )
        self.model = model
        self.ranking = ranking
        self.attribute = attribute
        self.k = k
        self.capacity_bytes = capacity_bytes
        self.flush_fraction = flush_fraction
        self.disk = disk
        self.obs = obs if obs is not None else Instrumentation()
        #: Eviction-cause ledger (PR 5): populated when the shared
        #: Instrumentation has attribution on or the adaptive controller
        #: is active (it consumes miss causes), None otherwise so the
        #: default path pays a single None test per eviction.
        self.eviction_ledger: Optional[EvictionLedger] = (
            EvictionLedger(
                ledger_capacity
                if ledger_capacity is not None
                else EvictionLedger.DEFAULT_CAPACITY
            )
            if (self.obs.attribution or adaptive is not None)
            else None
        )
        #: Ledger-overflow counter, pre-created so it is present (at 0)
        #: in every snapshot dump whenever the ledger itself exists.
        self._ledger_dropped = (
            self.obs.registry.counter("eviction_ledger.dropped")
            if self.eviction_ledger is not None
            else None
        )
        #: Per-key query/eviction heat (hot-keys snapshot + controller
        #: input); tracked under the same gate as the ledger.
        self.key_heat: Optional[KeyHeat] = (
            KeyHeat() if self.eviction_ledger is not None else None
        )
        #: Feedback controller (PR 9): retunes per-key retention depth
        #: and escalation slack at flush boundaries.  None = the static
        #: paper behaviour, bit-identical to pre-adaptive builds.
        self.adaptive: Optional[AdaptiveController] = (
            AdaptiveController(adaptive, self) if adaptive is not None else None
        )
        self.flush_reports: list[FlushReport] = []

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    @abstractmethod
    def insert(self, record: Microblog) -> bool:
        """Digest one record.  Returns False when the record has no keys
        under this attribute (and is therefore skipped)."""

    @abstractmethod
    def lookup(self, key: Hashable, depth: Optional[int] = None) -> LookupResult:
        """In-memory postings for ``key`` with their completeness floor.

        ``depth`` caps the number of (best-ranked) candidates returned;
        None returns everything.  Single-key and OR evaluation only ever
        need the top-k, which keeps hot-key lookups O(k) even when an
        entry holds thousands of postings (FIFO's unsorted segments).
        """

    def note_query(
        self,
        keys: Sequence[Hashable],
        accessed_ids: Iterable[int],
        now: float,
    ) -> None:
        """Policy feedback after a query: which keys were searched and
        which record ids the answer touched.  Default: no bookkeeping."""

    @abstractmethod
    def get_record(self, blog_id: int) -> Optional[Microblog]:
        """A memory-resident record by id, or None if not resident."""

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def memory_bytes(self) -> int:
        """Modelled bytes of records + index data currently in memory."""

    def needs_flush(self) -> bool:
        """Whether the memory budget is exhausted."""
        return self.memory_bytes >= self.capacity_bytes

    def flush_target_bytes(self) -> int:
        """The minimum bytes one flush must evict (the budget B)."""
        return max(1, int(self.flush_fraction * self.memory_bytes))

    @abstractmethod
    def flush(self, now: float) -> FlushReport:
        """Evict at least the flush budget to disk; returns the report."""

    def note_eviction(self, key: Hashable, cause: str, at: float, postings: int) -> None:
        """Record one eviction decision in the ledger (no-op when
        attribution is off).  Policies call this wherever they drop
        postings; the executor reads it back on memory misses."""
        ledger = self.eviction_ledger
        if ledger is not None:
            dropped = ledger.record(key, cause, at, postings)
            if dropped:
                self._ledger_dropped.inc(dropped)
            self.key_heat.note_eviction(key, postings)

    def eviction_cause(self, key: Hashable) -> Optional[EvictionRecord]:
        """The latest eviction record for ``key``, or None (also None
        whenever attribution is off).  Accepts raw keys: a columnar
        engine's ledger is keyed by interned id, so the key is translated
        here — a never-ingested key trivially has no eviction record."""
        ledger = self.eviction_ledger
        if ledger is None:
            return None
        if self.columnar:
            key = self.interner.maybe(key)
            if key is None:
                return None
        return ledger.get(key)

    def run_flush(self, now: float) -> FlushReport:
        """Template wrapper: times the flush, records the report, and
        emits the flush span/event plus freed-byte counters.  With
        tracing on, the whole cycle becomes a ``flush`` trace the
        per-phase spans attach to."""
        with self.obs.trace("flush", policy=self.name) as trace_ctx:
            with self.obs.span("flush", policy=self.name):
                # Time exactly the eviction work: entering/exiting the
                # trace and span managers (and emitting their events) is
                # observability overhead that must not be charged to
                # flush wall time — it would leak into
                # effective_digestion_rate() and skew the policy
                # comparison whenever tracing or a slow sink is on.
                start = time.perf_counter()
                report = self.flush(now)
                report.wall_seconds = time.perf_counter() - start
            if trace_ctx is not None:
                trace_ctx.fields["freed_bytes"] = report.freed_bytes
                trace_ctx.fields["target_bytes"] = report.target_bytes
                trace_ctx.fields["at"] = now
        self.flush_reports.append(report)
        registry = self.obs.registry
        if self.columnar:
            # Refresh the columnar gauges once per flush cycle: how many
            # keys the process-wide interner holds and the raw bytes the
            # posting columns occupy (24 bytes per resident posting).
            registry.gauge("memory.columnar.interner_keys").set(
                len(self.interner)
            )
            registry.gauge("memory.columnar.column_bytes").set(
                24 * self.posting_count()
            )
        registry.counter("flush.count").inc()
        registry.counter("flush.freed_bytes").inc(report.freed_bytes)
        registry.counter("flush.records_flushed").inc(report.records_flushed)
        registry.counter("flush.postings_flushed").inc(report.postings_flushed)
        registry.counter("flush.entries_flushed").inc(report.entries_flushed)
        if not report.met_target:
            registry.counter("flush.target_missed").inc()
        self.obs.event(
            "flush",
            policy=self.name,
            at=now,
            target_bytes=report.target_bytes,
            freed_bytes=report.freed_bytes,
            records_flushed=report.records_flushed,
            postings_flushed=report.postings_flushed,
            entries_flushed=report.entries_flushed,
            bytes_written_to_disk=report.bytes_written_to_disk,
            phase_freed=dict(report.phase_freed),
            wall_seconds=report.wall_seconds,
        )
        if self.adaptive is not None:
            # Flush-cycle boundary: the controller's only decision point,
            # so ingest and query hot paths never see retune work.
            self.adaptive.on_flush(self)
        return report

    # ------------------------------------------------------------------
    # Adaptive feedback (PR 9)
    # ------------------------------------------------------------------

    @property
    def wants_query_feedback(self) -> bool:
        """Whether the executor should call
        :meth:`observe_query_feedback` after each query."""
        return self.key_heat is not None

    def observe_query_feedback(
        self, keys: Sequence[Hashable], hit: bool, cause: Optional[str]
    ) -> None:
        """Per-query outcome fed back by the executor: queried keys, hit
        flag, and the attributed miss cause (None on hits)."""
        heat = self.key_heat
        if heat is None:
            return
        heat.note_query(keys, hit)
        controller = self.adaptive
        if controller is not None:
            controller.observe(hit, cause)

    def hot_keys(self, n: int = 10) -> dict:
        """Top-``n`` most-queried / most-evicted keys (posting counts for
        evictions), JSON-ready.  Empty when heat tracking is off."""
        heat = self.key_heat
        if heat is None:
            return {}
        unintern = self.interner.unintern if self.columnar else None
        return {
            "most_queried": [
                [str(key), count] for key, count in heat.top_queried(n)
            ],
            "most_evicted": [
                [str(key if unintern is None else unintern(key)), count]
                for key, count in heat.top_evicted(n)
            ],
        }

    # ------------------------------------------------------------------
    # Memtable rotation (pipelined ingest)
    # ------------------------------------------------------------------

    def drain_records(self) -> Iterable[Microblog]:
        """Every memory-resident record, in the order a sibling engine
        should re-digest them to preserve this policy's bookkeeping
        (arrival order for kFlushing/FIFO, LRU-to-MRU for LRU).  Used by
        :meth:`absorb` when a rotated overlay memtable is merged back
        into its long-lived sibling; policies that cannot hand their
        contents off must raise."""
        raise NotImplementedError(
            f"{self.name} does not support memtable handoff"
        )

    def absorb(self, other: "MemoryEngine") -> int:
        """Merge another engine's resident records into this one (the
        pipelined-ingest reconcile step: the small active overlay is
        folded back into its freshly flushed sibling).  Returns how many
        records were re-digested.  The two engines must hold disjoint
        record ids — a record is only ever inserted into exactly one
        memtable."""
        count = 0
        for record in other.drain_records():
            if self.insert(record):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Metrics and extensibility
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def policy_overhead_bytes(self) -> int:
        """Modelled bytes of the policy's private bookkeeping (Fig 10a)."""

    @abstractmethod
    def k_filled_count(self) -> int:
        """Keys whose provable in-memory top-k is complete (Fig 7)."""

    @abstractmethod
    def frequency_snapshot(self) -> dict[Hashable, int]:
        """Key -> in-memory posting count (the Figure 1 snapshot)."""

    @abstractmethod
    def record_count(self) -> int:
        """Records currently resident in memory."""

    def posting_count(self) -> int:
        """Total in-memory postings; overridden where tracked in O(1)."""
        return sum(self.frequency_snapshot().values())

    def set_k(self, k: int) -> None:
        """Dynamic k (Section IV-C): takes effect at the next flush."""
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self.k = k

    def check_integrity(self) -> None:
        """Assert engine invariants; overridden where state is richer."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(k={self.k}, capacity={self.capacity_bytes}, "
            f"B={self.flush_fraction:.0%}, attr={self.attribute.name})"
        )
