"""LRU baseline: H-Store-style anti-caching (Section V, [8]).

"A global doubly-linked list is maintained to order microblogs in least
recently used order.  To reduce memory overhead, pointers of the LRU list
are embedded in the index entry of each microblog."

Every insert and every query answer *touches* the global list — the
per-item bookkeeping whose memory cost dominates Figure 10(a) and whose
contention limits LRU's digestion rate in Figure 10(b).  Eviction removes
individual records from wherever they sit, punching holes in posting
lists; the completeness floors make those holes visible to the hit-ratio
accounting instead of silently returning wrong answers.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence

from repro.core.eviction_ledger import CAUSE_TRIMMED_TOPK, CAUSE_WHOLE_KEY_LRU
from repro.core.policy import FlushReport, LookupResult, MemoryEngine
from repro.core.recency_list import RecencyList
from repro.model.microblog import Microblog
from repro.storage.columnar import ColumnarPostingList
from repro.storage.flush_buffer import FlushBuffer
from repro.storage.inverted_index import HashInvertedIndex
from repro.storage.posting_list import MIN_SORT_KEY, Posting, PostingList, SortKey
from repro.storage.raw_store import RawDataStore

__all__ = ["LRUEngine"]


class LRUEngine(MemoryEngine):
    """Inverted index plus a global per-record recency list."""

    name = "lru"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.raw = RawDataStore(self.model)
        self.index = HashInvertedIndex(
            self.model,
            self.k,
            entry_factory=ColumnarPostingList if self.columnar else PostingList,
        )
        self.buffer = FlushBuffer(self.model, self.disk, interner=self.interner)
        #: Global recency order: the H-Store doubly-linked list, with a
        #: real node per record and a lock per mutation (see RecencyList).
        self._recency = RecencyList()
        #: Floor seeded into entries (re-)created after wholesale removal.
        self.global_floor: SortKey = MIN_SORT_KEY

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def insert(self, record: Microblog) -> bool:
        keys = self.attribute.keys(record)
        if not keys:
            return False
        self.raw.add(record, pcount=len(keys))
        if self.columnar:
            timestamp = record.timestamp
            blog_id = record.blog_id
            self.index.insert_record_scalars(
                keys,
                self.ranking.score(record),
                timestamp,
                blog_id,
                timestamp,
                self.global_floor,
                interner=self.interner,
            )
            self._recency.push(blog_id)
            return True
        posting = Posting(self.ranking.score(record), record.timestamp, record.blog_id)
        for key in keys:
            self.index.insert(
                key, posting, now=record.timestamp, created_floor=self.global_floor
            )
        # New data enters at the most-recently-used end of the list.
        self._recency.push(record.blog_id)
        return True

    def lookup(self, key: Hashable, depth: Optional[int] = None) -> LookupResult:
        index_key = key
        if self.columnar:
            index_key = self.interner.maybe(key)
            if index_key is None:
                return LookupResult(key, (), self.global_floor)
        entry = self.index.get(index_key)
        if entry is None:
            return LookupResult(key, (), self.global_floor)
        if depth is None:
            # Zero-copy unbounded lookup (see KFlushingEngine.lookup).
            candidates = entry.best_first()
        else:
            candidates = tuple(entry.top(depth))
        return LookupResult(key, candidates, entry.floor)

    def note_query(
        self,
        keys: Sequence[Hashable],
        accessed_ids: Iterable[int],
        now: float,
    ) -> None:
        # Querying threads move every accessed record to the list head —
        # the contention point the paper blames for LRU's low digestion
        # rate.  Keys themselves carry no bookkeeping under LRU.
        recency = self._recency
        for blog_id in accessed_ids:
            recency.touch(blog_id)

    def get_record(self, blog_id: int) -> Optional[Microblog]:
        if blog_id in self.raw:
            return self.raw.get(blog_id)
        return None

    # ------------------------------------------------------------------
    # Memtable rotation (pipelined ingest)
    # ------------------------------------------------------------------

    def drain_records(self) -> Iterable[Microblog]:
        # Re-digesting LRU-first leaves the sibling's recency list with
        # this engine's most-recent records at the MRU end — the global
        # recency order of the merged memtable is preserved.
        return [self.raw.get(blog_id) for blog_id in self._recency.ids_lru_to_mru()]

    def absorb(self, other: MemoryEngine) -> int:
        count = super().absorb(other)
        if isinstance(other, LRUEngine):
            self.buffer.absorb(other.buffer)
        return count

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        return self.raw.bytes_used + self.index.bytes_used

    def needs_flush(self) -> bool:
        # Same hot-path shortcut as KFlushingEngine.needs_flush.
        return self.raw._bytes + self.index._bytes >= self.capacity_bytes

    def flush(self, now: float) -> FlushReport:
        target = self.flush_target_bytes()
        report = FlushReport(policy=self.name, triggered_at=now, target_bytes=target)
        while report.freed_bytes < target:
            blog_id = self._recency.pop_lru()
            if blog_id is None:
                break
            report.freed_bytes += self._evict_record(blog_id, report, now)
        report.bytes_written_to_disk = self.buffer.commit()
        return report

    def _evict_record(self, blog_id: int, report: FlushReport, now: float) -> int:
        """Remove one record from the raw store and all of its entries."""
        record = self.raw.remove(blog_id)
        freed = self.model.record_bytes(record)
        columnar = self.columnar
        for key in self.attribute.keys(record):
            if columnar:
                key = self.interner.intern(key)
            entry = self.index.get(key)
            if entry is None:
                continue
            posting = entry.remove_id(blog_id)
            if posting is None:
                continue
            freed += self.index.charge_removed_postings(1, key, entry=entry)
            self.buffer.add_posting(key, posting)
            report.postings_flushed += 1
            if len(entry) == 0:
                if entry.floor > self.global_floor:
                    self.global_floor = entry.floor
                self.index.remove_entry(key)
                freed += self.model.entry_overhead
                report.entries_flushed += 1
                self.note_eviction(key, CAUSE_WHOLE_KEY_LRU, now, 1)
            else:
                # The entry survives with a hole punched in it.
                self.note_eviction(key, CAUSE_TRIMMED_TOPK, now, 1)
        self.buffer.add_record(record)
        report.records_flushed += 1
        return freed

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def policy_overhead_bytes(self) -> int:
        # Two embedded list pointers per resident record, plus the flush
        # buffer at its peak.
        return self.model.lru_node_bytes * len(self.raw) + self.buffer.steady_peak_bytes

    def k_filled_count(self) -> int:
        return self.index.k_filled_count(self.k)

    def frequency_snapshot(self) -> dict[Hashable, int]:
        snapshot = self.index.frequency_snapshot()
        if not self.columnar:
            return snapshot
        unintern = self.interner.unintern
        return {unintern(kid): count for kid, count in snapshot.items()}

    def record_count(self) -> int:
        return len(self.raw)

    def posting_count(self) -> int:
        return self.index.posting_count()

    def set_k(self, k: int) -> None:
        super().set_k(k)
        self.index.set_k(k)

    def check_integrity(self) -> None:
        self.raw.check_integrity()
        self.index.check_integrity()
        if self.columnar:
            self.interner.check_integrity()
        assert set(self._recency.ids_lru_to_mru()) == {
            r.blog_id for r in self.raw
        }, "recency list out of sync with raw store"
        assert len(self._recency) == len(self.raw)
