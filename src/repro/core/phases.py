"""The three kFlushing phases (Sections III-A, III-B, III-C).

Each phase is a function over a :class:`KFlushingEngine` plus a shared
:class:`FlushContext`, invoked in order by the engine's ``flush`` until the
budget is met:

* **Phase 1 — regular flushing**: walk the overflow list L and trim every
  entry back to its top-k, evicting postings that can never appear in a
  top-k answer.  With the MK extension, a beyond-top-k posting survives
  while its record is still in the top-k of another entry (Section IV-D).
* **Phase 2 — aggressive flushing**: evict whole entries that hold fewer
  than k postings — queries on them would miss anyway — choosing the
  least-recently-*arrived* entries via the O(n) bounded-heap selection.
  With the MK extension, postings whose record also lives in a k-filled
  entry are spared.
* **Phase 3 — forced flushing**: evict whole entries (any size) in
  least-recently-*queried* order.  Identical in plain and MK modes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro.core.victim_selection import select_victims_heap
from repro.storage.flush_buffer import FlushBuffer
from repro.storage.posting_list import MIN_SORT_KEY, Posting, PostingList, SortKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.kflushing import KFlushingEngine

__all__ = [
    "FlushContext",
    "entry_flush_cost",
    "run_phase1",
    "run_phase2",
    "run_phase3",
]

PHASE_REGULAR = "phase1-regular"
PHASE_AGGRESSIVE = "phase2-aggressive"
PHASE_FORCED = "phase3-forced"


@dataclass
class FlushContext:
    """State shared by the phases of one flush operation."""

    now: float
    target_bytes: int
    buffer: FlushBuffer
    freed_bytes: int = 0
    records_flushed: int = 0
    postings_flushed: int = 0
    entries_flushed: int = 0
    #: Best sort key among postings evicted by *whole-entry* removal; the
    #: engine folds this into its global floor so a re-created entry does
    #: not claim completeness over the flushed period.
    max_wholesale_key: SortKey = MIN_SORT_KEY
    phase_freed: dict[str, int] = field(default_factory=dict)

    @property
    def met(self) -> bool:
        return self.freed_bytes >= self.target_bytes

    @property
    def remaining(self) -> int:
        return max(0, self.target_bytes - self.freed_bytes)

    def note_wholesale(self, sort_key: SortKey) -> None:
        if sort_key > self.max_wholesale_key:
            self.max_wholesale_key = sort_key


def _evict_posting(
    engine: "KFlushingEngine",
    ctx: FlushContext,
    key: Hashable,
    posting: Posting,
) -> int:
    """Move one trimmed posting (and its record, if now unreferenced) to
    the flush buffer; returns bytes freed from memory."""
    ctx.buffer.add_posting(key, posting)
    ctx.postings_flushed += 1
    freed = engine.model.posting_bytes
    record = engine.raw.decref(posting.blog_id)
    if record is not None:
        ctx.buffer.add_record(record)
        ctx.records_flushed += 1
        freed += engine.model.record_bytes(record)
    return freed


def _evict_block(
    engine: "KFlushingEngine",
    ctx: FlushContext,
    key: Hashable,
    block,
) -> int:
    """Columnar twin of :func:`_evict_posting` for one arena batch.

    One buffer staging, one batched decref, one batched record staging —
    the totals (and the order records reach the buffer) are identical to
    running the per-posting loop over the block's expansion, because the
    raw store walks ``block.ids`` in the same sequence.
    """
    ctx.buffer.add_posting_block(key, block)
    n = len(block)
    ctx.postings_flushed += n
    freed = engine.model.posting_bytes * n
    released, record_bytes = engine.raw.decref_many(block.ids)
    if released:
        ctx.buffer.add_records(released, record_bytes)
        ctx.records_flushed += len(released)
        freed += record_bytes
    return freed


def _note_phase(
    engine: "KFlushingEngine", ctx: FlushContext, phase: str, freed: int
) -> None:
    """Fold one phase's freed bytes into the context and the metrics."""
    ctx.freed_bytes += freed
    ctx.phase_freed[phase] = ctx.phase_freed.get(phase, 0) + freed
    engine.obs.registry.counter(f"flush.{phase}.freed_bytes").inc(freed)


def run_phase1(engine: "KFlushingEngine", ctx: FlushContext) -> None:
    """Regular flushing: trim overflow entries back to top-k.

    With the adaptive allocator (PR 9) the trim depth is per key —
    ``allocator.depth_of(key) >= k`` — so hot keys keep a deeper head;
    ``allocator is None`` (the default) keeps the hoisted global ``k``
    on every iteration, the legacy fast path.
    """
    freed = 0
    k = engine.k
    allocator = engine.allocator
    with engine.obs.span(f"flush.{PHASE_REGULAR}"):
        for key in list(engine.index.overflow_keys):
            entry = engine.index.get(key)
            if entry is None:
                engine.index.clear_overflow(key)
                continue
            depth = k if allocator is None else allocator.depth_of(key)
            if engine.columnar:
                if engine.mk_enabled:
                    removed = entry.trim_if_ids(
                        depth,
                        keep_id=lambda bid, _key=key: engine.in_top_elsewhere(
                            bid, _key
                        ),
                    )
                else:
                    removed = entry.trim_beyond(depth)
            elif engine.mk_enabled:
                removed = entry.trim_if(
                    depth,
                    keep=lambda p, _key=key: engine.in_top_elsewhere(
                        p.blog_id, _key
                    ),
                )
            else:
                removed = entry.trim_beyond(depth)
            engine.index.charge_removed_postings(len(removed), key, entry=entry)
            if removed:
                if engine.flush_cache is not None:
                    engine.flush_cache.invalidate(key)
                engine.note_eviction(key, PHASE_REGULAR, ctx.now, len(removed))
                if engine.columnar:
                    freed += _evict_block(engine, ctx, key, removed)
                else:
                    for posting in removed:
                        freed += _evict_posting(engine, ctx, key, posting)
            if len(entry) <= depth:
                engine.index.clear_overflow(key)
        # The paper wipes L after Phase 1 completes.  Under MK, entries whose
        # spared stragglers keep them over-full must *stay* in L: the paper's
        # Figure 6(b) requires the following Phase 1 execution to re-examine
        # them and trim records that have since left every top-k.
        if not engine.mk_enabled:
            engine.index.wipe_overflow()
    _note_phase(engine, ctx, PHASE_REGULAR, freed)


def _flush_entry(
    engine: "KFlushingEngine",
    ctx: FlushContext,
    key: Hashable,
    spare_k_filled_residents: bool,
    cause: str,
) -> int:
    """Evict (most of) one entry; returns bytes freed.

    With ``spare_k_filled_residents`` (MK Phase 2), postings whose record
    also exists in a k-filled entry stay behind and the entry survives,
    shrunken; otherwise the entry is removed wholesale.  ``cause`` is the
    phase recorded in the eviction ledger.
    """
    entry = engine.index.get(key)
    if entry is None:
        return 0
    if engine.columnar:
        if spare_k_filled_residents:
            removed = entry.drain_if_ids(
                keep_id=lambda bid: engine.exists_in_k_filled(bid, key)
            )
        else:
            removed = entry.drain()
    elif spare_k_filled_residents:
        removed = entry.drain_if(
            keep=lambda p: engine.exists_in_k_filled(p.blog_id, key)
        )
    else:
        removed = entry.drain()
    engine.index.charge_removed_postings(len(removed), key, entry=entry)
    cache = engine.flush_cache
    if removed:
        if cache is not None:
            cache.invalidate(key)
        engine.note_eviction(key, cause, ctx.now, len(removed))
    freed = 0
    if engine.columnar:
        if removed:
            freed += _evict_block(engine, ctx, key, removed)
            # Drained columns are ascending, so the block's best key is
            # the max the legacy per-posting loop would have noted.
            ctx.note_wholesale(removed.best_sort_key())
    else:
        for posting in removed:
            freed += _evict_posting(engine, ctx, key, posting)
            ctx.note_wholesale(posting.sort_key)
    if len(entry) == 0:
        engine.index.remove_entry(key)
        freed += engine.model.entry_overhead
        ctx.entries_flushed += 1
        if cache is not None:
            cache.on_entry_removed(key)
    return freed


def _mean_record_share(engine: "KFlushingEngine") -> float:
    """Average record bytes freed per evicted posting.

    Records are shared across entries (pcount), so the exact bytes a
    victim entry will free is only known after eviction.  Like the paper,
    Phases 2/3 select victims on an O(1)-per-entry *estimate*: the raw
    store's bytes spread over the live postings.  The phase loop verifies
    the actually freed bytes and escalates when the estimate fell short.
    """
    postings = engine.index.posting_count()
    if postings == 0:
        return 0.0
    return engine.raw.bytes_used / postings


def entry_flush_cost(posting_count: int, overhead: int, per_posting: float) -> int:
    """Estimated bytes freed by evicting an entry of ``posting_count``
    postings wholesale.

    ``per_posting`` carries the fractional mean record share, so the
    product is rounded *up*: truncating it under-estimates every victim
    and mis-sizes the selection against the true freed bytes.
    """
    return overhead + math.ceil(posting_count * per_posting)


def run_phase2(engine: "KFlushingEngine", ctx: FlushContext) -> None:
    """Aggressive flushing: evict under-k entries, least recently arrived
    first, until the remaining budget is covered."""
    remaining = ctx.remaining
    if remaining <= 0:
        return
    with engine.obs.span(f"flush.{PHASE_AGGRESSIVE}"):
        share = _mean_record_share(engine)
        # Inlined entry_flush_cost: this generator scans every index entry
        # on every flush, so attribute lookups are hoisted out of the loop.
        k = engine.k
        overhead = engine.model.entry_overhead
        per_posting = engine.model.posting_bytes + share
        # A list comprehension, not a generator: the full scan runs as one
        # C-driven loop instead of resuming a generator frame per entry.
        candidates = [
            (entry.last_arrival, overhead + math.ceil(len(entry) * per_posting), key)
            for key, entry in engine.index.items()
            if len(entry) < k
        ]
        victims = select_victims_heap(candidates, remaining)
        freed = 0
        for _ts, _cost, key in victims:
            freed += _flush_entry(
                engine,
                ctx,
                key,
                spare_k_filled_residents=engine.mk_enabled,
                cause=PHASE_AGGRESSIVE,
            )
    _note_phase(engine, ctx, PHASE_AGGRESSIVE, freed)


def run_phase3(engine: "KFlushingEngine", ctx: FlushContext) -> None:
    """Forced flushing: evict any entries, least recently queried first.

    Identical in plain and MK modes (Section IV-D keeps Phase 3 intact).
    Loops until the budget is met or memory holds no more entries, because
    the per-victim cost is an estimate and MK Phases 1–2 may have left
    entries of any size behind.
    """
    freed = 0
    cache = engine.flush_cache
    with engine.obs.span(f"flush.{PHASE_FORCED}"):
        while ctx.freed_bytes + freed < ctx.target_bytes and len(engine.index) > 0:
            share = _mean_record_share(engine)
            overhead = engine.model.entry_overhead
            per_posting = engine.model.posting_bytes + share
            # Escalation rounds iterate the flush cache's victim snapshot
            # instead of rescanning the full index; surviving keys come
            # back in identical order (see FlushCycleCache), with costs
            # recomputed from live entry sizes and the current share.
            if cache is not None:
                candidate_keys = cache.surviving_keys()
            else:
                candidate_keys = list(engine.index.keys())
            candidates = [
                (
                    entry.last_query,
                    overhead + math.ceil(len(entry) * per_posting),
                    key,
                )
                for key in candidate_keys
                if (entry := engine.index.get(key)) is not None
            ]
            victims = select_victims_heap(
                candidates, ctx.target_bytes - ctx.freed_bytes - freed
            )
            if not victims:
                break
            round_freed = 0
            for _ts, _cost, key in victims:
                round_freed += _flush_entry(
                    engine,
                    ctx,
                    key,
                    spare_k_filled_residents=False,
                    cause=PHASE_FORCED,
                )
            freed += round_freed
            if round_freed == 0:
                # Every remaining victim was already empty; nothing more to do.
                break
    _note_phase(engine, ctx, PHASE_FORCED, freed)
