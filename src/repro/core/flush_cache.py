"""Per-flush-cycle memoization for the kFlushing phases.

One :class:`FlushCycleCache` lives for the duration of a single flush
operation (created in :meth:`KFlushingEngine.flush`, dropped in its
``finally``).  It unifies three memos that used to be recomputed — or in
two cases simply not cached at all — inside the phase loops:

* **top-k id sets** (MK Phase 1, ``in_top_elsewhere``): each entry's
  top-k blog ids, valid for the whole flush because Phase 1 only trims
  *beyond*-top-k postings, so the top-k of every entry is invariant while
  the memo is live;
* **per-entry id membership** (MK Phase 2, ``exists_in_k_filled``): the
  full blog-id set of an entry, replacing an uncached O(entry) linear
  ``contains_id`` scan per spared-posting check.  Unlike the top-k memo
  this one *is* invalidated when an entry mutates (Phase 2 drains shrink
  entries mid-phase), so cached answers are always what the linear scan
  would have returned;
* **the Phase 3 victim snapshot**: the key order of the full index,
  captured once instead of being re-scanned by every round of Phase 3's
  escalation loop.  Evicted keys are dropped incrementally; the surviving
  order is exactly the index's own iteration order (dict insertion order
  is stable under deletion and no inserts happen mid-flush), so the
  bounded-heap victim selection sees identical candidate sequences and
  the optimization is bit-for-bit behavior-preserving.

Every phase that mutates an entry must call :meth:`invalidate` with the
key (and :meth:`on_entry_removed` when it removes the entry outright).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.inverted_index import HashInvertedIndex
    from repro.storage.posting_list import PostingList

__all__ = ["FlushCycleCache"]


class FlushCycleCache:
    """Memoized per-entry views shared by the phases of one flush."""

    __slots__ = ("_index", "_k", "_topk_ids", "_member_ids", "_victim_keys", "_removed")

    def __init__(self, index: "HashInvertedIndex", k: int) -> None:
        self._index = index
        self._k = k
        self._topk_ids: dict[Hashable, frozenset[int]] = {}
        self._member_ids: dict[Hashable, set[int]] = {}
        #: Index key order captured at the first Phase 3 round; None until
        #: then.  Kept as a list + removed-set so later rounds skip the
        #: full-index rescan.
        self._victim_keys: Optional[list[Hashable]] = None
        self._removed: set[Hashable] = set()

    # ------------------------------------------------------------------
    # Top-k id sets (MK Phase 1)
    # ------------------------------------------------------------------

    def topk_ids(self, key: Hashable, entry: "PostingList") -> frozenset[int]:
        """The entry's top-k blog ids, memoized for the flush.

        Built by the entry itself (``topk_id_set``) so the columnar
        layout can slice its id column directly instead of materializing
        ``Posting`` tuples first; both layouts produce the same set.
        """
        ids = self._topk_ids.get(key)
        if ids is None:
            ids = entry.topk_id_set(self._k)
            self._topk_ids[key] = ids
        return ids

    # ------------------------------------------------------------------
    # Entry membership (MK Phase 2)
    # ------------------------------------------------------------------

    def contains_id(self, key: Hashable, entry: "PostingList", blog_id: int) -> bool:
        """Set-based replacement for ``entry.contains_id(blog_id)``."""
        ids = self._member_ids.get(key)
        if ids is None:
            ids = entry.id_set()
            self._member_ids[key] = ids
        return blog_id in ids

    # ------------------------------------------------------------------
    # Phase 3 victim snapshot
    # ------------------------------------------------------------------

    def surviving_keys(self) -> Iterator[Hashable]:
        """Index keys still resident, in the index's iteration order.

        The snapshot is taken lazily on first use (i.e. at the first
        Phase 3 round); subsequent rounds iterate the snapshot minus the
        keys evicted since, never touching the full index again.
        """
        if self._victim_keys is None:
            self._victim_keys = list(self._index.keys())
            # Compact away anything evicted before the snapshot was taken.
            if self._removed:
                self._victim_keys = [
                    key for key in self._victim_keys if key not in self._removed
                ]
                self._removed.clear()
        removed = self._removed
        for key in self._victim_keys:
            if key not in removed:
                yield key

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate(self, key: Hashable) -> None:
        """Drop the memoized views of a mutated entry.

        The top-k memo is dropped too: recomputing it after a Phase 1
        trim yields the same ids (trims preserve the top-k), and after a
        drain the entry is gone from the phases' working sets anyway —
        dropping is always safe and keeps the rule simple.
        """
        self._topk_ids.pop(key, None)
        self._member_ids.pop(key, None)

    def on_entry_removed(self, key: Hashable) -> None:
        """An entry was evicted wholesale: forget it everywhere."""
        self.invalidate(key)
        self._removed.add(key)
