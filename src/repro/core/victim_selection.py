"""Victim selection for Phases 2 and 3: pick the least-recent entry set.

Section III-B: the straightforward implementation sorts all n in-memory
keys by their timestamp and takes a prefix — O(n log n).  The paper's
"smarter algorithm that is only O(n)" keeps a bounded max-heap of chosen
victims: seed it with entries until the requested budget is covered, then
for each remaining entry that is *older* than the heap's most recent
member, insert it and pop the most recent members for as long as the
budget stays covered.

Both algorithms are implemented here — the heap one is used by kFlushing,
the sort one exists as the comparison baseline for the ablation benchmark
(``benchmarks/test_ablation_victim_selection.py``) and as a cross-check in
property tests (same victim set for distinct timestamps).
"""

from __future__ import annotations

import heapq
from typing import Iterable, TypeVar

__all__ = ["select_victims_heap", "select_victims_sort", "Candidate"]

T = TypeVar("T")

#: (recency_timestamp, cost_bytes, payload) — lower timestamp = older =
#: preferred victim.  ``cost_bytes`` must be positive.
Candidate = tuple[float, int, T]


def select_victims_heap(
    candidates: Iterable[Candidate],
    target_bytes: int,
) -> list[Candidate]:
    """Single-pass bounded-heap selection (the paper's O(n) algorithm).

    Returns a subset of ``candidates`` whose total cost is at least
    ``target_bytes`` and whose members are the least-recent ones that can
    cover it.  When all candidates together cannot cover the target, all
    of them are returned (the caller escalates to the next phase).
    """
    if target_bytes <= 0:
        return []
    # Max-heap on recency: most recent victim on top, ready to be replaced
    # by an older candidate.  heapq is a min-heap, so negate the timestamp.
    # The sequence number breaks ties without comparing payloads.
    heap: list[tuple[float, int, int, T]] = []
    total = 0
    for seq, (ts, cost, payload) in enumerate(candidates):
        if cost <= 0:
            raise ValueError(f"candidate cost must be positive, got {cost}")
        if total < target_bytes:
            heapq.heappush(heap, (-ts, seq, cost, payload))
            total += cost
            continue
        most_recent_ts = -heap[0][0]
        if ts >= most_recent_ts:
            continue
        # An older candidate: bring it in, then shed the most recent
        # members while the budget stays covered.
        heapq.heappush(heap, (-ts, seq, cost, payload))
        total += cost
        while heap and total - heap[0][2] >= target_bytes:
            total -= heapq.heappop(heap)[2]
    return [(-neg_ts, cost, payload) for neg_ts, _seq, cost, payload in heap]


def select_victims_sort(
    candidates: Iterable[Candidate],
    target_bytes: int,
) -> list[Candidate]:
    """Reference O(n log n) selection: sort by recency, take a prefix."""
    if target_bytes <= 0:
        return []
    ordered = sorted(candidates, key=lambda c: c[0])
    chosen: list[Candidate] = []
    total = 0
    for candidate in ordered:
        if candidate[1] <= 0:
            raise ValueError(f"candidate cost must be positive, got {candidate[1]}")
        if total >= target_bytes:
            break
        chosen.append(candidate)
        total += candidate[1]
    return chosen
