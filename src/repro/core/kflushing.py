"""The kFlushing memory engine — the paper's primary contribution.

Composes the raw data store (with ``pcount`` reference counts), the hash
inverted index (with the overflow list L), and the three flushing phases.
The ``mk`` flag enables the multiple-keyword extension of Section IV-D
(kFlushing-MK), which changes the trim rules of Phases 1 and 2 so that
AND-queries find their intersections in memory more often.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence

from repro.core.adaptive import KAllocator
from repro.core.flush_cache import FlushCycleCache
from repro.core.phases import FlushContext, run_phase1, run_phase2, run_phase3
from repro.core.policy import FlushReport, LookupResult, MemoryEngine
from repro.model.microblog import Microblog
from repro.storage.columnar import ColumnarPostingList
from repro.storage.flush_buffer import FlushBuffer
from repro.storage.inverted_index import HashInvertedIndex
from repro.storage.posting_list import MIN_SORT_KEY, Posting, PostingList, SortKey
from repro.storage.raw_store import RawDataStore

__all__ = ["KFlushingEngine"]


class KFlushingEngine(MemoryEngine):
    """kFlushing (and kFlushing-MK when ``mk=True``)."""

    #: Class-level switch for the per-flush :class:`FlushCycleCache`.
    #: Always on in production; the differential tests flip it off to run
    #: the brute-force reference path and assert bit-identical results.
    use_flush_cache: bool = True

    def __init__(self, *, mk: bool = False, max_phase: int = 3, **kwargs) -> None:
        super().__init__(**kwargs)
        self.mk = mk
        self.name = "kflushing-mk" if mk else "kflushing"
        if max_phase not in (1, 2, 3):
            raise ValueError(f"max_phase must be 1, 2, or 3, got {max_phase}")
        #: Highest phase a flush may escalate to.  The full policy uses 3;
        #: the Figure 5 saturation experiment caps it to study Phase 1 (and
        #: Phases 1+2) in isolation.
        self.max_phase = max_phase
        self.raw = RawDataStore(self.model)
        #: Per-key retention depths (PR 9): None when adaptive is off,
        #: keeping every depth-aware path on its legacy global-k branch.
        self.allocator: Optional[KAllocator] = (
            KAllocator(self.k) if self.adaptive is not None else None
        )
        #: Phase-escalation slack in [0, 1): a flush that freed at least
        #: ``target * (1 - slack)`` in a phase stops instead of
        #: escalating.  0.0 (the default) is the paper's strict budget —
        #: bit-identical to pre-adaptive builds; the controller raises it
        #: when wholesale evictions dominate the miss causes.
        self.escalation_slack: float = 0.0
        # Columnar mode keys the index (and every derived hot dict) by
        # interned id and stores each entry as primitive columns; the
        # legacy object layout stays the differential reference.
        self.index = HashInvertedIndex(
            self.model,
            self.k,
            entry_factory=ColumnarPostingList if self.columnar else PostingList,
            allocator=self.allocator,
        )
        self.buffer = FlushBuffer(self.model, self.disk, interner=self.interner)
        #: Best sort key ever evicted by whole-entry removal; seeds the
        #: completeness floor of entries (re-)created afterwards.
        self.global_floor: SortKey = MIN_SORT_KEY
        #: Per-flush memo of top-k id sets, entry id membership, and the
        #: Phase 3 victim snapshot (see :mod:`repro.core.flush_cache`).
        #: Non-None only while a flush is running.
        self.flush_cache: Optional[FlushCycleCache] = None

    @property
    def mk_enabled(self) -> bool:
        """MK trim rules apply only for genuinely multi-key attributes."""
        return self.mk and self.attribute.multi_key

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def insert(self, record: Microblog) -> bool:
        keys = self.attribute.keys(record)
        if not keys:
            return False
        self.raw.add(record, pcount=len(keys))
        if self.columnar:
            # Scalar ingest: no Posting tuple is allocated at all — the
            # score/timestamp/id triple lands straight in each entry's
            # columns, keyed by interned id, one fused call per record.
            timestamp = record.timestamp
            self.index.insert_record_scalars(
                keys,
                self.ranking.score(record),
                timestamp,
                record.blog_id,
                timestamp,
                self.global_floor,
                interner=self.interner,
            )
            return True
        posting = Posting(self.ranking.score(record), record.timestamp, record.blog_id)
        for key in keys:
            self.index.insert(
                key, posting, now=record.timestamp, created_floor=self.global_floor
            )
        return True

    def lookup(self, key: Hashable, depth: Optional[int] = None) -> LookupResult:
        index_key = key
        if self.columnar:
            # Non-growing probe: a query on a never-ingested key must not
            # allocate an interner id.
            index_key = self.interner.maybe(key)
            if index_key is None:
                return LookupResult(key, (), self.global_floor)
        entry = self.index.get(index_key)
        if entry is None:
            return LookupResult(key, (), self.global_floor)
        if depth is None:
            # Zero-copy fast path: unbounded lookups on hot keys used to
            # materialize the whole entry (list + tuple, O(entry) each);
            # the lazy view aliases the entry's storage instead.
            candidates = entry.best_first()
        else:
            candidates = tuple(entry.top(depth))
        return LookupResult(key, candidates, entry.floor)

    def note_query(
        self,
        keys: Sequence[Hashable],
        accessed_ids: Iterable[int],
        now: float,
    ) -> None:
        # Phase 3 orders victims by last query time; per Section III-C this
        # is one timestamp per entry, not per item, so accessed ids are
        # deliberately ignored.
        if self.columnar:
            maybe = self.interner.maybe
            for key in keys:
                kid = maybe(key)
                if kid is not None:
                    self.index.touch_query(kid, now)
            return
        for key in keys:
            self.index.touch_query(key, now)

    def get_record(self, blog_id: int) -> Optional[Microblog]:
        if blog_id in self.raw:
            return self.raw.get(blog_id)
        return None

    # ------------------------------------------------------------------
    # Memtable rotation (pipelined ingest)
    # ------------------------------------------------------------------

    def drain_records(self) -> Iterable[Microblog]:
        # The raw store iterates in arrival order, so a sibling engine
        # re-digests in the original stream order and rebuilds identical
        # posting-list state.
        return list(self.raw)

    def absorb(self, other: MemoryEngine) -> int:
        count = super().absorb(other)
        if isinstance(other, KFlushingEngine):
            # Lossless flush-buffer handoff: anything the sibling staged
            # but never committed keeps riding toward disk.
            self.buffer.absorb(other.buffer)
        return count

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def flush(self, now: float) -> FlushReport:
        ctx = FlushContext(
            now=now, target_bytes=self.flush_target_bytes(), buffer=self.buffer
        )
        self.flush_cache = (
            FlushCycleCache(self.index, self.k) if self.use_flush_cache else None
        )
        # Escalation threshold: with slack 0 this is exactly ``not
        # ctx.met`` (freed < target); a positive slack accepts a
        # near-target Phase 1 instead of escalating to wholesale
        # evictions.  Phases still aim at the full budget internally.
        slack = self.escalation_slack
        threshold = (
            ctx.target_bytes
            if slack <= 0.0
            else int(ctx.target_bytes * (1.0 - slack))
        )
        try:
            run_phase1(self, ctx)
            if ctx.freed_bytes < threshold and self.max_phase >= 2:
                run_phase2(self, ctx)
            if ctx.freed_bytes < threshold and self.max_phase >= 3:
                run_phase3(self, ctx)
        finally:
            self.flush_cache = None
        written = self.buffer.commit()
        if ctx.max_wholesale_key > self.global_floor:
            self.global_floor = ctx.max_wholesale_key
        return FlushReport(
            policy=self.name,
            triggered_at=now,
            target_bytes=ctx.target_bytes,
            freed_bytes=ctx.freed_bytes,
            records_flushed=ctx.records_flushed,
            postings_flushed=ctx.postings_flushed,
            entries_flushed=ctx.entries_flushed,
            bytes_written_to_disk=written,
            phase_freed=dict(ctx.phase_freed),
        )

    # ------------------------------------------------------------------
    # MK trim-rule predicates (Section IV-D)
    # ------------------------------------------------------------------

    def in_top_elsewhere(self, blog_id: int, exclude_key: Hashable) -> bool:
        """Whether the record is among the top-k of any *other* entry.

        MK Phase 1 keeps a beyond-top-k posting alive while this holds, so
        AND-queries intersecting this key with the other one still find
        the record in memory.
        """
        record = self.raw.get(blog_id)
        cache = self.flush_cache
        columnar = self.columnar
        for key in self.attribute.keys(record):
            if columnar:
                # Record keys were interned at ingest; ``exclude_key``
                # arrives from the phases already as an id.
                key = self.interner.intern(key)
            if key == exclude_key:
                continue
            entry = self.index.get(key)
            if entry is None:
                continue
            if cache is not None:
                if blog_id in cache.topk_ids(key, entry):
                    return True
            elif entry.contains_in_top(blog_id, self.k):
                return True
        return False

    def exists_in_k_filled(self, blog_id: int, exclude_key: Hashable) -> bool:
        """Whether the record exists in any entry holding >= k postings.

        MK Phase 2 spares such postings: flushing them could turn a
        would-be memory hit on the frequent keyword's AND-queries into a
        disk access (Section IV-D, condition 3).
        """
        record = self.raw.get(blog_id)
        cache = self.flush_cache
        columnar = self.columnar
        for key in self.attribute.keys(record):
            if columnar:
                key = self.interner.intern(key)
            if key == exclude_key:
                continue
            entry = self.index.get(key)
            if entry is None or len(entry) < self.k:
                continue
            if cache is not None:
                if cache.contains_id(key, entry, blog_id):
                    return True
            elif entry.contains_id(blog_id):
                return True
        return False

    # ------------------------------------------------------------------
    # Metrics and extensibility
    # ------------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        return self.raw.bytes_used + self.index.bytes_used

    def needs_flush(self) -> bool:
        # Checked after every single insert: read the two byte counters
        # directly instead of through three property descriptors.
        return self.raw._bytes + self.index._bytes >= self.capacity_bytes

    @property
    def policy_overhead_bytes(self) -> int:
        # Two per-entry timestamps (last arrival, last query), the overflow
        # list L, and the temporary flush buffer at its peak.
        per_entry = 2 * self.model.timestamp_bytes * len(self.index)
        overflow = self.model.pointer_bytes * len(self.index.overflow_keys)
        return per_entry + overflow + self.buffer.steady_peak_bytes

    def k_filled_count(self) -> int:
        return self.index.k_filled_count(self.k)

    def frequency_snapshot(self) -> dict[Hashable, int]:
        snapshot = self.index.frequency_snapshot()
        if not self.columnar:
            return snapshot
        # Snapshot boundary: translate interned ids back to raw keys.
        unintern = self.interner.unintern
        return {unintern(kid): count for kid, count in snapshot.items()}

    def record_count(self) -> int:
        return len(self.raw)

    def posting_count(self) -> int:
        return self.index.posting_count()

    def set_k(self, k: int) -> None:
        super().set_k(k)
        if self.allocator is not None:
            # Rebase before the index rebuilds its overflow list so the
            # rebuild sees the new per-key floors.
            self.allocator.rebase(k)
        self.index.set_k(k)

    def check_integrity(self) -> None:
        self.raw.check_integrity()
        self.index.check_integrity()
        if self.columnar:
            # Every index key must be a live interned id that round-trips
            # through the interner (raw key -> id -> raw key).
            self.interner.check_integrity()
            for kid in self.index.keys():
                assert isinstance(kid, int) and 0 <= kid < len(self.interner), (
                    f"index key {kid!r} is not a valid interned id"
                )
        # Every posting must reference a resident record, and reference
        # counts must equal the number of entries referencing the record.
        refs: dict[int, int] = {}
        for entry in self.index.entries():
            for posting in entry:
                refs[posting.blog_id] = refs.get(posting.blog_id, 0) + 1
        for blog_id, count in refs.items():
            assert blog_id in self.raw, f"posting for non-resident record {blog_id}"
            assert self.raw.pcount(blog_id) == count, (
                f"pcount mismatch for {blog_id}: "
                f"{self.raw.pcount(blog_id)} != {count}"
            )
        for record in self.raw:
            assert record.blog_id in refs, f"record {record.blog_id} unreferenced"
