"""FIFO baseline: temporal flushing over a segmented index (Section V).

"The default temporal flushing policy used implicitly or explicitly in all
existing techniques for microblogs.  FIFO always flushes the oldest data
and is implemented based on a temporally-segmented hash index ... On full
memory, the oldest index segments are completely flushed out from memory."

FIFO needs no per-item or per-entry bookkeeping — a sealed segment *is*
the flush unit — which gives it the best digestion rate and the lowest
policy overhead in Figure 10, and the worst hit ratio everywhere else.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from repro.core.eviction_ledger import CAUSE_WHOLE_KEY_FIFO
from repro.core.policy import FlushReport, LookupResult, MemoryEngine
from repro.model.microblog import Microblog
from repro.storage.posting_list import Posting
from repro.storage.segmented_index import SegmentedIndex

__all__ = ["FIFOEngine"]


class FIFOEngine(MemoryEngine):
    """Temporally segmented store with oldest-segment eviction."""

    name = "fifo"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        # One segment per flush budget: each flush then evicts whole
        # segments, and the oldest segment doubles as the write buffer
        # (the paper notes FIFO needs no separate flush buffer).
        segment_capacity = max(1, int(self.capacity_bytes * self.flush_fraction))
        self.segmented = SegmentedIndex(
            self.model, segment_capacity, columnar=self.columnar
        )

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def insert(self, record: Microblog) -> bool:
        keys = self.attribute.keys(record)
        if not keys:
            return False
        if self.columnar:
            keys = tuple(map(self.interner.intern, keys))
        self.segmented.insert(record, keys, self.ranking.score(record))
        return True

    def lookup(self, key: Hashable, depth: Optional[int] = None) -> LookupResult:
        index_key = key
        if self.columnar:
            index_key = self.interner.maybe(key)
            if index_key is None:
                return LookupResult(key, (), self.segmented.flushed_floor)
        candidates = self.segmented.candidates(index_key, depth=depth)
        return LookupResult(key, tuple(candidates), self.segmented.flushed_floor)

    def get_record(self, blog_id: int) -> Optional[Microblog]:
        return self.segmented.get_record(blog_id)

    # ------------------------------------------------------------------
    # Memtable rotation (pipelined ingest)
    # ------------------------------------------------------------------

    def drain_records(self) -> Iterable[Microblog]:
        # Oldest segment first, records in arrival order within each:
        # re-digestion rebuilds the same temporal segmentation.
        out: list[Microblog] = []
        for segment in self.segmented.segments():
            out.extend(segment.records.values())
        return out

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        return self.segmented.bytes_used

    def flush(self, now: float) -> FlushReport:
        target = self.flush_target_bytes()
        report = FlushReport(policy=self.name, triggered_at=now, target_bytes=target)
        while report.freed_bytes < target and self.segmented.record_count() > 0:
            segment = self.segmented.pop_oldest()
            freed = segment.bytes_used
            interned_commit = (
                self.columnar
                and getattr(self.disk, "_interner", None) is self.interner
            )
            if self.columnar:
                # Segment entries are keyed by interned id; the ledger
                # stays id-keyed (eviction_cause translates on read).
                # When the disk shares the interner, each entry's columns
                # travel to disk as one drained block under its id — no
                # Posting tuple and no unintern/re-intern round trip.
                unintern = self.interner.unintern
                postings_by_key = {}
                for kid, entry in segment.entries.items():
                    block = entry.drain()
                    key = kid if interned_commit else unintern(kid)
                    postings_by_key[key] = block
                    if self.eviction_ledger is not None:
                        self.note_eviction(
                            kid, CAUSE_WHOLE_KEY_FIFO, now, len(block)
                        )
            else:
                postings_by_key: dict[Hashable, list[Posting]] = {
                    key: list(entry) for key, entry in segment.entries.items()
                }
                if self.eviction_ledger is not None:
                    # Segment eviction is all-or-nothing: every key in the
                    # popped segment loses its postings wholesale.
                    for key, postings in postings_by_key.items():
                        self.note_eviction(key, CAUSE_WHOLE_KEY_FIFO, now, len(postings))
            written = self.disk.commit_flush(
                segment.records.values(),
                postings_by_key,
                keys_interned=interned_commit,
            )
            report.freed_bytes += freed
            report.records_flushed += len(segment.records)
            report.postings_flushed += sum(len(p) for p in postings_by_key.values())
            report.entries_flushed += len(segment.entries)
            report.bytes_written_to_disk += written
        return report

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def policy_overhead_bytes(self) -> int:
        # Only the per-segment headers; no per-item or per-entry tracking
        # and no separate flush buffer.
        return self.model.segment_overhead * self.segmented.segment_count

    def k_filled_count(self) -> int:
        return self.segmented.k_filled_count(self.k)

    def frequency_snapshot(self) -> dict[Hashable, int]:
        counts = self.segmented.key_posting_counts()
        if not self.columnar:
            return counts
        unintern = self.interner.unintern
        return {unintern(kid): count for kid, count in counts.items()}

    def record_count(self) -> int:
        return self.segmented.record_count()
