"""A doubly-linked recency list: the H-Store anti-cache structure.

The paper's LRU baseline maintains "a global doubly-linked list ... to
order microblogs in least recently used order", with the node pointers
embedded per microblog, and is accessed by both the insertion thread and
every querying thread — the contention that caps LRU's digestion rate at
29K tweets/s in Figure 10(b).

This is a faithful implementation: real per-record node objects with
explicit pointer surgery, and a lock around every mutation (the paper's
"synchronization between threads is handled through Java synchronization
features").  Deliberately *not* an ``OrderedDict``: the per-item object
and locking overhead is the phenomenon under measurement.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

__all__ = ["RecencyList"]


class _Node:
    __slots__ = ("blog_id", "prev", "next")

    def __init__(self, blog_id: int) -> None:
        self.blog_id = blog_id
        self.prev: Optional[_Node] = None
        self.next: Optional[_Node] = None


class RecencyList:
    """Global LRU order over record ids; least recently used at the front."""

    def __init__(self) -> None:
        # Sentinels keep the pointer surgery branch-free.
        self._head = _Node(-1)  # LRU end
        self._tail = _Node(-2)  # MRU end
        self._head.next = self._tail
        self._tail.prev = self._head
        self._nodes: dict[int, _Node] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, blog_id: int) -> bool:
        return blog_id in self._nodes

    def _unlink(self, node: _Node) -> None:
        node.prev.next = node.next
        node.next.prev = node.prev

    def _link_mru(self, node: _Node) -> None:
        last = self._tail.prev
        last.next = node
        node.prev = last
        node.next = self._tail
        self._tail.prev = node

    def push(self, blog_id: int) -> None:
        """Insert a new record at the most-recently-used end."""
        with self._lock:
            if blog_id in self._nodes:
                raise ValueError(f"blog_id {blog_id} already in recency list")
            node = _Node(blog_id)
            self._nodes[blog_id] = node
            self._link_mru(node)

    def touch(self, blog_id: int) -> bool:
        """Move a record to the MRU end; returns False when absent."""
        with self._lock:
            node = self._nodes.get(blog_id)
            if node is None:
                return False
            self._unlink(node)
            self._link_mru(node)
            return True

    def pop_lru(self) -> Optional[int]:
        """Remove and return the least recently used record id."""
        with self._lock:
            node = self._head.next
            if node is self._tail:
                return None
            self._unlink(node)
            del self._nodes[node.blog_id]
            return node.blog_id

    def remove(self, blog_id: int) -> bool:
        """Remove a specific record; returns False when absent."""
        with self._lock:
            node = self._nodes.pop(blog_id, None)
            if node is None:
                return False
            self._unlink(node)
            return True

    def ids_lru_to_mru(self) -> Iterator[int]:
        """Iterate record ids from least to most recently used."""
        node = self._head.next
        while node is not self._tail:
            yield node.blog_id
            node = node.next
