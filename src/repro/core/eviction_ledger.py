"""Eviction-cause ledger: remembering *why* each key left memory.

The paper's central claim is an attribution claim — kFlushing's phased
eviction raises hit ratio *because* it evicts the right postings.  The
ledger is the mechanism that makes the claim auditable: every eviction
decision records ``key → (cause, logical time, postings dropped)``, and
on a memory miss the query executor asks the ledger which decision made
the queried keys incomplete, bumping ``query.miss.cause.<cause>``.

Causes form a closed taxonomy spanning all three policies:

=====================  ==================================================
``phase1-regular``     kFlushing Phase 1 trimmed the entry to its top-k
                       (overflow postings dropped, head survives)
``phase2-aggressive``  kFlushing Phase 2 drained an under-k entry whole
``phase3-forced``      kFlushing Phase 3 force-drained any entry (LRQ)
``whole-key-fifo``     FIFO popped the segment holding the entry
``whole-key-lru``      LRU record eviction removed the entry entirely
``trimmed-topk``       LRU record eviction punched a hole in an entry
                       that otherwise survives
``never-resident``     no queried key has a ledger entry — the key was
                       never memory-complete (cold key, or evicted
                       beyond ledger capacity)
=====================  ==================================================

Memory is bounded: the ledger is an LRU-ordered dict capped at
``capacity`` keys; re-recording a key refreshes it.  Attribution is a
diagnosis aid, not an exact replay — a key evicted, re-digested, and
evicted again keeps only its *latest* cause, which is also the one that
explains the next miss.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple, Optional

__all__ = [
    "ALL_CAUSES",
    "CAUSE_NEVER_RESIDENT",
    "CAUSE_PHASE1_REGULAR",
    "CAUSE_PHASE2_AGGRESSIVE",
    "CAUSE_PHASE3_FORCED",
    "CAUSE_TRIMMED_TOPK",
    "CAUSE_WHOLE_KEY_FIFO",
    "CAUSE_WHOLE_KEY_LRU",
    "EvictionLedger",
    "EvictionRecord",
]

CAUSE_PHASE1_REGULAR = "phase1-regular"
CAUSE_PHASE2_AGGRESSIVE = "phase2-aggressive"
CAUSE_PHASE3_FORCED = "phase3-forced"
CAUSE_WHOLE_KEY_FIFO = "whole-key-fifo"
CAUSE_WHOLE_KEY_LRU = "whole-key-lru"
CAUSE_TRIMMED_TOPK = "trimmed-topk"
CAUSE_NEVER_RESIDENT = "never-resident"

ALL_CAUSES = (
    CAUSE_PHASE1_REGULAR,
    CAUSE_PHASE2_AGGRESSIVE,
    CAUSE_PHASE3_FORCED,
    CAUSE_WHOLE_KEY_FIFO,
    CAUSE_WHOLE_KEY_LRU,
    CAUSE_TRIMMED_TOPK,
    CAUSE_NEVER_RESIDENT,
)


class EvictionRecord(NamedTuple):
    """One eviction decision: what rule fired, when, how much it dropped."""

    cause: str
    at: int
    postings: int


class EvictionLedger:
    """Bounded key → latest :class:`EvictionRecord` map (LRU eviction)."""

    DEFAULT_CAPACITY = 65536

    __slots__ = ("capacity", "_records")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"ledger capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._records: OrderedDict = OrderedDict()

    def record(self, key, cause: str, at: int, postings: int) -> int:
        """Note that ``postings`` postings of ``key`` were evicted at
        logical time ``at`` because ``cause`` fired.  The latest record
        per key wins; recording refreshes the key's LRU position.

        Returns how many old records were dropped to stay within
        capacity.  A dropped record silently degrades attribution — the
        next miss on that key reads as ``never-resident`` — so callers
        surface the count (``eviction_ledger.dropped``) instead of
        letting the overflow stay invisible.
        """
        records = self._records
        records[key] = EvictionRecord(cause, at, postings)
        records.move_to_end(key)
        dropped = 0
        while len(records) > self.capacity:
            records.popitem(last=False)
            dropped += 1
        return dropped

    def get(self, key) -> Optional[EvictionRecord]:
        """Latest eviction record for ``key``, or None (read-only: does
        not refresh LRU position — queries must not pin ledger entries)."""
        return self._records.get(key)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key) -> bool:
        return key in self._records

    def clear(self) -> None:
        self._records.clear()
