"""Flushing policies: kFlushing (+MK) and the FIFO / LRU baselines.

Engines are instantiated through a **registry** rather than an
if-chain so that (a) the sharded system builder can create one engine
per shard from the same policy name, and (b) downstream extensions can
register additional policies without editing this package
(:func:`register_engine`).
"""

from typing import Callable

from repro.core.fifo import FIFOEngine
from repro.core.kflushing import KFlushingEngine
from repro.core.lru import LRUEngine
from repro.core.policy import FlushReport, LookupResult, MemoryEngine
from repro.core.victim_selection import select_victims_heap, select_victims_sort

__all__ = [
    "FIFOEngine",
    "FlushReport",
    "KFlushingEngine",
    "LRUEngine",
    "LookupResult",
    "MemoryEngine",
    "POLICY_NAMES",
    "create_engine",
    "engine_registry",
    "policy_names",
    "register_engine",
    "select_victims_heap",
    "select_victims_sort",
]

#: Factory signature: the :class:`MemoryEngine` constructor arguments
#: (``model``, ``ranking``, ``attribute``, ``k``, ``capacity_bytes``,
#: ``flush_fraction``, ``disk``, and optionally ``obs``).
EngineFactory = Callable[..., MemoryEngine]


def _kflushing(**kwargs) -> MemoryEngine:
    return KFlushingEngine(mk=False, **kwargs)


def _kflushing_mk(**kwargs) -> MemoryEngine:
    return KFlushingEngine(mk=True, **kwargs)


#: Policy name -> engine factory, in the paper's plotting order.
_ENGINE_REGISTRY: dict[str, EngineFactory] = {
    "fifo": FIFOEngine,
    "kflushing": _kflushing,
    "kflushing-mk": _kflushing_mk,
    "lru": LRUEngine,
}

#: The four policies evaluated in the paper, in its plotting order.
#: (Static snapshot for backwards compatibility; prefer
#: :func:`policy_names`, which also reflects registered extensions.)
POLICY_NAMES = tuple(_ENGINE_REGISTRY)


def policy_names() -> tuple[str, ...]:
    """All currently registered policy names, registration order."""
    return tuple(_ENGINE_REGISTRY)


def engine_registry() -> dict[str, EngineFactory]:
    """A copy of the policy registry (introspection only)."""
    return dict(_ENGINE_REGISTRY)


def register_engine(name: str, factory: EngineFactory) -> None:
    """Register (or replace) a policy factory under ``name``.

    The factory must accept the :class:`MemoryEngine` constructor
    keyword arguments and return an engine instance.  Registered names
    become valid ``SystemConfig.policy`` values immediately.
    """
    if not name:
        raise ValueError("policy name must be non-empty")
    _ENGINE_REGISTRY[name] = factory


def create_engine(policy: str, **kwargs) -> MemoryEngine:
    """Instantiate a memory engine by policy name.

    ``kwargs`` are the :class:`MemoryEngine` constructor arguments
    (``model``, ``ranking``, ``attribute``, ``k``, ``capacity_bytes``,
    ``flush_fraction``, ``disk``, and optionally ``obs``).
    """
    factory = _ENGINE_REGISTRY.get(policy)
    if factory is None:
        valid = ", ".join(_ENGINE_REGISTRY)
        raise ValueError(f"unknown policy {policy!r}; expected one of: {valid}")
    return factory(**kwargs)
