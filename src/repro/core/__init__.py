"""Flushing policies: kFlushing (+MK) and the FIFO / LRU baselines."""

from repro.core.fifo import FIFOEngine
from repro.core.kflushing import KFlushingEngine
from repro.core.lru import LRUEngine
from repro.core.policy import FlushReport, LookupResult, MemoryEngine
from repro.core.victim_selection import select_victims_heap, select_victims_sort

__all__ = [
    "FIFOEngine",
    "FlushReport",
    "KFlushingEngine",
    "LRUEngine",
    "LookupResult",
    "MemoryEngine",
    "POLICY_NAMES",
    "create_engine",
    "select_victims_heap",
    "select_victims_sort",
]

#: The four policies evaluated in the paper, in its plotting order.
POLICY_NAMES = ("fifo", "kflushing", "kflushing-mk", "lru")


def create_engine(policy: str, **kwargs) -> MemoryEngine:
    """Instantiate a memory engine by policy name.

    ``kwargs`` are the :class:`MemoryEngine` constructor arguments
    (``model``, ``ranking``, ``attribute``, ``k``, ``capacity_bytes``,
    ``flush_fraction``, ``disk``, and optionally ``obs``).
    """
    if policy == "fifo":
        return FIFOEngine(**kwargs)
    if policy == "kflushing":
        return KFlushingEngine(mk=False, **kwargs)
    if policy == "kflushing-mk":
        return KFlushingEngine(mk=True, **kwargs)
    if policy == "lru":
        return LRUEngine(**kwargs)
    valid = ", ".join(POLICY_NAMES)
    raise ValueError(f"unknown policy {policy!r}; expected one of: {valid}")
