"""Adaptive memory allocation: a feedback controller over kFlushing.

The paper's kFlushing runs with one global ``k`` and static budgets.
This module closes the feedback loop the eviction-cause ledger (PR 5)
and the shard-skew snapshot (PR 3) made possible, with three levers —
all default-off behind ``SystemConfig.adaptive`` and all evaluated at
flush-cycle boundaries so the query and ingest hot paths stay untouched:

* **Per-key retention depth** (:class:`KAllocator`): hot,
  frequently-queried keys keep ``k_i > k`` postings through Phase 1
  trims, so AND-queries intersecting them still find their records in
  memory; cold keys decay back toward the global ``k``.  The invariant
  ``k_i >= k`` is enforced structurally — a deepened entry can only hold
  *more* than the answer-completeness criterion requires, so answers and
  the k-filled metric (both defined at the query ``k``) are unaffected.
* **Phase-escalation slack** (:class:`AdaptiveController`): when misses
  are dominated by ``phase2-aggressive``/``phase3-forced`` evictions,
  the controller raises ``KFlushingEngine.escalation_slack`` so a flush
  that nearly met its budget in Phase 1 stops instead of wholesale-
  evicting entries that were about to be queried; when phase-1 causes
  dominate again the slack decays back to zero (the paper's behaviour).
* **Shard budget rebalancing** (:class:`ShardBudgetBalancer`): the
  sharded facade periodically shifts a bounded slice of the byte budget
  from the coldest shard to the hottest one.  Routing is untouched, so
  sharded==unsharded answer equality is preserved by construction; only
  flush cadence per shard changes.

Everything here is deterministic: decisions depend only on logical
counters (query/eviction counts, flush counts, miss causes), ties break
on a stable key order, and no wall-clock time is read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from repro.core.eviction_ledger import (
    CAUSE_PHASE2_AGGRESSIVE,
    CAUSE_PHASE3_FORCED,
)

__all__ = [
    "AdaptiveSettings",
    "AdaptiveController",
    "KAllocator",
    "KeyHeat",
    "ShardBudgetBalancer",
]

#: Miss causes that mean "a wholesale eviction removed data a query
#: wanted" — the signal that escalation is running too hot.
_WHOLESALE_CAUSES = frozenset({CAUSE_PHASE2_AGGRESSIVE, CAUSE_PHASE3_FORCED})


@dataclass(frozen=True)
class AdaptiveSettings:
    """Tuning knobs of the feedback controller (see ``SystemConfig``)."""

    #: Flush cycles between retune decisions.  Retuning is cheap (a few
    #: bounded sorts over the recently-active key set), and short eval
    #: windows at small scales see few flushes, so the default retunes
    #: at every flush boundary.
    interval: int = 1
    #: Hard cap on any per-key retention depth (None = ``16 * k``).  The
    #: ceiling is sized for AND queries: an operational AND hit needs
    #: ``k`` *intersecting* records in memory, and correlated pairs
    #: co-occur in a minority of their postings, so both sides need
    #: several multiples of ``k`` retained before intersections clear it.
    k_max: Optional[int] = None
    #: Size of the hot set promoted to deeper retention each retune.
    hot_keys: int = 32
    #: Max fraction of the total byte budget one shard rebalance may move.
    shard_step: float = 0.05
    #: Escalation-slack adjustment per retune and its ceiling.
    slack_step: float = 0.1
    slack_max: float = 0.5
    #: Minimum misses in a retune window before the slack is adjusted.
    min_window_misses: int = 8
    #: Wholesale-cause miss fractions that raise / lower the slack.
    escalate_high: float = 0.5
    escalate_low: float = 0.2

    def resolved_k_max(self, k: int) -> int:
        """The depth ceiling for a system running at global ``k``."""
        if self.k_max is None:
            return 16 * k
        return max(self.k_max, k)


def _stable_top(counts: dict, n: int) -> list[tuple[Hashable, int]]:
    """Top-``n`` (key, count) pairs, highest count first; ties break on
    the keys' ``repr`` so the result is process- and seed-stable."""
    return sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:n]


class KeyHeat:
    """Per-key query/miss/eviction counters (the controller's input).

    ``queried``/``missed`` are keyed by *raw* query keys (fed by the
    executor's feedback hook); ``evicted`` is keyed by *index* keys —
    interned ids under the columnar layout — because it is fed straight
    from ``note_eviction``.  The two spaces are translated only at
    decision/snapshot boundaries, never on the hot path.
    """

    __slots__ = ("queried", "missed", "evicted")

    def __init__(self) -> None:
        self.queried: dict[Hashable, int] = {}
        self.missed: dict[Hashable, int] = {}
        self.evicted: dict[Hashable, int] = {}

    def note_query(self, keys, hit: bool) -> None:
        queried = self.queried
        for key in keys:
            queried[key] = queried.get(key, 0) + 1
        if not hit:
            missed = self.missed
            for key in keys:
                missed[key] = missed.get(key, 0) + 1

    def note_eviction(self, key: Hashable, postings: int) -> None:
        self.evicted[key] = self.evicted.get(key, 0) + postings

    def top_queried(self, n: int) -> list[tuple[Hashable, int]]:
        return _stable_top(self.queried, n)

    def top_missed(self, n: int) -> list[tuple[Hashable, int]]:
        return _stable_top(self.missed, n)

    def top_evicted(self, n: int) -> list[tuple[Hashable, int]]:
        return _stable_top(self.evicted, n)

    def decay(self) -> None:
        """Halve every counter and drop the zeros: recent activity
        dominates each retune window and memory stays bounded by the
        set of recently active keys."""
        for counts in (self.queried, self.missed, self.evicted):
            for key in list(counts):
                half = counts[key] // 2
                if half:
                    counts[key] = half
                else:
                    del counts[key]


class KAllocator:
    """Per-key retention depth with a structural ``k_i >= k`` floor.

    Sparse: only keys deepened beyond the global ``k`` are stored, so
    the neutral allocator costs one dict ``get`` per consulted key and
    ``depth_of`` degenerates to the global ``k`` everywhere.
    """

    __slots__ = ("base_k", "_depths")

    def __init__(self, base_k: int) -> None:
        if base_k <= 0:
            raise ValueError(f"base_k must be positive, got {base_k}")
        self.base_k = base_k
        self._depths: dict[Hashable, int] = {}

    def depth_of(self, key: Hashable) -> int:
        """Retention depth for ``key`` — never below the global ``k``."""
        return self._depths.get(key, self.base_k)

    def set_depth(self, key: Hashable, depth: int) -> int:
        """Set ``key``'s depth, clamped to ``>= base_k``; a depth at the
        base drops the key back to the sparse default.  Returns the
        effective depth."""
        depth = max(depth, self.base_k)
        if depth == self.base_k:
            self._depths.pop(key, None)
        else:
            self._depths[key] = depth
        return depth

    def rebase(self, base_k: int) -> None:
        """Follow a dynamic-k change (Section IV-C): the floor moves to
        the new ``k`` and any stored depth at or below it collapses back
        to the default."""
        if base_k <= 0:
            raise ValueError(f"base_k must be positive, got {base_k}")
        self.base_k = base_k
        self._depths = {
            key: depth for key, depth in self._depths.items() if depth > base_k
        }

    def deepened_keys(self) -> tuple[Hashable, ...]:
        return tuple(self._depths)

    def max_depth(self) -> int:
        if not self._depths:
            return self.base_k
        return max(self._depths.values())

    def __len__(self) -> int:
        return len(self._depths)


class AdaptiveController:
    """Deterministic retune loop of one memory engine.

    Observes query outcomes (via the executor feedback hook) and flush
    completions (via ``MemoryEngine.run_flush``); every ``interval``
    flush cycles it promotes the hottest queried and most-missed keys to
    deeper retention, decays keys that fell out of the hot set, and nudges the
    phase-escalation slack against the wholesale-eviction miss rate.
    """

    def __init__(self, settings: AdaptiveSettings, engine) -> None:
        self.settings = settings
        self.engine = engine
        self._flushes = 0
        #: Query-outcome window, reset every retune.
        self._window_queries = 0
        self._window_misses = 0
        self._window_wholesale = 0

    # -- inputs --------------------------------------------------------

    def observe(self, hit: bool, cause: Optional[str]) -> None:
        """One query outcome (cause is None on hits)."""
        self._window_queries += 1
        if not hit:
            self._window_misses += 1
            if cause in _WHOLESALE_CAUSES:
                self._window_wholesale += 1

    def on_flush(self, engine) -> None:
        """Flush-cycle boundary: retune every ``interval`` cycles."""
        self._flushes += 1
        if self._flushes % self.settings.interval:
            return
        self.retune(engine)

    # -- decisions -----------------------------------------------------

    def _index_key(self, engine, key: Hashable) -> Optional[Hashable]:
        """Translate a raw query key into the engine's index key space
        (interned id under the columnar layout); None when the key was
        never ingested — nothing to deepen."""
        if getattr(engine, "columnar", False):
            return engine.interner.maybe(key)
        return key

    def retune(self, engine) -> None:
        registry = engine.obs.registry
        registry.counter("adaptive.retune_cycles").inc()
        settings = self.settings
        heat = engine.key_heat
        allocator = getattr(engine, "allocator", None)
        if allocator is not None and heat is not None:
            k_max = settings.resolved_k_max(engine.k)
            promotions = demotions = 0
            hot: set[Hashable] = set()
            # The hot set is the union of the most-queried keys (demand)
            # and the most-missed keys (unmet demand — dominated by the
            # AND-pair participants whose intersections fell below k once
            # Phase 1 trimmed both sides to the global top-k).
            for key, _count in heat.top_queried(
                settings.hot_keys
            ) + heat.top_missed(settings.hot_keys):
                ikey = self._index_key(engine, key)
                if ikey is None or ikey in hot:
                    continue
                hot.add(ikey)
                current = allocator.depth_of(ikey)
                target = min(k_max, max(current * 4, current + 1))
                if target != current:
                    allocator.set_depth(ikey, target)
                    engine.index.refresh_overflow(ikey)
                    promotions += 1
            for ikey in allocator.deepened_keys():
                if ikey in hot:
                    continue
                current = allocator.depth_of(ikey)
                allocator.set_depth(ikey, max(allocator.base_k, current // 2))
                engine.index.refresh_overflow(ikey)
                demotions += 1
            if promotions:
                registry.counter("adaptive.promotions").inc(promotions)
            if demotions:
                registry.counter("adaptive.demotions").inc(demotions)
            registry.gauge("adaptive.deepened_keys").set(len(allocator))
            registry.gauge("adaptive.max_depth").set(allocator.max_depth())
        if hasattr(engine, "escalation_slack"):
            self._retune_slack(engine, registry)
        self._window_queries = 0
        self._window_misses = 0
        self._window_wholesale = 0
        if heat is not None:
            heat.decay()

    def _retune_slack(self, engine, registry) -> None:
        settings = self.settings
        misses = self._window_misses
        if misses >= settings.min_window_misses:
            fraction = self._window_wholesale / misses
            slack = engine.escalation_slack
            if fraction >= settings.escalate_high:
                slack = min(settings.slack_max, slack + settings.slack_step)
            elif fraction <= settings.escalate_low:
                slack = max(0.0, slack - settings.slack_step)
            engine.escalation_slack = slack
        registry.gauge("adaptive.escalation_slack").set(engine.escalation_slack)


class ShardBudgetBalancer:
    """Bounded, sum-preserving shard-budget shifts toward hot shards.

    Every ``interval * shards`` completed shard flushes, the shard that
    flushed most in the window takes up to ``shard_step`` of the total
    byte budget from the shard that flushed least, floored at half of
    each shard's original budget so no shard can be starved.  Capacities
    are updated on both the :class:`~repro.engine.sharded.Shard` and its
    engine (``needs_flush`` reads the engine's own field).
    """

    def __init__(self, settings: AdaptiveSettings, shards) -> None:
        self.settings = settings
        self._flushes = 0
        self._period = max(1, settings.interval * len(shards))
        self._last_counts = [0] * len(shards)
        #: Budget floors: half of each shard's construction-time budget.
        self._floors = [max(1, shard.capacity_bytes // 2) for shard in shards]

    def on_shard_flush(self, system) -> None:
        self._flushes += 1
        if self._flushes % self._period:
            return
        self.rebalance(system)

    def rebalance(self, system) -> None:
        shards = system.shards
        counts = [len(shard.engine.flush_reports) for shard in shards]
        window = [c - p for c, p in zip(counts, self._last_counts)]
        self._last_counts = counts
        hot = cold = 0
        for i in range(1, len(window)):
            if window[i] > window[hot]:
                hot = i
            if window[i] < window[cold]:
                cold = i
        if window[hot] <= window[cold]:
            return
        total = sum(shard.capacity_bytes for shard in shards)
        step = max(1, int(total * self.settings.shard_step))
        give = min(step, shards[cold].capacity_bytes - self._floors[cold])
        if give <= 0:
            return
        shards[cold].capacity_bytes -= give
        shards[cold].engine.capacity_bytes -= give
        shards[hot].capacity_bytes += give
        shards[hot].engine.capacity_bytes += give
        registry = system.obs.registry
        registry.counter("adaptive.shard_rebalances").inc()
        registry.counter("adaptive.shard_bytes_moved").inc(give)
        registry.gauge(f"shard.{shards[hot].shard_id}.memory.capacity_bytes").set(
            shards[hot].capacity_bytes
        )
        registry.gauge(f"shard.{shards[cold].shard_id}.memory.capacity_bytes").set(
            shards[cold].capacity_bytes
        )
