"""repro — reproduction of "On Main-memory Flushing in Microblogs Data
Management Systems" (Magdy, Alghamdi, Mokbel; ICDE 2016).

The package implements the paper's kFlushing policy (with its
multiple-keyword extension), the FIFO and LRU baselines, the complete
main-memory/disk microblog store substrate they run on, synthetic
Twitter-shaped workloads, and the full experiment harness that regenerates
every figure of the paper's evaluation.

Quickstart::

    from repro import MicroblogSystem, SystemConfig, KeywordQuery
    from repro.workload import MicroblogStream, StreamConfig

    system = MicroblogSystem(SystemConfig(policy="kflushing", k=20,
                                          memory_capacity_bytes=2_000_000))
    stream = MicroblogStream(StreamConfig(seed=1))
    system.ingest_many(stream.take(50_000))
    result = system.search(KeywordQuery(stream.vocabulary.tag(0)))
    print(result.memory_hit, [p.blog_id for p in result.postings])
"""

from repro.config import SystemConfig
from repro.core import (
    FIFOEngine,
    FlushReport,
    KFlushingEngine,
    LRUEngine,
    MemoryEngine,
    POLICY_NAMES,
    create_engine,
)
from repro.engine import (
    AndQuery,
    CombineMode,
    KeywordQuery,
    MicroblogSystem,
    OrQuery,
    QueryResult,
    SpatialQuery,
    TopKQuery,
    UserQuery,
    parse_query,
)
from repro.errors import (
    CapacityError,
    ConfigurationError,
    DuplicateRecordError,
    FlushError,
    QueryError,
    ReproError,
    UnknownKeyError,
    UnknownRecordError,
    WorkloadError,
)
from repro.model import (
    GeoPoint,
    KeywordAttribute,
    Microblog,
    PopularityRanking,
    SpatialGridAttribute,
    TemporalRanking,
    UserAttribute,
)
from repro.storage import DiskArchive, MemoryModel

__version__ = "1.0.0"

__all__ = [
    "AndQuery",
    "CapacityError",
    "CombineMode",
    "ConfigurationError",
    "create_engine",
    "DiskArchive",
    "DuplicateRecordError",
    "FIFOEngine",
    "FlushError",
    "FlushReport",
    "GeoPoint",
    "KeywordAttribute",
    "KeywordQuery",
    "KFlushingEngine",
    "LRUEngine",
    "MemoryEngine",
    "MemoryModel",
    "Microblog",
    "MicroblogSystem",
    "OrQuery",
    "POLICY_NAMES",
    "PopularityRanking",
    "QueryError",
    "QueryResult",
    "ReproError",
    "SpatialGridAttribute",
    "SpatialQuery",
    "SystemConfig",
    "TemporalRanking",
    "TopKQuery",
    "UnknownKeyError",
    "UnknownRecordError",
    "UserAttribute",
    "UserQuery",
    "WorkloadError",
    "__version__",
    "parse_query",
]
