"""The system facade: ingestion, flushing, and query serving in one object.

:class:`MicroblogSystem` wires a configured memory engine (policy + store
layout), the simulated disk archive, the query executor, and the metrics
together, reproducing the environment of the paper's Figure 2:

* a stream of microblogs is *digested* into the in-memory store;
* when the memory budget fills, the flushing policy evicts at least the
  flushing budget B to disk;
* incoming top-k queries are answered memory-first, falling back to disk
  on a miss — and the hit ratio is the headline metric.

:class:`MicroblogSystemBase` holds the facade surface shared with the
hash-partitioned sibling (:class:`repro.engine.sharded.ShardedMicroblogSystem`):
experiment harnesses program against the base contract and work with
either build.  Use :func:`repro.engine.sharded.build_system` to construct
whichever the config asks for.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Hashable, Iterable, Optional

from repro.config import SystemConfig
from repro.core import create_engine
from repro.core.policy import FlushReport, MemoryEngine
from repro.engine.clock import LogicalClock
from repro.engine.executor import QueryExecutor, QueryResult
from repro.engine.queries import TopKQuery
from repro.engine.stats import SystemStats
from repro.errors import CapacityError
from repro.model.microblog import Microblog
from repro.obs import Instrumentation
from repro.obs.runtime import get_active
from repro.storage.disk import DiskArchive

__all__ = ["MicroblogSystem", "MicroblogSystemBase"]


class MicroblogSystemBase(ABC):
    """Facade contract shared by the single-partition and sharded systems.

    Subclass ``__init__`` must set ``config``, ``obs``, ``executor``,
    ``clock``, and ``stats``; the base class implements everything that
    is agnostic to how many partitions sit behind the executor.
    """

    config: SystemConfig
    obs: Instrumentation
    executor: QueryExecutor
    clock: LogicalClock
    stats: SystemStats

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    @abstractmethod
    def ingest(self, record: Microblog) -> bool:
        """Digest one record; triggers a flush when memory fills.

        Returns False when the record has no keys under the configured
        attribute (e.g. a tweet without hashtags in a keyword system) and
        was skipped.
        """

    def ingest_many(self, records: Iterable[Microblog]) -> int:
        """Digest a batch; returns how many records were indexed."""
        indexed = 0
        for record in records:
            if self.ingest(record):
                indexed += 1
        return indexed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def search(self, query: TopKQuery, now: Optional[float] = None) -> QueryResult:
        """Evaluate a top-k query and record hit/miss statistics."""
        executed_at = self.now if now is None else now
        result = self.executor.execute(query, executed_at)
        self.stats.queries.record(
            query.mode, result.memory_hit, result.simulated_latency
        )
        return result

    def fetch_records(self, result: QueryResult) -> list[Microblog]:
        """Materialize the record bodies of a query result."""
        return self.executor.materialize(result)

    # ------------------------------------------------------------------
    # Control and metrics
    # ------------------------------------------------------------------

    @abstractmethod
    def set_k(self, k: int) -> None:
        """Change k at run time (Section IV-C); applies from the next
        flush cycle onward."""

    def snapshot(self) -> dict:
        """Point-in-time view of the instrumentation registry: every
        counter, gauge, and histogram this system's components recorded
        (flush spans, per-mode query hits/misses, disk I/O, ...)."""
        return self.obs.registry.snapshot()

    def hit_ratio(self) -> float:
        return self.stats.queries.hit_ratio

    def miss_attribution(self) -> dict[str, int]:
        """Memory misses grouped by the eviction decision that caused
        them: ``{"phase1-regular": 12, "never-resident": 3, ...}``.
        Empty unless the shared Instrumentation has ``attribution=True``
        (and at least one miss occurred)."""
        return self.obs.registry.counter_values("query.miss.cause.")

    @abstractmethod
    def k_filled_count(self) -> int:
        """Keys whose provable in-memory top-k is complete (Fig 7)."""

    @abstractmethod
    def memory_utilization(self) -> float:
        """Used fraction of the (total) memory budget."""

    @abstractmethod
    def frequency_snapshot(self) -> dict[Hashable, int]:
        """Key -> in-memory posting count (the Figure 1 snapshot)."""

    @abstractmethod
    def flush_reports(self) -> list[FlushReport]:
        """Every flush this system ran, in chronological order."""

    def digestion_rate(self) -> float:
        """Pure insert-path digestion rate (records per wall second)."""
        return self.stats.ingest.digestion_rate

    def effective_digestion_rate(self) -> float:
        """Digestion rate charged with all work that contends with the
        ingestion path in a real deployment: flushing and the policy
        bookkeeping triggered by queries.  This is the Figure 10(b)
        measure — it is what separates FIFO, kFlushing, kFlushing-MK, and
        LRU when queries and flushes run alongside ingestion.
        """
        ingest = self.stats.ingest
        total = ingest.insert_seconds + ingest.flush_seconds
        total += self.executor.bookkeeping_seconds
        if total <= 0.0:
            return 0.0
        return ingest.indexed / total

    @abstractmethod
    def policy_overhead_bytes(self) -> int:
        """Modelled bytes of the policy's private bookkeeping (Fig 10a)."""

    def latency_percentile(self, p: float) -> float:
        """Simulated query-latency percentile (the intro's SLO measure):
        memory hits cost microseconds, misses pay simulated disk I/O."""
        return self.stats.queries.latency.percentile(p)

    @abstractmethod
    def check_integrity(self) -> None:
        """Assert the system's internal invariants."""


class MicroblogSystem(MicroblogSystemBase):
    """A complete microblogs data-management system (Figure 2)."""

    def __init__(
        self,
        config: SystemConfig,
        strict_and: bool = False,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config
        #: Instrumentation shared by every component of this system.  An
        #: explicit argument wins; otherwise the enclosing
        #: ``repro.obs.activated`` scope (experiment runs) or a private
        #: registry (the library default).
        self.obs = obs if obs is not None else (get_active() or Instrumentation())
        self.attribute = config.build_attribute()
        self.ranking = config.build_ranking()
        self.disk = DiskArchive(
            config.memory_model,
            config.disk_cost,
            obs=self.obs,
            cache_bytes=config.disk_cache_bytes,
            elide_empty=config.disk_elide_empty,
        )
        self.engine: MemoryEngine = create_engine(
            config.policy,
            model=config.memory_model,
            ranking=self.ranking,
            attribute=self.attribute,
            k=config.k,
            capacity_bytes=config.memory_capacity_bytes,
            flush_fraction=config.flush_fraction,
            disk=self.disk,
            obs=self.obs,
        )
        self.executor = QueryExecutor(
            self.engine,
            self.disk,
            strict_and=strict_and,
            and_scan_depth=config.and_scan_depth,
            and_disk_limit=config.and_disk_limit,
            obs=self.obs,
        )
        self.clock = LogicalClock()
        self.stats = SystemStats()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, record: Microblog) -> bool:
        self.clock.advance_to(record.timestamp)
        self.stats.ingest.offered += 1
        start = time.perf_counter()
        indexed = self.engine.insert(record)
        self.stats.ingest.insert_seconds += time.perf_counter() - start
        if indexed:
            self.stats.ingest.indexed += 1
        else:
            self.stats.ingest.skipped += 1
            return False
        if self.engine.needs_flush():
            self._flush()
        return True

    def _flush(self) -> FlushReport:
        before = self.engine.memory_bytes
        self.stats.sample_memory(
            self.now, before, self.config.memory_capacity_bytes, kind="before"
        )
        report = self.engine.run_flush(self.now)
        self.stats.ingest.flush_seconds += report.wall_seconds
        after = self.engine.memory_bytes
        self.stats.sample_memory(
            self.now, after, self.config.memory_capacity_bytes, kind="after"
        )
        self.obs.registry.gauge("memory.bytes_used").set(after)
        self.obs.registry.gauge("memory.capacity_bytes").set(
            self.config.memory_capacity_bytes
        )
        if report.freed_bytes <= 0 and after >= self.config.memory_capacity_bytes:
            raise CapacityError(
                f"flush freed nothing at {after} bytes used of "
                f"{self.config.memory_capacity_bytes}; a single record may "
                "exceed the memory budget"
            )
        return report

    # ------------------------------------------------------------------
    # Control and metrics
    # ------------------------------------------------------------------

    def set_k(self, k: int) -> None:
        self.engine.set_k(k)

    def k_filled_count(self) -> int:
        return self.engine.k_filled_count()

    def memory_utilization(self) -> float:
        return self.engine.memory_bytes / self.config.memory_capacity_bytes

    def frequency_snapshot(self) -> dict[Hashable, int]:
        return self.engine.frequency_snapshot()

    def flush_reports(self) -> list[FlushReport]:
        return self.engine.flush_reports

    def policy_overhead_bytes(self) -> int:
        return self.engine.policy_overhead_bytes

    def check_integrity(self) -> None:
        self.engine.check_integrity()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroblogSystem(policy={self.config.policy!r}, "
            f"attr={self.attribute.name!r}, k={self.engine.k}, "
            f"records={self.engine.record_count()})"
        )
