"""The system facade: ingestion, flushing, and query serving in one object.

:class:`MicroblogSystem` wires a configured memory engine (policy + store
layout), the simulated disk archive, the query executor, and the metrics
together, reproducing the environment of the paper's Figure 2:

* a stream of microblogs is *digested* into the in-memory store;
* when the memory budget fills, the flushing policy evicts at least the
  flushing budget B to disk;
* incoming top-k queries are answered memory-first, falling back to disk
  on a miss — and the hit ratio is the headline metric.

:class:`MicroblogSystemBase` holds the facade surface shared with the
hash-partitioned sibling (:class:`repro.engine.sharded.ShardedMicroblogSystem`):
experiment harnesses program against the base contract and work with
either build.  Use :func:`repro.engine.sharded.build_system` to construct
whichever the config asks for.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Hashable, Iterable, Optional

from repro.config import SystemConfig
from repro.core import create_engine
from repro.core.policy import FlushReport, MemoryEngine
from repro.engine.clock import LogicalClock
from repro.engine.executor import QueryExecutor, QueryResult
from repro.engine.pipeline import FlushWorkerPool, LockedDiskView, PipelinedEngine
from repro.engine.queries import TopKQuery
from repro.engine.stats import SystemStats
from repro.errors import CapacityError
from repro.model.microblog import Microblog
from repro.obs import Instrumentation
from repro.obs.recorder import FlightRecorder, attach_flight_recorder
from repro.obs.runtime import get_active
from repro.obs.slo import SLOTracker
from repro.obs.watermarks import WatermarkTracker
from repro.storage.disk import DiskArchive
from repro.storage.interner import get_global_interner

__all__ = ["MicroblogSystem", "MicroblogSystemBase"]


class MicroblogSystemBase(ABC):
    """Facade contract shared by the single-partition and sharded systems.

    Subclass ``__init__`` must set ``config``, ``obs``, ``executor``,
    ``clock``, and ``stats``; the base class implements everything that
    is agnostic to how many partitions sit behind the executor.
    """

    config: SystemConfig
    obs: Instrumentation
    executor: QueryExecutor
    clock: LogicalClock
    stats: SystemStats
    #: Black-box ring buffer (``config.flight_recorder_events > 0``).
    flight_recorder: Optional[FlightRecorder]
    #: Error-budget tracker (``config.slo_spec`` set), ticked per flush.
    slo_tracker: Optional[SLOTracker]
    #: Resource high-water marks, sampled at flush boundaries.
    watermarks: WatermarkTracker

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    @abstractmethod
    def ingest(self, record: Microblog) -> bool:
        """Digest one record; triggers a flush when memory fills.

        Returns False when the record has no keys under the configured
        attribute (e.g. a tweet without hashtags in a keyword system) and
        was skipped.
        """

    def ingest_many(self, records: Iterable[Microblog]) -> int:
        """Digest a batch; returns how many records were indexed."""
        indexed = 0
        for record in records:
            if self.ingest(record):
                indexed += 1
        return indexed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def search(self, query: TopKQuery, now: Optional[float] = None) -> QueryResult:
        """Evaluate a top-k query and record hit/miss statistics."""
        executed_at = self.now if now is None else now
        result = self.executor.execute(query, executed_at)
        self.stats.queries.record(
            query.mode,
            result.memory_hit,
            result.simulated_latency,
            disk_lookups=result.disk_lookups,
        )
        return result

    def fetch_records(self, result: QueryResult) -> list[Microblog]:
        """Materialize the record bodies of a query result."""
        return self.executor.materialize(result)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def quiesce(self) -> None:
        """Wait for any in-flight background flush work and fold rotated
        memtables back in.  No-op for synchronous builds; pipelined
        builds override it.  Call before reading final metrics."""

    def close(self) -> None:
        """Quiesce and release background resources (worker threads).
        Idempotent; no-op for synchronous builds."""
        self.quiesce()

    def _record_stall(self, seconds: float) -> None:
        """Account one ingest-path pause: a synchronous/inline flush, a
        pipelined backpressure wait, or a non-empty reconcile.  Feeds the
        ``ingest.stall_seconds`` histogram — the p99 of these pauses is
        the pipelined-ingest headline metric."""
        self.stats.ingest.record_stall(seconds)
        self.obs.registry.counter("ingest.stalls").inc()
        self.obs.registry.histogram("ingest.stall_seconds").record(seconds)

    # ------------------------------------------------------------------
    # Service levels (SLO tracker, flight recorder, watermarks)
    # ------------------------------------------------------------------

    def _resolve_obs(
        self, config: SystemConfig, obs: Optional[Instrumentation]
    ) -> Instrumentation:
        """Resolve the system's Instrumentation (explicit arg > active
        scope > private) and, when the flight recorder is configured,
        fork it with the recorder tee'd in front of the sink.  Must run
        before any component is built so everything traces through the
        recorder."""
        resolved = obs if obs is not None else (get_active() or Instrumentation())
        self.flight_recorder = None
        if config.flight_recorder_events > 0:
            resolved, self.flight_recorder = attach_flight_recorder(
                resolved, config.flight_recorder_events
            )
        return resolved

    def _init_service_levels(self) -> None:
        """Build the watermark tracker and (when configured) the SLO
        tracker; called at the end of subclass ``__init__``."""
        self.watermarks = WatermarkTracker(self.obs.registry)
        self.slo_tracker = None
        spec = self.config.build_slo_spec()
        if spec is not None:
            tracker = SLOTracker(spec, self.obs.registry, emit=self.obs.event)
            if self.flight_recorder is not None:
                tracker.add_breach_callback(self._dump_on_breach)
            self.slo_tracker = tracker

    def _service_level_tick(self) -> None:
        """One flush-boundary heartbeat: sample resource watermarks,
        then evaluate the SLO objectives.  Runs on the flush-worker
        thread in pipelined mode — everything it touches is either
        lock-free reads or internally locked."""
        self._sample_watermarks()
        if self.slo_tracker is not None:
            self.slo_tracker.tick()

    def _sample_watermarks(self) -> None:
        """Feed the watermark tracker; subclasses override."""

    def slo_state(self) -> Optional[dict]:
        """The SLO tracker's state dict, or None when no spec is set."""
        if self.slo_tracker is None:
            return None
        return self.slo_tracker.state()

    def dump_flight_recorder(
        self, path: Optional[str] = None, reason: str = "on_demand"
    ):
        """Write the black box (recent traces + registry snapshot + SLO
        state) to ``path``; returns the path written, or None when the
        recorder is off."""
        if self.flight_recorder is None:
            return None
        target = (
            path if path is not None else self.config.resolved_flight_recorder_path()
        )
        return self.flight_recorder.dump(
            target,
            registry=self.obs.registry,
            slo_state=self.slo_state(),
            reason=reason,
        )

    def _dump_on_breach(self, payload: dict) -> None:
        self.dump_flight_recorder(reason=f"slo_breach:{payload['name']}")

    # ------------------------------------------------------------------
    # Control and metrics
    # ------------------------------------------------------------------

    @abstractmethod
    def set_k(self, k: int) -> None:
        """Change k at run time (Section IV-C); applies from the next
        flush cycle onward."""

    def snapshot(self) -> dict:
        """Point-in-time view of the instrumentation registry: every
        counter, gauge, and histogram this system's components recorded
        (flush spans, per-mode query hits/misses, disk I/O, ...)."""
        return self.obs.registry.snapshot()

    def hit_ratio(self) -> float:
        return self.stats.queries.hit_ratio

    def miss_attribution(self) -> dict[str, int]:
        """Memory misses grouped by the eviction decision that caused
        them: ``{"phase1-regular": 12, "never-resident": 3, ...}``.
        Empty unless the shared Instrumentation has ``attribution=True``
        (and at least one miss occurred)."""
        return self.obs.registry.counter_values("query.miss.cause.")

    @abstractmethod
    def k_filled_count(self) -> int:
        """Keys whose provable in-memory top-k is complete (Fig 7)."""

    @abstractmethod
    def memory_utilization(self) -> float:
        """Used fraction of the (total) memory budget."""

    @abstractmethod
    def frequency_snapshot(self) -> dict[Hashable, int]:
        """Key -> in-memory posting count (the Figure 1 snapshot)."""

    @abstractmethod
    def flush_reports(self) -> list[FlushReport]:
        """Every flush this system ran, in chronological order."""

    def digestion_rate(self) -> float:
        """Pure insert-path digestion rate (records per wall second)."""
        return self.stats.ingest.digestion_rate

    def effective_digestion_rate(self) -> float:
        """Digestion rate charged with all work that contends with the
        ingestion path in a real deployment: flushing and the policy
        bookkeeping triggered by queries.  This is the Figure 10(b)
        measure — it is what separates FIFO, kFlushing, kFlushing-MK, and
        LRU when queries and flushes run alongside ingestion.
        """
        ingest = self.stats.ingest
        total = ingest.insert_seconds + ingest.flush_seconds
        total += self.executor.bookkeeping_seconds
        if total <= 0.0:
            return 0.0
        return ingest.indexed / total

    @abstractmethod
    def policy_overhead_bytes(self) -> int:
        """Modelled bytes of the policy's private bookkeeping (Fig 10a)."""

    def latency_percentile(self, p: float) -> float:
        """Simulated query-latency percentile (the intro's SLO measure):
        memory hits cost microseconds, misses pay simulated disk I/O."""
        return self.stats.queries.latency.percentile(p)

    @abstractmethod
    def check_integrity(self) -> None:
        """Assert the system's internal invariants."""


class MicroblogSystem(MicroblogSystemBase):
    """A complete microblogs data-management system (Figure 2)."""

    def __init__(
        self,
        config: SystemConfig,
        strict_and: bool = False,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config
        #: Instrumentation shared by every component of this system.  An
        #: explicit argument wins; otherwise the enclosing
        #: ``repro.obs.activated`` scope (experiment runs) or a private
        #: registry (the library default).  When the flight recorder is
        #: configured the resolved instance is forked with the recorder
        #: ring buffer tee'd in front of the sink.
        self.obs = self._resolve_obs(config, obs)
        self.attribute = config.build_attribute()
        self.ranking = config.build_ranking()
        model = config.effective_memory_model()
        interner = get_global_interner() if config.columnar else None
        self.disk = DiskArchive(
            model,
            config.disk_cost,
            obs=self.obs,
            cache_bytes=config.disk_cache_bytes,
            elide_empty=config.disk_elide_empty,
            interner=interner,
        )
        self.engine: MemoryEngine = create_engine(
            config.policy,
            model=model,
            ranking=self.ranking,
            attribute=self.attribute,
            k=config.k,
            capacity_bytes=config.memory_capacity_bytes,
            flush_fraction=config.flush_fraction,
            disk=self.disk,
            obs=self.obs,
            columnar=config.columnar,
            interner=interner,
            ledger_capacity=config.eviction_ledger_capacity,
            adaptive=config.adaptive_settings(),
        )
        #: Rotation coordinator when ``config.pipelined_ingest`` is on;
        #: None keeps the synchronous inline-flush path byte-for-byte.
        self._pipeline: Optional[PipelinedEngine] = None
        self._pool: Optional[FlushWorkerPool] = None
        if config.pipelined_ingest:
            self._pool = FlushWorkerPool(
                config.resolved_flush_workers(),
                config.resolved_flush_queue_limit(),
                obs=self.obs,
            )
            self._pipeline = PipelinedEngine(
                engine=self.engine,
                overlay_factory=self._build_overlay,
                overlay_capacity_bytes=config.overlay_capacity(0),
                pool=self._pool,
                obs=self.obs,
                record_stall=self._record_stall,
                on_before_flush=self._sample_flush_before,
                on_after_flush=self._note_flush_complete,
            )
        #: Store the executor and the metrics surface talk to: the
        #: pipeline (active + immutable memtables) or the bare engine.
        self._store = self._pipeline if self._pipeline is not None else self.engine
        self.executor = QueryExecutor(
            self._store,
            LockedDiskView(self.disk, self._pipeline.lock)
            if self._pipeline is not None
            else self.disk,
            strict_and=strict_and,
            and_scan_depth=config.and_scan_depth,
            and_disk_limit=config.and_disk_limit,
            obs=self.obs,
        )
        self.clock = LogicalClock()
        self.stats = SystemStats()
        self._init_service_levels()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, record: Microblog) -> bool:
        self.clock.advance_to(record.timestamp)
        self.stats.ingest.offered += 1
        pipeline = self._pipeline
        start = time.perf_counter()
        indexed = self._store.insert(record)
        self.stats.ingest.insert_seconds += time.perf_counter() - start
        if indexed:
            self.stats.ingest.indexed += 1
        else:
            self.stats.ingest.skipped += 1
            return False
        if pipeline is not None:
            pipeline.maybe_rotate(self.now)
        elif self.engine.needs_flush():
            self._flush()
        return True

    def _build_overlay(self) -> MemoryEngine:
        """A fresh same-policy engine to digest into while the long-lived
        engine is frozen for a background flush."""
        config = self.config
        # Overlays stay non-adaptive: they live for one rotation window
        # and are absorbed back into the long-lived engine, which owns
        # the heat, the allocator, and the retune schedule.
        return create_engine(
            config.policy,
            model=config.effective_memory_model(),
            ranking=self.ranking,
            attribute=self.attribute,
            k=self.engine.k,
            capacity_bytes=config.overlay_capacity(0),
            flush_fraction=config.flush_fraction,
            disk=self.disk,
            obs=self.obs,
            columnar=config.columnar,
            interner=self.engine.interner,
            ledger_capacity=config.eviction_ledger_capacity,
        )

    def _flush(self) -> FlushReport:
        self._sample_flush_before(self.now)
        report = self.engine.run_flush(self.now)
        # The synchronous flush stalls ingest for its whole wall time —
        # the baseline pause the pipelined mode exists to remove.
        self._record_stall(report.wall_seconds)
        self._note_flush_complete(report, self.now)
        return report

    def _sample_flush_before(self, now: float) -> None:
        self.stats.sample_memory(
            now,
            self.engine.memory_bytes,
            self.config.memory_capacity_bytes,
            kind="before",
        )

    def _note_flush_complete(self, report: FlushReport, now: float) -> None:
        """Post-flush accounting; runs on the worker thread when a drain
        completes in the background, inline otherwise."""
        self.stats.ingest.flush_seconds += report.wall_seconds
        after = self.engine.memory_bytes
        self.stats.sample_memory(
            now, after, self.config.memory_capacity_bytes, kind="after"
        )
        self.obs.registry.gauge("memory.bytes_used").set(after)
        self.obs.registry.gauge("memory.capacity_bytes").set(
            self.config.memory_capacity_bytes
        )
        if report.freed_bytes <= 0 and after >= self.config.memory_capacity_bytes:
            raise CapacityError(
                f"flush freed nothing at {after} bytes used of "
                f"{self.config.memory_capacity_bytes}; a single record may "
                "exceed the memory budget"
            )
        self._service_level_tick()

    def _sample_watermarks(self) -> None:
        # All reads here are lock-free (plain attribute/dict reads under
        # the GIL), so this is safe from the flush-worker thread.
        watermarks = self.watermarks
        total = self._store.memory_bytes
        watermarks.observe("memory.bytes_used", total)
        if self._pipeline is not None:
            watermarks.observe(
                "memory.overlay_bytes", max(0, total - self.engine.memory_bytes)
            )
            depth = self.obs.registry.get_gauge("pipeline.queue_depth")
            if depth is not None:
                watermarks.observe("pipeline.queue_depth", depth.value)
        cache = getattr(self.disk, "cache", None)
        if cache is not None:
            watermarks.observe("disk.cache_bytes", cache.bytes_used)
        ledger = getattr(self.engine, "eviction_ledger", None)
        if ledger is not None:
            watermarks.observe("eviction_ledger.entries", len(ledger))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def quiesce(self) -> None:
        if self._pipeline is not None:
            self._pipeline.quiesce(self.now)

    def close(self) -> None:
        self.quiesce()
        if self._pool is not None:
            self._pool.close()

    # ------------------------------------------------------------------
    # Control and metrics
    # ------------------------------------------------------------------

    def set_k(self, k: int) -> None:
        self._store.set_k(k)

    def k_filled_count(self) -> int:
        return self._store.k_filled_count()

    def memory_utilization(self) -> float:
        return self._store.memory_bytes / self.config.memory_capacity_bytes

    def frequency_snapshot(self) -> dict[Hashable, int]:
        return self._store.frequency_snapshot()

    def snapshot(self) -> dict:
        """Registry snapshot extended with the per-key hotness table
        (``hot_keys``) whenever heat tracking is on (attribution or
        adaptive mode)."""
        snap = super().snapshot()
        hot = self.engine.hot_keys()
        if hot:
            snap["hot_keys"] = hot
        return snap

    def flush_reports(self) -> list[FlushReport]:
        return self.engine.flush_reports

    def policy_overhead_bytes(self) -> int:
        return self._store.policy_overhead_bytes

    def check_integrity(self) -> None:
        self._store.check_integrity()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroblogSystem(policy={self.config.policy!r}, "
            f"attr={self.attribute.name!r}, k={self.engine.k}, "
            f"records={self.engine.record_count()})"
        )
