"""Logical clock: deterministic simulated time.

Experiments are deterministic: instead of wall time, every record carries a
simulated arrival timestamp assigned by its stream (e.g. 6,000 tweets/s →
1/6000 s apart), and the system's notion of *now* advances with the data.
:class:`LogicalClock` is the tiny monotone holder both the system and the
workload generators use.
"""

from __future__ import annotations

__all__ = ["LogicalClock"]


class LogicalClock:
    """A monotone simulated clock."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, time: float) -> float:
        """Move the clock forward to ``time`` (ignores moves backward)."""
        if time > self._now:
            self._now = time
        return self._now

    def advance_by(self, delta: float) -> float:
        """Move the clock forward by a non-negative ``delta``."""
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        self._now += delta
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogicalClock(now={self._now:.6f})"
