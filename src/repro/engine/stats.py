"""Runtime metrics: the performance measures the paper reports.

* **memory hit ratio** — fraction of queries whose full top-k answer was
  provably served from memory (Figures 8, 9, 11(b), 12(b));
* **k-filled keys** — keys whose in-memory top-k is complete (Figures 7,
  11(a), 12(a));
* **digestion** — records ingested and the wall time spent in the insert
  path, yielding the digestion rate of Figure 10(b);
* **flushing** — per-flush reports plus a memory-consumption timeline
  (Figure 5) sampled around every flush.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.engine.latency import LatencyHistogram
from repro.engine.queries import CombineMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.policy import FlushReport

__all__ = ["QueryStats", "IngestStats", "TimelinePoint", "SystemStats"]


@dataclass
class QueryStats:
    """Hit/miss counters, total and per combination mode."""

    queries: int = 0
    memory_hits: int = 0
    disk_reads: int = 0
    by_mode: dict[str, list] = field(default_factory=dict)  # mode -> [queries, hits]
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def record(
        self,
        mode: CombineMode,
        memory_hit: bool,
        latency_seconds: float = 0.0,
        disk_lookups: int = 0,
    ) -> None:
        self.queries += 1
        counters = self.by_mode.setdefault(mode.value, [0, 0])
        counters[0] += 1
        if memory_hit:
            self.memory_hits += 1
            counters[1] += 1
        else:
            # Count the disk index lookups the query actually paid: a
            # miss whose every disk probe was elided (negative-lookup
            # elision) read nothing from disk and must not inflate
            # disk_reads; an OR miss over several keys may pay several.
            self.disk_reads += disk_lookups
        # Every sample counts: dropping zero-latency queries would bias
        # latency_percentile() upward (hits cost ~0 under a null model).
        self.latency.record(latency_seconds)

    @property
    def memory_misses(self) -> int:
        return self.queries - self.memory_hits

    @property
    def hit_ratio(self) -> float:
        """Fraction of queries fully answered from memory (0 when idle)."""
        if self.queries == 0:
            return 0.0
        return self.memory_hits / self.queries

    def hit_ratio_for(self, mode: CombineMode) -> float:
        counters = self.by_mode.get(mode.value)
        if not counters or counters[0] == 0:
            return 0.0
        return counters[1] / counters[0]


@dataclass
class IngestStats:
    """Digestion counters and timing."""

    offered: int = 0
    indexed: int = 0
    skipped: int = 0
    #: Wall seconds spent inside the insert path (excludes flushing, which
    #: the paper runs on a separate thread).
    insert_seconds: float = 0.0
    #: Wall seconds spent inside flush operations.
    flush_seconds: float = 0.0
    #: Ingest-path pauses: one stall is any pause the write path could
    #: not overlap with digestion — the whole flush in synchronous mode;
    #: backpressure waits and non-empty overlay reconciles in pipelined
    #: mode.  The per-pause distribution lives in the instrumentation
    #: histogram ``ingest.stall_seconds``.
    stalls: int = 0
    stall_seconds: float = 0.0
    max_stall_seconds: float = 0.0

    def record_stall(self, seconds: float) -> None:
        """Account one ingest-path pause."""
        self.stalls += 1
        self.stall_seconds += seconds
        if seconds > self.max_stall_seconds:
            self.max_stall_seconds = seconds

    @property
    def digestion_rate(self) -> float:
        """Records indexed per wall-second of insert-path time."""
        if self.insert_seconds <= 0.0:
            return 0.0
        return self.indexed / self.insert_seconds


@dataclass(frozen=True)
class TimelinePoint:
    """One sample of the memory-consumption timeline (Figure 5)."""

    time: float
    bytes_used: int
    capacity: int
    #: "before" (flush trigger), "after" (flush done), or "sample".
    kind: str = "sample"
    #: Which shard this sample describes; None = the whole system
    #: (always None on an unsharded system).
    shard: Optional[int] = None

    @property
    def utilization(self) -> float:
        return self.bytes_used / self.capacity if self.capacity else 0.0


@dataclass
class SystemStats:
    """All metrics of one running system."""

    ingest: IngestStats = field(default_factory=IngestStats)
    queries: QueryStats = field(default_factory=QueryStats)
    timeline: list[TimelinePoint] = field(default_factory=list)

    def sample_memory(
        self,
        time: float,
        bytes_used: int,
        capacity: int,
        kind: str = "sample",
        shard: Optional[int] = None,
    ) -> None:
        self.timeline.append(TimelinePoint(time, bytes_used, capacity, kind, shard))

    def shard_timeline(self, shard: Optional[int]) -> list[TimelinePoint]:
        """The timeline restricted to one shard (None = system-level)."""
        return [point for point in self.timeline if point.shard == shard]

    def flush_summary(self, reports: list["FlushReport"]) -> dict[str, float]:
        """Aggregate per-flush reports into one summary dict."""
        if not reports:
            return {
                "flushes": 0,
                "records_flushed": 0,
                "mean_freed_fraction": 0.0,
                "targets_met": 0,
                "total_wall_seconds": 0.0,
            }
        return {
            "flushes": len(reports),
            "records_flushed": sum(r.records_flushed for r in reports),
            "mean_freed_fraction": sum(
                r.freed_bytes / max(1, r.target_bytes) for r in reports
            )
            / len(reports),
            "targets_met": sum(1 for r in reports if r.met_target),
            "total_wall_seconds": sum(r.wall_seconds for r in reports),
        }
