"""Pipelined ingest: memtable rotation plus background flush workers.

The paper runs flushing on a separate thread "so that the flushing
process does not interrupt the continuous digestion of incoming data"
(Section III).  The synchronous facades instead flush inline: every
capacity crossing freezes the write path for the whole flush.  This
module supplies the rotation machinery that removes that stall while
*preserving the flushing policy's semantics* — unlike an LSM memtable
swap, the rotated table is not drained wholesale (that would evict 100%
instead of the budget B and destroy kFlushing's retained top-k); the
long-lived policy engine itself is frozen, flushed by its own
``run_flush`` on a worker thread, and then re-united with the small
overlay that absorbed writes in the meantime.

Rotation lifecycle (all driven from the ingest thread except the drain):

1. **rotate** — the engine crosses its budget: the facade samples the
   "before" timeline point, a fresh *overlay* engine (same policy class)
   becomes the active memtable, and a drain task is queued to the
   bounded :class:`FlushWorkerPool`;
2. **drain** — a worker takes the shard lock and runs the frozen
   engine's normal ``run_flush`` (evicting >= B, exactly as the
   synchronous path would), then signals completion;
3. **reconcile** — the next ingest that sees the completed drain merges
   the overlay back into the engine via
   :meth:`~repro.core.policy.MemoryEngine.absorb` and the engine becomes
   the active memtable again.

Ingest blocks only on *backpressure*: the worker queue is full at
rotation time, or the overlay outgrows its budget while the flush is
still in flight.  Every such pause (and, in inline mode, the flush
itself) is recorded through the facade's stall hook — the
``ingest.stall_seconds`` histogram is the PR's headline artifact.

Queries during an open rotation window read **active + immutable +
disk**: :class:`PipelinedEngine` duck-types the engine surface the
:class:`~repro.engine.executor.QueryExecutor` uses and merges both
memtables' candidates with the shared best-first merge; the completeness
floor of the union is the max of the two floors (each engine's floor
covers the postings it owns, and a record lives in exactly one memtable,
so no candidate is double-counted and nothing above both floors can be
missing).  :class:`LockedDiskView` serializes the executor's disk reads
against the worker's batch commit.

``flush_workers=0`` is the deterministic *inline drain* mode: the full
rotate/drain/reconcile cycle runs synchronously inside the ingest call,
which is observably identical to the synchronous flush path — the
differential tests in ``tests/test_pipeline.py`` hold that bar.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Hashable, Iterable, Optional, Sequence

from repro.core.policy import FlushReport, LookupResult, MemoryEngine
from repro.obs import Instrumentation
from repro.storage.topk import merge_run_tails

__all__ = ["FlushWorkerPool", "PipelinedEngine", "LockedDiskView"]

#: Sentinel shutting one worker thread down.
_STOP = object()


class FlushWorkerPool:
    """Bounded queue of drain tasks plus the threads that run them.

    ``workers=0`` is inline mode: :meth:`submit` runs the task
    synchronously on the caller's thread (deterministic, used by the
    differential tests).  With ``workers>=1`` tasks are daemon-threaded;
    a full queue makes :meth:`submit` block and report the wait, which
    the caller accounts as ingest backpressure.
    """

    def __init__(
        self,
        workers: int,
        queue_limit: int,
        obs: Optional[Instrumentation] = None,
        name: str = "flush-worker",
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._obs = obs if obs is not None else Instrumentation()
        self._queue: Optional[queue.Queue] = (
            queue.Queue(maxsize=max(1, queue_limit)) if workers > 0 else None
        )
        self._depth_gauge = self._obs.registry.gauge("pipeline.queue_depth")
        self._obs.registry.gauge("pipeline.workers").set(workers)
        self._gate: Optional[threading.Event] = None
        self._threads: list[threading.Thread] = []
        for i in range(workers):
            thread = threading.Thread(
                target=self._run, name=f"{name}-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    @property
    def inline(self) -> bool:
        """True when tasks run synchronously on the submitting thread."""
        return self.workers == 0

    def submit(self, task: Callable[[], None]) -> float:
        """Queue one drain task; returns seconds blocked on a full queue."""
        if self._queue is None:
            task()
            return 0.0
        try:
            self._queue.put_nowait(task)
            blocked = 0.0
        except queue.Full:
            start = time.perf_counter()
            self._queue.put(task)
            blocked = time.perf_counter() - start
            self._obs.registry.counter("pipeline.queue_full_waits").inc()
        self._depth_gauge.set(self._queue.qsize())
        return blocked

    def _run(self) -> None:
        while True:
            task = self._queue.get()
            if task is _STOP:
                self._queue.task_done()
                return
            try:
                task()
            finally:
                self._depth_gauge.set(self._queue.qsize())
                self._queue.task_done()

    # The pause/resume pair wedges one worker on an event — tests use it
    # to hold a rotation window open deterministically.

    def pause(self) -> None:
        """Occupy one worker until :meth:`resume` (test hook)."""
        if self._queue is None:
            raise RuntimeError("cannot pause an inline pool")
        self._gate = threading.Event()
        gate = self._gate
        self._queue.put(gate.wait)

    def resume(self) -> None:
        """Release a worker blocked by :meth:`pause`."""
        if self._gate is not None:
            self._gate.set()
            self._gate = None

    def drain(self) -> None:
        """Block until every queued task has completed."""
        if self._queue is not None:
            self._queue.join()

    def close(self) -> None:
        """Stop the worker threads (queued tasks finish first)."""
        if self._queue is None or not self._threads:
            return
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads = []


class PipelinedEngine:
    """Rotation coordinator wrapping one long-lived policy engine.

    Duck-types the :class:`~repro.core.policy.MemoryEngine` surface the
    query executor and the facades use (``insert``, ``lookup``,
    ``note_query``, ``get_record``, ``eviction_cause``, metrics), adding
    the active/immutable split underneath.  All state transitions happen
    on the ingest thread; the worker thread only runs ``run_flush`` on
    the frozen engine under :attr:`lock` and sets the done event.
    """

    def __init__(
        self,
        *,
        engine: MemoryEngine,
        overlay_factory: Callable[[], MemoryEngine],
        overlay_capacity_bytes: int,
        pool: FlushWorkerPool,
        obs: Optional[Instrumentation] = None,
        record_stall: Optional[Callable[[float], None]] = None,
        on_before_flush: Optional[Callable[[float], None]] = None,
        on_after_flush: Optional[Callable[[FlushReport, float], None]] = None,
        label: str = "",
    ) -> None:
        self.engine = engine
        self.overlay_factory = overlay_factory
        self.overlay_capacity_bytes = overlay_capacity_bytes
        self.pool = pool
        self.obs = obs if obs is not None else Instrumentation()
        self._record_stall = record_stall or (lambda seconds: None)
        self._on_before_flush = on_before_flush or (lambda now: None)
        self._on_after_flush = on_after_flush or (lambda report, now: None)
        self.label = label
        #: Held by the worker for the whole drain; taken by query-path
        #: reads of the frozen engine (and by :class:`LockedDiskView`
        #: for disk reads, the commit target).  The ingest path never
        #: takes it — writes go to the overlay only.
        self.lock = threading.Lock()
        self._overlay: Optional[MemoryEngine] = None
        self._done = threading.Event()
        self._report: Optional[FlushReport] = None
        self._error: Optional[BaseException] = None
        self._rotate_now = 0.0

    # ------------------------------------------------------------------
    # Ingest path (main thread)
    # ------------------------------------------------------------------

    @property
    def flushing(self) -> bool:
        """True while a rotation window is open (overlay active)."""
        return self._overlay is not None

    def insert(self, record) -> bool:
        """Digest into the active memtable (overlay while rotated)."""
        overlay = self._overlay
        if overlay is not None:
            return overlay.insert(record)
        return self.engine.insert(record)

    def maybe_rotate(self, now: float) -> None:
        """Post-insert budget check: reconcile a finished drain, apply
        backpressure if the overlay outgrew its budget, and rotate when
        the (active) engine crossed its capacity.  At most one rotation
        per call — the same once-per-ingest cadence as the synchronous
        flush path."""
        self._raise_pending()
        overlay = self._overlay
        if overlay is not None:
            if self._done.is_set():
                self._reconcile(now)
            elif overlay.memory_bytes >= self.overlay_capacity_bytes:
                self._backpressure_wait(now)
            else:
                return
        if self._overlay is None and self.engine.needs_flush():
            self._rotate(now)

    def _rotate(self, now: float) -> None:
        registry = self.obs.registry
        registry.counter("pipeline.rotations").inc()
        if self.label:
            registry.counter(self.label + "pipeline.rotations").inc()
        self._on_before_flush(now)
        self._overlay = self.overlay_factory()
        self._done = threading.Event()
        self._report = None
        self._rotate_now = now
        blocked = self.pool.submit(self._drain_task)
        if blocked > 0.0:
            registry.counter("pipeline.backpressure_waits").inc()
            self._record_stall(blocked)
        self._raise_pending()
        if self.pool.inline and self._report is not None:
            # Inline mode: the drain ran synchronously inside submit();
            # the flush stalled this very ingest, mirror the synchronous
            # path's stall accounting.
            self._record_stall(self._report.wall_seconds)
        if self._done.is_set():
            self._reconcile(now)

    def _drain_task(self) -> None:
        """Worker body: one policy flush of the frozen engine."""
        now = self._rotate_now
        try:
            with self.lock:
                report = self.engine.run_flush(now)
            self._report = report
            self._on_after_flush(report, now)
            registry = self.obs.registry
            registry.counter("pipeline.flushes_drained").inc()
            if self.label:
                registry.counter(self.label + "pipeline.flushes_drained").inc()
        except BaseException as exc:  # re-raised on the ingest thread
            self._error = exc
        finally:
            self._done.set()

    def _backpressure_wait(self, now: float) -> None:
        """The overlay hit its budget with the flush still in flight:
        block until the drain completes, then reconcile."""
        registry = self.obs.registry
        registry.counter("pipeline.backpressure_waits").inc()
        if self.label:
            registry.counter(self.label + "pipeline.backpressure_waits").inc()
        start = time.perf_counter()
        self._done.wait()
        self._record_stall(time.perf_counter() - start)
        self._raise_pending()
        self._reconcile(now)

    def _reconcile(self, now: float) -> None:
        """Fold the overlay back into the freshly flushed engine."""
        self._raise_pending()
        overlay = self._overlay
        if overlay is None:
            return
        start = time.perf_counter()
        count = self.engine.absorb(overlay)
        self._overlay = None
        seconds = time.perf_counter() - start
        registry = self.obs.registry
        registry.counter("pipeline.reconciles").inc()
        registry.counter("pipeline.reconciled_records").inc(count)
        if self.label:
            registry.counter(self.label + "pipeline.reconciles").inc()
        if count:
            # Re-digesting a non-empty overlay is real ingest-path work;
            # count it as a stall so the histogram stays honest.
            self._record_stall(seconds)

    def _raise_pending(self) -> None:
        """Surface a worker-side failure (e.g. CapacityError) on the
        ingest thread."""
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def quiesce(self, now: Optional[float] = None) -> None:
        """Wait out any in-flight drain and reconcile; the engine is the
        sole memtable afterwards.  Not counted as an ingest stall."""
        if self._overlay is not None:
            self._done.wait()
            self._reconcile(now if now is not None else self._rotate_now)
        self._raise_pending()

    # ------------------------------------------------------------------
    # Query surface (executor-facing)
    # ------------------------------------------------------------------

    def lookup(self, key: Hashable, depth: Optional[int] = None) -> LookupResult:
        overlay = self._overlay
        if overlay is None:
            return self.engine.lookup(key, depth=depth)
        with self.lock:
            base = self.engine.lookup(key, depth=depth)
            # Materialize under the lock: unbounded lookups return
            # zero-copy views aliasing storage the worker may be
            # mutating the moment the lock is released.
            base_candidates = tuple(base.candidates)
        over = overlay.lookup(key, depth=depth)
        merged = merge_run_tails(
            [base_candidates, tuple(over.candidates)], depth
        )
        # Union completeness: each memtable is complete above its own
        # floor and no record is in both, so the union is complete above
        # the max of the floors.
        return LookupResult(key, tuple(merged), max(base.floor, over.floor))

    def note_query(
        self,
        keys: Sequence[Hashable],
        accessed_ids: Iterable[int],
        now: float,
    ) -> None:
        overlay = self._overlay
        if overlay is None:
            self.engine.note_query(keys, accessed_ids, now)
            return
        accessed = tuple(accessed_ids)
        with self.lock:
            self.engine.note_query(keys, accessed, now)
        overlay.note_query(keys, accessed, now)

    def get_record(self, blog_id: int):
        overlay = self._overlay
        if overlay is None:
            return self.engine.get_record(blog_id)
        record = overlay.get_record(blog_id)
        if record is not None:
            return record
        with self.lock:
            return self.engine.get_record(blog_id)

    def eviction_cause(self, key: Hashable):
        if self._overlay is None:
            return self.engine.eviction_cause(key)
        with self.lock:
            return self.engine.eviction_cause(key)

    @property
    def wants_query_feedback(self) -> bool:
        return getattr(self.engine, "wants_query_feedback", False)

    def observe_query_feedback(self, keys, hit, cause) -> None:
        # Heat/controller state lives on the long-lived engine only; the
        # short-lived overlay is absorbed back into it anyway.  The
        # counters touched are plain int increments, safe against a
        # concurrent worker drain under the GIL.
        self.engine.observe_query_feedback(keys, hit, cause)

    def hot_keys(self, n: int = 10) -> dict:
        return self.engine.hot_keys(n)

    # ------------------------------------------------------------------
    # Metrics surface (facade-facing; active + immutable aggregates)
    # ------------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        overlay = self._overlay
        total = self.engine.memory_bytes
        if overlay is not None:
            total += overlay.memory_bytes
        return total

    @property
    def flush_reports(self) -> list[FlushReport]:
        return self.engine.flush_reports

    @property
    def policy_overhead_bytes(self) -> int:
        overlay = self._overlay
        total = self.engine.policy_overhead_bytes
        if overlay is not None:
            total += overlay.policy_overhead_bytes
        return total

    def k_filled_count(self) -> int:
        # Mid-window this undercounts keys whose k postings are split
        # across the two memtables; exact whenever no rotation is open
        # (the runner quiesces before collecting results).
        overlay = self._overlay
        total = self.engine.k_filled_count()
        if overlay is not None:
            total += overlay.k_filled_count()
        return total

    def record_count(self) -> int:
        overlay = self._overlay
        total = self.engine.record_count()
        if overlay is not None:
            total += overlay.record_count()
        return total

    def frequency_snapshot(self) -> dict[Hashable, int]:
        snap = dict(self.engine.frequency_snapshot())
        overlay = self._overlay
        if overlay is not None:
            for key, count in overlay.frequency_snapshot().items():
                snap[key] = snap.get(key, 0) + count
        return snap

    def set_k(self, k: int) -> None:
        self.engine.set_k(k)
        overlay = self._overlay
        if overlay is not None:
            overlay.set_k(k)

    def check_integrity(self) -> None:
        """Engine invariants; drains any open rotation window first (the
        frozen engine cannot be checked mid-flush)."""
        self.quiesce()
        self.engine.check_integrity()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "rotated" if self.flushing else "idle"
        return f"PipelinedEngine({self.engine!r}, {state})"


class LockedDiskView:
    """Disk-archive adapter serializing reads against worker commits.

    The drain worker's ``FlushBuffer.commit`` mutates the archive's
    index in a multi-step batch; an executor read interleaving with it
    could observe torn run lists.  This view takes the pipeline's shard
    lock around the executor-facing read surface (the worker already
    holds that lock for the whole drain, commit included).
    """

    __slots__ = ("_disk", "_lock")

    def __init__(self, disk, lock: threading.Lock) -> None:
        self._disk = disk
        self._lock = lock

    @property
    def stats(self):
        return self._disk.stats

    def lookup(self, key: Hashable, limit: Optional[int] = None):
        with self._lock:
            result = self._disk.lookup(key, limit=limit)
            if limit is None:
                # Unbounded lookups are lazy merged views over the run
                # lists; materialize before releasing the lock.
                return list(result)
            return result

    def elides(self, key: Hashable) -> bool:
        with self._lock:
            return self._disk.elides(key)

    def fetch_record(self, blog_id: int):
        with self._lock:
            return self._disk.fetch_record(blog_id)

    def contains_record(self, blog_id: int) -> bool:
        with self._lock:
            return self._disk.contains_record(blog_id)
