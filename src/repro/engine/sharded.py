"""Hash-partitioned system: N independent shards behind one facade.

The paper's system (and :class:`~repro.engine.system.MicroblogSystem`)
is a single partition: one memory engine, one flush cycle, one disk
archive.  Real-time microblog search deployments partition their
postings across independent index slices to bound per-partition memory
churn and parallelise digestion; this module is that architecture:

* a :class:`ShardRouter` maps every index key to its owning shard via a
  **stable** hash (``zlib.crc32`` — deliberately not Python's salted
  ``hash()``, so routing survives process boundaries and reruns);
* each :class:`Shard` owns a full vertical slice — its own
  :class:`~repro.core.policy.MemoryEngine` (any policy), memory budget
  (``capacity/N`` by default, per-shard overrides supported), flush
  cycle, and :class:`~repro.storage.disk.DiskArchive` namespace;
* records **fan out**: a record is digested by every shard owning at
  least one of its keys, so each shard holds the *complete* posting set
  for the keys it owns.  That per-key completeness is what makes
  scatter-gather answers equal to the unsharded system's for single-,
  OR-, and AND-mode queries alike;
* queries **scatter-gather**: the facade's executor routes every per-key
  memory/disk lookup to the owning shard and merges with the shared
  :func:`~repro.storage.topk.merge_topk` — the identical hit semantics
  of the unsharded executor, proven by the ``shards=1`` differential
  test and the N-shard answer-equality property test.

Flushing is **per shard**: a shard flushes when *its* budget fills,
independently of its siblings — hot shards flush more often, which is
exactly the skew ``snapshot()`` surfaces (``shard.<i>.*`` metrics and
the hot-shard summary).
"""

from __future__ import annotations

import time
import zlib
from typing import Hashable, Iterable, Optional, Sequence

from repro.config import SystemConfig
from repro.core import create_engine
from repro.core.adaptive import ShardBudgetBalancer
from repro.core.policy import FlushReport, LookupResult, MemoryEngine
from repro.engine.clock import LogicalClock
from repro.engine.executor import QueryExecutor
from repro.engine.pipeline import FlushWorkerPool, LockedDiskView, PipelinedEngine
from repro.engine.stats import SystemStats
from repro.engine.system import MicroblogSystem, MicroblogSystemBase
from repro.errors import CapacityError, ConfigurationError
from repro.model.attributes import AttributeExtractor
from repro.model.microblog import Microblog
from repro.obs import Instrumentation
from repro.obs.runtime import get_active
from repro.storage.disk import DiskArchive
from repro.storage.interner import get_global_interner

__all__ = [
    "ShardRouter",
    "ShardAttributeView",
    "Shard",
    "ShardedMicroblogSystem",
    "build_system",
    "stable_key_hash",
]


def stable_key_hash(key: Hashable) -> int:
    """A process-stable 32-bit hash of an index key.

    Python's builtin ``hash()`` is salted per process for str/bytes, so
    it cannot route keys consistently across the parallel trial runner's
    worker processes or across reruns.  CRC32 over a canonical byte
    encoding is stable everywhere: strings hash their UTF-8 bytes, and
    every other key type (user ids, ``(ix, iy)`` spatial tiles) hashes
    its ``repr`` — stable for the builtin scalar/tuple types keys are
    made of.
    """
    if isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, bytes):
        data = key
    else:
        data = repr(key).encode("utf-8")
    return zlib.crc32(data)


class ShardRouter:
    """Key -> shard assignment via stable hashing.

    The router also understands *fan-out*: a multi-key record belongs to
    every shard owning one of its keys, and a multi-key query must be
    scattered the same way — :meth:`shards_for` and
    :meth:`group_by_shard` encode those rules in one place.
    """

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ConfigurationError(
                f"shard_count must be >= 1, got {shard_count}"
            )
        self.shard_count = shard_count
        # Key universes are bounded (vocabulary / user population / tile
        # grid), so memoising the modulo is safe and keeps the per-record
        # routing cost to one dict hit per key at steady state.
        self._cache: dict[Hashable, int] = {}

    def shard_of(self, key: Hashable) -> int:
        """The shard owning ``key``."""
        shard = self._cache.get(key)
        if shard is None:
            shard = stable_key_hash(key) % self.shard_count
            self._cache[key] = shard
        return shard

    def shards_for(self, keys: Iterable[Hashable]) -> tuple[int, ...]:
        """Sorted distinct shards owning any of ``keys`` (record fan-out)."""
        return tuple(sorted({self.shard_of(key) for key in keys}))

    def group_by_shard(
        self, keys: Sequence[Hashable]
    ) -> dict[int, tuple[Hashable, ...]]:
        """Keys grouped by owning shard, preserving the given key order."""
        groups: dict[int, list[Hashable]] = {}
        for key in keys:
            groups.setdefault(self.shard_of(key), []).append(key)
        return {shard: tuple(group) for shard, group in groups.items()}


class ShardAttributeView(AttributeExtractor):
    """The base attribute restricted to one shard's owned keys.

    Each shard's engine indexes a record under only the keys its shard
    owns — this wrapper is what enforces the partitioning at the engine
    boundary, so engines themselves stay completely shard-unaware.
    """

    def __init__(
        self, base: AttributeExtractor, router: ShardRouter, shard_id: int
    ) -> None:
        self._base = base
        self._router = router
        self._shard_id = shard_id
        self.name = base.name
        self.multi_key = base.multi_key

    def keys(self, record: Microblog) -> tuple[Hashable, ...]:
        return tuple(
            key
            for key in self._base.keys(record)
            if self._router.shard_of(key) == self._shard_id
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardAttributeView({self._base!r}, shard={self._shard_id})"


class Shard:
    """One vertical slice: engine + budget + flush cycle + disk namespace."""

    def __init__(
        self,
        shard_id: int,
        config: SystemConfig,
        router: ShardRouter,
        attribute: AttributeExtractor,
        ranking,
        obs: Instrumentation,
    ) -> None:
        self.shard_id = shard_id
        self.capacity_bytes = config.shard_capacity(shard_id)
        model = config.effective_memory_model()
        # Shards share one process-wide interner: routing happens on raw
        # keys before any shard sees them, so a shared id space is safe
        # and keeps cross-shard snapshots consistent.
        interner = get_global_interner() if config.columnar else None
        self.disk = DiskArchive(
            model,
            config.disk_cost,
            obs=obs,
            shard_id=shard_id,
            # Each shard caches its own key namespace; the global budget
            # is sliced the same way the memory budget is.
            cache_bytes=config.disk_cache_capacity(shard_id),
            elide_empty=config.disk_elide_empty,
            interner=interner,
        )
        self.attribute = ShardAttributeView(attribute, router, shard_id)
        self.engine: MemoryEngine = create_engine(
            config.policy,
            model=model,
            ranking=ranking,
            attribute=self.attribute,
            k=config.k,
            capacity_bytes=self.capacity_bytes,
            flush_fraction=config.flush_fraction,
            disk=self.disk,
            obs=obs,
            columnar=config.columnar,
            interner=interner,
            ledger_capacity=config.eviction_ledger_capacity,
            # Each shard runs its own controller over its own keys; the
            # facade adds the cross-shard budget balancer on top.
            adaptive=config.adaptive_settings(),
        )
        #: Set by the facade when pipelined ingest is on: the rotation
        #: coordinator and the lock-taking disk adapter for this shard.
        self.pipeline: Optional[PipelinedEngine] = None
        self.disk_view = self.disk

    @property
    def store(self):
        """Executor/metrics-facing store: the pipeline (active +
        immutable memtables) when pipelined ingest is on, else the bare
        engine."""
        return self.pipeline if self.pipeline is not None else self.engine

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Shard(id={self.shard_id}, capacity={self.capacity_bytes}, "
            f"records={self.engine.record_count()})"
        )


class _RoutedDiskStats:
    """Aggregate ``DiskStats`` view the executor's I/O accounting reads."""

    __slots__ = ("_shards",)

    def __init__(self, shards: list[Shard]) -> None:
        self._shards = shards

    @property
    def simulated_io_seconds(self) -> float:
        return sum(shard.disk.stats.simulated_io_seconds for shard in self._shards)


class _RoutedDisk:
    """Disk-archive adapter routing per-key lookups to the owning shard.

    Duck-types the slice of :class:`DiskArchive` the query executor
    uses: ``lookup`` (keyed — routed), ``fetch_record`` (by id — probed
    across shard archives, charging exactly one read), and ``stats``.
    """

    def __init__(
        self,
        shards: list[Shard],
        router: ShardRouter,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self._shards = shards
        self._router = router
        self._obs = obs if obs is not None else Instrumentation()
        self.stats = _RoutedDiskStats(shards)

    def lookup(self, key: Hashable, limit: Optional[int] = None):
        shard_id = self._router.shard_of(key)
        obs = self._obs
        if obs.current_trace is None:
            return self._shards[shard_id].disk_view.lookup(key, limit=limit)
        with obs.trace_span("shard.disk.lookup", shard=shard_id, key=str(key)) as extra:
            result = self._shards[shard_id].disk_view.lookup(key, limit=limit)
            extra["postings"] = len(result)
            return result

    def elides(self, key: Hashable) -> bool:
        """Route the negative-lookup check to the shard owning ``key``."""
        return self._shards[self._router.shard_of(key)].disk_view.elides(key)

    def fetch_record(self, blog_id: int) -> Optional[Microblog]:
        for shard in self._shards:
            if shard.disk_view.contains_record(blog_id):
                return shard.disk_view.fetch_record(blog_id)
        return None


class _RoutedEngine:
    """Memory-engine adapter routing per-key operations to shards.

    Duck-types the slice of :class:`MemoryEngine` the query executor
    uses.  Handing this to the *unsharded* :class:`QueryExecutor` is the
    scatter-gather design: the executor's hit semantics, completeness
    proofs, and :func:`~repro.storage.topk.merge_topk` merges run
    unchanged, with every per-key memory/disk access transparently served
    by the owning shard.
    """

    def __init__(
        self,
        shards: list[Shard],
        router: ShardRouter,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self._shards = shards
        self._router = router
        self._obs = obs if obs is not None else Instrumentation()

    def lookup(self, key: Hashable, depth: Optional[int] = None) -> LookupResult:
        shard_id = self._router.shard_of(key)
        obs = self._obs
        if obs.current_trace is None:
            return self._shards[shard_id].store.lookup(key, depth=depth)
        with obs.trace_span(
            "shard.memory.lookup", shard=shard_id, key=str(key)
        ) as extra:
            result = self._shards[shard_id].store.lookup(key, depth=depth)
            extra["candidates"] = len(result.candidates)
            return result

    def eviction_cause(self, key: Hashable):
        """Route the miss-attribution probe to the shard owning ``key``
        (each shard's engine keeps its own eviction ledger)."""
        return self._shards[self._router.shard_of(key)].store.eviction_cause(key)

    def note_query(
        self,
        keys: Sequence[Hashable],
        accessed_ids: Iterable[int],
        now: float,
    ) -> None:
        # Scatter the policy feedback: each shard sees the keys it owns
        # plus the full accessed-id list (engines ignore non-resident
        # ids, and a fanned-out record may be resident in several shards
        # — each should observe the access).
        accessed = tuple(accessed_ids)
        for shard_id, shard_keys in self._router.group_by_shard(keys).items():
            self._shards[shard_id].store.note_query(shard_keys, accessed, now)

    def get_record(self, blog_id: int) -> Optional[Microblog]:
        for shard in self._shards:
            record = shard.store.get_record(blog_id)
            if record is not None:
                return record
        return None

    @property
    def wants_query_feedback(self) -> bool:
        return any(
            getattr(shard.store, "wants_query_feedback", False)
            for shard in self._shards
        )

    def observe_query_feedback(self, keys, hit, cause) -> None:
        # Scatter like note_query: each shard's heat/controller sees the
        # keys it owns, with the query-level hit flag and miss cause.
        for shard_id, shard_keys in self._router.group_by_shard(keys).items():
            store = self._shards[shard_id].store
            if getattr(store, "wants_query_feedback", False):
                store.observe_query_feedback(shard_keys, hit, cause)


class ShardedMicroblogSystem(MicroblogSystemBase):
    """N hash-partitioned shards behind the :class:`MicroblogSystem` API.

    Construction accepts any ``SystemConfig`` (``shards=1`` builds a
    single-shard system whose observable behaviour is bit-identical to
    :class:`MicroblogSystem` — the differential test in
    ``tests/test_sharding.py`` holds that bar).  Prefer
    :func:`build_system`, which picks the cheaper unsharded facade when
    the config doesn't ask for partitioning.
    """

    def __init__(
        self,
        config: SystemConfig,
        strict_and: bool = False,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config
        self.obs = self._resolve_obs(config, obs)
        self.attribute = config.build_attribute()
        self.ranking = config.build_ranking()
        self.router = ShardRouter(config.shards)
        self.shards: list[Shard] = [
            Shard(i, config, self.router, self.attribute, self.ranking, self.obs)
            for i in range(config.shards)
        ]
        #: One worker pool shared by all shards' drain tasks when
        #: pipelined ingest is on (the queue bound is global, so total
        #: in-flight flush work is capped system-wide).
        self._pool: Optional[FlushWorkerPool] = None
        if config.pipelined_ingest:
            self._pool = FlushWorkerPool(
                config.resolved_flush_workers(),
                config.resolved_flush_queue_limit(),
                obs=self.obs,
            )
            for shard in self.shards:
                self._attach_pipeline(shard)
        self.executor = QueryExecutor(
            _RoutedEngine(self.shards, self.router, self.obs),
            _RoutedDisk(self.shards, self.router, self.obs),
            strict_and=strict_and,
            and_scan_depth=config.and_scan_depth,
            and_disk_limit=config.and_disk_limit,
            obs=self.obs,
        )
        self.clock = LogicalClock()
        self.stats = SystemStats()
        #: All shards' flushes, in the order they ran (the facade-level
        #: mirror of each engine's own ``flush_reports``).
        self._flush_reports: list[FlushReport] = []
        #: Cross-shard budget rebalancer (PR 9): shifts bounded budget
        #: slices toward hot shards at flush boundaries.  None keeps the
        #: construction-time budgets fixed, the static reference.
        settings = config.adaptive_settings()
        self._balancer: Optional[ShardBudgetBalancer] = (
            ShardBudgetBalancer(settings, self.shards)
            if settings is not None and config.shards > 1
            else None
        )
        self.obs.registry.gauge("shards.count").set(config.shards)
        self._init_service_levels()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, record: Microblog) -> bool:
        self.clock.advance_to(record.timestamp)
        self.stats.ingest.offered += 1
        start = time.perf_counter()
        owners = self.router.shards_for(self.attribute.keys(record))
        indexed = False
        for shard_id in owners:
            # Each owning shard indexes the record under its own keys
            # only (the shard's attribute view filters); the record body
            # is replicated to every owning shard — the documented cost
            # of multi-key fan-out.
            if self.shards[shard_id].store.insert(record):
                indexed = True
        self.stats.ingest.insert_seconds += time.perf_counter() - start
        if not indexed:
            self.stats.ingest.skipped += 1
            return False
        self.stats.ingest.indexed += 1
        for shard_id in owners:
            shard = self.shards[shard_id]
            if shard.pipeline is not None:
                shard.pipeline.maybe_rotate(self.now)
            elif shard.engine.needs_flush():
                self._flush_shard(shard)
        return True

    def _attach_pipeline(self, shard: Shard) -> None:
        """Wire one shard's rotation coordinator onto the shared pool."""
        config = self.config

        def build_overlay() -> MemoryEngine:
            # Overlays stay non-adaptive (see the unsharded facade).
            return create_engine(
                config.policy,
                model=config.effective_memory_model(),
                ranking=self.ranking,
                attribute=shard.attribute,
                k=shard.engine.k,
                capacity_bytes=config.overlay_capacity(shard.shard_id),
                flush_fraction=config.flush_fraction,
                disk=shard.disk,
                obs=self.obs,
                columnar=config.columnar,
                interner=shard.engine.interner,
                ledger_capacity=config.eviction_ledger_capacity,
            )

        shard.pipeline = PipelinedEngine(
            engine=shard.engine,
            overlay_factory=build_overlay,
            overlay_capacity_bytes=config.overlay_capacity(shard.shard_id),
            pool=self._pool,
            obs=self.obs,
            record_stall=self._record_stall,
            on_before_flush=lambda now, shard=shard: self._sample_shard_before(
                shard, now
            ),
            on_after_flush=lambda report, now, shard=shard: self._note_shard_flush(
                shard, report, now
            ),
            label=f"shard.{shard.shard_id}.",
        )
        shard.disk_view = LockedDiskView(shard.disk, shard.pipeline.lock)

    def _flush_shard(self, shard: Shard) -> FlushReport:
        self._sample_shard_before(shard, self.now)
        report = shard.engine.run_flush(self.now)
        # The inline shard flush stalls ingest for its whole wall time.
        self._record_stall(report.wall_seconds)
        self._note_shard_flush(shard, report, self.now)
        return report

    def _sample_shard_before(self, shard: Shard, now: float) -> None:
        self.stats.sample_memory(
            now,
            shard.engine.memory_bytes,
            shard.capacity_bytes,
            kind="before",
            shard=shard.shard_id,
        )
        # Paired system-level "before" point: the system timeline
        # (``shard_timeline(None)``) used to receive only the "after"
        # sample below, leaving its before/after pairs asymmetric with
        # the per-shard and unsharded timelines.
        self.stats.sample_memory(
            now,
            self.total_memory_bytes(),
            self.config.total_capacity_bytes,
            kind="before",
        )

    def _note_shard_flush(self, shard: Shard, report: FlushReport, now: float) -> None:
        """Post-flush accounting; runs on the worker thread when a drain
        completes in the background, inline otherwise."""
        self.stats.ingest.flush_seconds += report.wall_seconds
        self._flush_reports.append(report)
        after = shard.engine.memory_bytes
        self.stats.sample_memory(
            now, after, shard.capacity_bytes, kind="after", shard=shard.shard_id
        )
        # System-level timeline sample plus the global memory gauges,
        # mirroring the unsharded facade's accounting.
        total = self.total_memory_bytes()
        total_capacity = self.config.total_capacity_bytes
        self.stats.sample_memory(now, total, total_capacity, kind="after")
        registry = self.obs.registry
        registry.gauge("memory.bytes_used").set(total)
        registry.gauge("memory.capacity_bytes").set(total_capacity)
        prefix = f"shard.{shard.shard_id}."
        registry.counter(prefix + "flush.count").inc()
        registry.counter(prefix + "flush.freed_bytes").inc(report.freed_bytes)
        registry.gauge(prefix + "memory.bytes_used").set(after)
        registry.gauge(prefix + "memory.capacity_bytes").set(shard.capacity_bytes)
        if report.freed_bytes <= 0 and after >= shard.capacity_bytes:
            raise CapacityError(
                f"shard {shard.shard_id} flush freed nothing at {after} bytes "
                f"used of {shard.capacity_bytes}; a single record may exceed "
                "the shard's memory budget"
            )
        if self._balancer is not None:
            self._balancer.on_shard_flush(self)
        self._service_level_tick()

    def _sample_watermarks(self) -> None:
        # Lock-free reads only (see the unsharded twin) — safe from the
        # flush-worker threads.
        watermarks = self.watermarks
        total = cache_bytes = 0
        overlay = ledger_entries = 0
        for shard in self.shards:
            used = shard.store.memory_bytes
            total += used
            watermarks.observe(f"shard.{shard.shard_id}.memory.bytes_used", used)
            if shard.pipeline is not None:
                overlay += max(0, used - shard.engine.memory_bytes)
            if shard.disk.cache is not None:
                cache_bytes += shard.disk.cache.bytes_used
            ledger = shard.engine.eviction_ledger
            if ledger is not None:
                ledger_entries += len(ledger)
        watermarks.observe("memory.bytes_used", total)
        if self._pool is not None:
            watermarks.observe("memory.overlay_bytes", overlay)
            depth = self.obs.registry.get_gauge("pipeline.queue_depth")
            if depth is not None:
                watermarks.observe("pipeline.queue_depth", depth.value)
        if self.config.disk_cache_bytes > 0:
            watermarks.observe("disk.cache_bytes", cache_bytes)
        if ledger_entries:
            watermarks.observe("eviction_ledger.entries", ledger_entries)

    # ------------------------------------------------------------------
    # Control and metrics
    # ------------------------------------------------------------------

    def set_k(self, k: int) -> None:
        for shard in self.shards:
            shard.store.set_k(k)

    def total_memory_bytes(self) -> int:
        return sum(shard.store.memory_bytes for shard in self.shards)

    def k_filled_count(self) -> int:
        # Keys are partitioned (each owned by exactly one shard), so the
        # per-shard counts sum without overlap.
        return sum(shard.store.k_filled_count() for shard in self.shards)

    def memory_utilization(self) -> float:
        return self.total_memory_bytes() / self.config.total_capacity_bytes

    def frequency_snapshot(self) -> dict[Hashable, int]:
        merged: dict[Hashable, int] = {}
        for shard in self.shards:
            merged.update(shard.store.frequency_snapshot())
        return merged

    def flush_reports(self) -> list[FlushReport]:
        return self._flush_reports

    def policy_overhead_bytes(self) -> int:
        return sum(shard.store.policy_overhead_bytes for shard in self.shards)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def quiesce(self) -> None:
        for shard in self.shards:
            if shard.pipeline is not None:
                shard.pipeline.quiesce(self.now)

    def close(self) -> None:
        self.quiesce()
        if self._pool is not None:
            self._pool.close()

    def shard_utilizations(self) -> list[float]:
        """Per-shard used fraction of the shard budget, by shard id."""
        return [
            shard.store.memory_bytes / shard.capacity_bytes
            for shard in self.shards
        ]

    def shard_skew(self) -> dict:
        """Hot-shard summary: how unevenly the hash partitions the load.

        ``record_skew`` is max-over-mean resident records (1.0 = perfectly
        balanced); ``flush_skew`` is the same ratio over per-shard flush
        counts (0.0 when no shard has flushed yet).
        """
        records = [shard.store.record_count() for shard in self.shards]
        flushes = [len(shard.engine.flush_reports) for shard in self.shards]
        utils = self.shard_utilizations()
        mean_records = sum(records) / len(records)
        mean_flushes = sum(flushes) / len(flushes)
        hot = max(range(len(records)), key=lambda i: records[i])
        return {
            "shards": self.config.shards,
            "hot_shard": hot,
            "max_records": max(records),
            "mean_records": mean_records,
            "record_skew": (max(records) / mean_records) if mean_records else 0.0,
            "flush_skew": (max(flushes) / mean_flushes) if mean_flushes else 0.0,
            "max_utilization": max(utils),
            "min_utilization": min(utils),
        }

    def _refresh_shard_gauges(self) -> None:
        registry = self.obs.registry
        for shard in self.shards:
            prefix = f"shard.{shard.shard_id}."
            registry.gauge(prefix + "memory.bytes_used").set(shard.store.memory_bytes)
            registry.gauge(prefix + "memory.capacity_bytes").set(shard.capacity_bytes)
            registry.gauge(prefix + "memory.utilization").set(
                shard.store.memory_bytes / shard.capacity_bytes
            )
            registry.gauge(prefix + "records").set(shard.store.record_count())
            registry.gauge(prefix + "k_filled").set(shard.store.k_filled_count())
        skew = self.shard_skew()
        registry.gauge("shards.record_skew").set(skew["record_skew"])
        registry.gauge("shards.flush_skew").set(skew["flush_skew"])

    def snapshot(self) -> dict:
        """Registry snapshot extended with per-shard state and the
        hot-shard skew summary (``shards`` / ``shard_skew`` keys)."""
        self._refresh_shard_gauges()
        snap = self.obs.registry.snapshot()
        snap["shards"] = {
            str(shard.shard_id): {
                "capacity_bytes": shard.capacity_bytes,
                "memory_bytes": shard.store.memory_bytes,
                "utilization": shard.store.memory_bytes / shard.capacity_bytes,
                "records": shard.store.record_count(),
                "k_filled": shard.store.k_filled_count(),
                "flush_count": len(shard.engine.flush_reports),
                "disk_records": shard.disk.record_count,
                "disk_keys": shard.disk.key_count,
            }
            for shard in self.shards
        }
        snap["shard_skew"] = self.shard_skew()
        hot = self.hot_keys()
        if hot:
            snap["hot_keys"] = hot
        return snap

    def hot_keys(self, n: int = 10) -> dict:
        """Top-``n`` most-queried / most-evicted keys across all shards.

        Keys are partitioned (each owned by exactly one shard), so the
        per-shard tables concatenate without double counting; the merged
        tables re-rank on count with the same stable tie-break."""
        merged: dict[str, list] = {}
        for shard in self.shards:
            table = shard.engine.hot_keys(n)
            for section, rows in table.items():
                merged.setdefault(section, []).extend(rows)
        return {
            section: sorted(rows, key=lambda row: (-row[1], row[0]))[:n]
            for section, rows in merged.items()
        }

    def check_integrity(self) -> None:
        """Per-shard engine invariants plus the partitioning invariant:
        every key a shard holds (in memory or on its disk namespace) is
        owned by that shard under the router."""
        for shard in self.shards:
            shard.store.check_integrity()
            for key in shard.engine.frequency_snapshot():
                owner = self.router.shard_of(key)
                assert owner == shard.shard_id, (
                    f"key {key!r} resident in shard {shard.shard_id} but "
                    f"routed to shard {owner}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedMicroblogSystem(policy={self.config.policy!r}, "
            f"shards={self.config.shards}, attr={self.attribute.name!r}, "
            f"records={sum(s.engine.record_count() for s in self.shards)})"
        )


def build_system(
    config: SystemConfig,
    strict_and: bool = False,
    obs: Optional[Instrumentation] = None,
    force_sharded: bool = False,
) -> MicroblogSystemBase:
    """Build the facade the config asks for.

    ``shards=1`` returns the single-partition :class:`MicroblogSystem`
    (zero routing overhead — today's system, unchanged); ``shards>1``
    returns a :class:`ShardedMicroblogSystem`.  ``force_sharded=True``
    builds the sharded facade even at ``shards=1`` — the hook the
    differential test uses to prove the sharded code path is
    bit-identical to the unsharded one.
    """
    if config.shards > 1 or force_sharded:
        return ShardedMicroblogSystem(config, strict_and=strict_and, obs=obs)
    return MicroblogSystem(config, strict_and=strict_and, obs=obs)
