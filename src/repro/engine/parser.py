"""A small query-string parser for interactive use.

The paper points at microblog query languages (TweeQL et al.) as the
layer above basic search; applications and the CLI want to accept search
strings rather than construct query objects.  The grammar is the one
users already know from Twitter's search box:

* ``obama``                    — single-keyword top-k
* ``obama nba`` / ``obama AND nba`` — conjunction (Twitter's implicit AND)
* ``obama OR nba``             — disjunction
* ``user:1234``                — a user timeline
* ``tile:12,-34``              — a spatial grid tile
* any query may end with ``k:50`` to override the answer size.

Mixing AND and OR in one query is not supported (neither does the paper);
the parser raises :class:`~repro.errors.QueryError` with a message saying
so.
"""

from __future__ import annotations

import re

from repro.engine.queries import (
    AndQuery,
    DEFAULT_K,
    KeywordQuery,
    OrQuery,
    SpatialQuery,
    TopKQuery,
    UserQuery,
)
from repro.errors import QueryError

__all__ = ["parse_query"]

_K_RE = re.compile(r"^k:(\d+)$", re.IGNORECASE)
_USER_RE = re.compile(r"^user:(\d+)$", re.IGNORECASE)
_TILE_RE = re.compile(r"^tile:(-?\d+),(-?\d+)$", re.IGNORECASE)


def parse_query(text: str, default_k: int = DEFAULT_K) -> TopKQuery:
    """Parse a search string into a :class:`TopKQuery`.

    >>> parse_query("obama OR nba k:5").k
    5
    >>> parse_query("user:42").keys
    (42,)
    """
    tokens = text.split()
    if not tokens:
        raise QueryError("empty query string")

    k = default_k
    # A trailing (or anywhere) k:N token overrides the answer size.
    remaining: list[str] = []
    for token in tokens:
        match = _K_RE.match(token)
        if match:
            k = int(match.group(1))
            if k <= 0:
                raise QueryError(f"k must be positive, got {k}")
        else:
            remaining.append(token)
    if not remaining:
        raise QueryError(f"no search terms in {text!r}")

    # user: / tile: prefixed queries are single-key by construction.
    if len(remaining) == 1:
        match = _USER_RE.match(remaining[0])
        if match:
            return UserQuery(int(match.group(1)), k=k)
        match = _TILE_RE.match(remaining[0])
        if match:
            return SpatialQuery((int(match.group(1)), int(match.group(2))), k=k)
        return KeywordQuery(remaining[0], k=k)

    uppers = [token.upper() for token in remaining]
    has_or = "OR" in uppers
    has_and = "AND" in uppers
    if has_or and has_and:
        raise QueryError(
            f"cannot mix AND and OR in one query: {text!r} "
            "(the underlying system evaluates pure conjunctions or "
            "disjunctions, as in the paper)"
        )
    keywords = [token for token in remaining if token.upper() not in ("AND", "OR")]
    if any(_USER_RE.match(t) or _TILE_RE.match(t) for t in keywords):
        raise QueryError(
            f"user:/tile: terms cannot be combined with keywords: {text!r}"
        )
    if len(keywords) == 1:
        return KeywordQuery(keywords[0], k=k)
    if has_or:
        return OrQuery(keywords, k=k)
    # Twitter semantics: bare juxtaposition is an implicit AND.
    return AndQuery(keywords, k=k)
