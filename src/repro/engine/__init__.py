"""Query engine and system facade."""

from repro.engine.clock import LogicalClock
from repro.engine.executor import QueryExecutor, QueryResult
from repro.engine.latency import LatencyHistogram, QueryCostModel
from repro.engine.parser import parse_query
from repro.engine.queries import (
    AndQuery,
    CombineMode,
    KeywordQuery,
    OrQuery,
    SpatialQuery,
    TopKQuery,
    UserQuery,
)
from repro.engine.stats import IngestStats, QueryStats, SystemStats, TimelinePoint
from repro.engine.system import MicroblogSystem

__all__ = [
    "AndQuery",
    "CombineMode",
    "IngestStats",
    "KeywordQuery",
    "LatencyHistogram",
    "LogicalClock",
    "MicroblogSystem",
    "OrQuery",
    "QueryCostModel",
    "QueryExecutor",
    "QueryResult",
    "QueryStats",
    "parse_query",
    "SpatialQuery",
    "SystemStats",
    "TimelinePoint",
    "TopKQuery",
    "UserQuery",
]
