"""Query engine and system facade."""

from repro.engine.clock import LogicalClock
from repro.engine.executor import QueryExecutor, QueryResult
from repro.engine.latency import LatencyHistogram, QueryCostModel
from repro.engine.parser import parse_query
from repro.engine.queries import (
    AndQuery,
    CombineMode,
    KeywordQuery,
    OrQuery,
    SpatialQuery,
    TopKQuery,
    UserQuery,
)
from repro.engine.sharded import (
    Shard,
    ShardedMicroblogSystem,
    ShardRouter,
    build_system,
)
from repro.engine.stats import IngestStats, QueryStats, SystemStats, TimelinePoint
from repro.engine.system import MicroblogSystem, MicroblogSystemBase

__all__ = [
    "AndQuery",
    "CombineMode",
    "IngestStats",
    "KeywordQuery",
    "LatencyHistogram",
    "LogicalClock",
    "MicroblogSystem",
    "MicroblogSystemBase",
    "OrQuery",
    "QueryCostModel",
    "QueryExecutor",
    "QueryResult",
    "QueryStats",
    "Shard",
    "ShardRouter",
    "ShardedMicroblogSystem",
    "build_system",
    "parse_query",
    "SpatialQuery",
    "SystemStats",
    "TimelinePoint",
    "TopKQuery",
    "UserQuery",
]
