"""Query executor: memory-first top-k evaluation with disk fallback.

The executor implements the paper's query engine (Figure 2): try to answer
a top-k query entirely from in-memory contents; when that is impossible,
pay the disk visit and merge both tiers into an exact answer.

**Hit semantics.**  For single-key and OR queries a memory hit requires a
*provably complete* in-memory top-k: each queried key must hold k postings
all ranked above that key's completeness floor (for OR, the top-k of the
union is always drawn from the per-key top-k lists, so per-key proof
suffices).  For AND queries we follow the paper's operational definition —
the in-memory intersection contains at least k records (Section IV-D) —
because an AND answer can legitimately be assembled from postings below
individual floors that the MK rules deliberately retained; the result
additionally reports whether the answer is provably exact.  Setting
``strict_and=True`` upgrades AND hits to the provable criterion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.eviction_ledger import CAUSE_NEVER_RESIDENT
from repro.core.policy import MemoryEngine
from repro.engine.latency import QueryCostModel
from repro.engine.queries import CombineMode, TopKQuery
from repro.model.microblog import Microblog
from repro.obs import Instrumentation
from repro.storage.disk import DiskArchive
from repro.storage.posting_list import Posting
from repro.storage.topk import merge_topk

__all__ = ["QueryExecutor", "QueryResult"]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one top-k query."""

    query: TopKQuery
    #: Answer postings, best rank first, at most ``query.k`` of them.
    postings: tuple[Posting, ...]
    #: True when the full answer was served from memory.
    memory_hit: bool
    #: True when the answer is provably the true top-k.  Always true for
    #: misses (disk merge is exact) and for single/OR hits; AND hits under
    #: the operational criterion may be inexact (see module docstring).
    provably_exact: bool
    #: Number of disk index lookups this query paid.
    disk_lookups: int
    executed_at: float
    #: Modelled end-to-end latency: in-memory evaluation cost plus any
    #: simulated disk I/O this query triggered (see repro.engine.latency).
    simulated_latency: float = 0.0

    @property
    def blog_ids(self) -> tuple[int, ...]:
        return tuple(p.blog_id for p in self.postings)


#: Backwards-compatible alias: the merge now lives in
#: :mod:`repro.storage.topk` so the executor, the sharded scatter-gather
#: path, and the segmented index share one implementation.
_merge_topk = merge_topk


class QueryExecutor:
    """Evaluates :class:`TopKQuery` objects against memory then disk."""

    def __init__(
        self,
        engine: MemoryEngine,
        disk: DiskArchive,
        strict_and: bool = False,
        and_scan_depth: Optional[int] = None,
        and_disk_limit: Optional[int] = None,
        cost_model: Optional[QueryCostModel] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self._engine = engine
        self._disk = disk
        self._strict_and = strict_and
        self._cost = cost_model or QueryCostModel()
        self._obs = obs if obs is not None else Instrumentation()
        #: Cap on how deep AND evaluation scans each key's in-memory and
        #: disk posting lists.  None = unbounded (exact).  Experiment
        #: harnesses set these to bound the cost of hot-key intersections,
        #: as a production system would; intersections that would only
        #: complete deeper than the cap degrade to misses / inexact
        #: answers and are flagged as such.
        self._and_scan_depth = and_scan_depth
        self._and_disk_limit = and_disk_limit
        #: Eviction-cause miss attribution (PR 5): cached so the hot
        #: path pays one boolean test when the switch is off.
        self._attribution = self._obs.attribution
        #: Adaptive feedback hook (PR 9): engines that track per-key
        #: heat expose ``observe_query_feedback``; bound once here so
        #: the default path pays a single None test per query.
        self._feedback = (
            engine.observe_query_feedback
            if getattr(engine, "wants_query_feedback", False)
            else None
        )
        #: Wall seconds spent in policy bookkeeping triggered by queries
        #: (LRU recency touches, kFlushing last-query stamps).  In a real
        #: deployment this work contends with the digestion thread, which
        #: is what limits LRU's rate in Figure 10(b).
        self.bookkeeping_seconds = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(self, query: TopKQuery, now: float) -> QueryResult:
        """Evaluate ``query`` at time ``now`` and return its result.

        With tracing on, the whole evaluation becomes a ``query`` trace:
        shard scatter-gather and disk lookups emit child spans, and the
        root event carries the outcome (hit, disk lookups, miss cause).
        """
        obs = self._obs
        if not obs.tracing:
            return self._execute(query, now)
        with obs.trace(
            "query", mode=query.mode.value, keys=len(query.keys), k=query.k
        ) as trace_ctx:
            result = self._execute(query, now)
            trace_ctx.fields["hit"] = result.memory_hit
            trace_ctx.fields["disk_lookups"] = result.disk_lookups
            trace_ctx.fields["at"] = now
            return result

    def _execute(self, query: TopKQuery, now: float) -> QueryResult:
        io_before = self._disk.stats.simulated_io_seconds
        if query.mode is CombineMode.SINGLE:
            result = self._single(query, now)
        elif query.mode is CombineMode.OR:
            result = self._or(query, now)
        else:
            result = self._and(query, now)
        io_delta = self._disk.stats.simulated_io_seconds - io_before
        result = replace(
            result,
            simulated_latency=self._cost.memory_cost(len(query.keys)) + io_delta,
        )
        # Policy feedback: kFlushing stamps per-entry last-query times,
        # LRU moves the accessed records to the recency head.
        start = time.perf_counter()
        self._engine.note_query(query.keys, result.blog_ids, now)
        self.bookkeeping_seconds += time.perf_counter() - start
        self._observe(query, result)
        return result

    def _observe(self, query: TopKQuery, result: QueryResult) -> None:
        """Per-mode hit/miss/disk-lookup counters plus one query event."""
        mode = query.mode.value
        registry = self._obs.registry
        registry.counter(f"query.{mode}.{'hits' if result.memory_hit else 'misses'}").inc()
        if result.disk_lookups:
            registry.counter("query.disk_lookups").inc(result.disk_lookups)
            registry.counter(f"query.{mode}.disk_lookups").inc(result.disk_lookups)
        registry.histogram("query.simulated_latency_seconds").record(
            result.simulated_latency
        )
        extra: dict = {}
        feedback = self._feedback
        cause: Optional[str] = None
        if not result.memory_hit and (self._attribution or feedback is not None):
            # The adaptive controller consumes miss causes even when the
            # attribution counters themselves are off.
            cause = self._miss_cause(query)
            if self._attribution:
                registry.counter(f"query.miss.cause.{cause}").inc()
                registry.counter(f"query.{mode}.miss.cause.{cause}").inc()
                extra["miss_cause"] = cause
        if feedback is not None:
            feedback(query.keys, result.memory_hit, cause)
        trace_ctx = self._obs.current_trace
        if trace_ctx is not None:
            extra["trace"] = trace_ctx.trace_id
            if "miss_cause" in extra:
                trace_ctx.fields["miss_cause"] = extra["miss_cause"]
        self._obs.event(
            "query",
            mode=mode,
            keys=len(query.keys),
            k=query.k,
            hit=result.memory_hit,
            exact=result.provably_exact,
            disk_lookups=result.disk_lookups,
            scan_depth=self._and_scan_depth if query.mode is CombineMode.AND else None,
            answered=len(result.postings),
            at=result.executed_at,
            simulated_latency=result.simulated_latency,
            **extra,
        )

    def _miss_cause(self, query: TopKQuery) -> str:
        """Which eviction decision explains this memory miss.

        The most recently recorded eviction across the queried keys wins
        (strict ``>`` on logical time keeps ties deterministic at the
        first queried key); keys with no ledger entry were never evicted
        — if none has one, the data was simply never memory-complete.
        """
        best = None
        for key in query.keys:
            record = self._engine.eviction_cause(key)
            if record is not None and (best is None or record.at > best.at):
                best = record
        return best.cause if best is not None else CAUSE_NEVER_RESIDENT

    def materialize(self, result: QueryResult) -> list[Microblog]:
        """Fetch the record bodies of a result (memory first, then disk)."""
        records: list[Microblog] = []
        for posting in result.postings:
            record = self._engine.get_record(posting.blog_id)
            if record is None:
                record = self._disk.fetch_record(posting.blog_id)
            if record is not None:
                records.append(record)
        return records

    # ------------------------------------------------------------------
    # Single key
    # ------------------------------------------------------------------

    def _single(self, query: TopKQuery, now: float) -> QueryResult:
        key = query.keys[0]
        lookup = self._engine.lookup(key, depth=query.k)
        top = lookup.provable_top(query.k)
        if top is not None:
            return QueryResult(query, top, True, True, 0, now)
        # Memory miss: the true top-k is contained in the union of the
        # memory top-k candidates and the disk's per-key top-k.  A disk
        # that provably holds nothing for the key contributes nothing to
        # that union, so the lookup (and its seek) can be elided.
        if self._disk.elides(key):
            merged = _merge_topk([list(lookup.candidates)], query.k)
            return QueryResult(query, tuple(merged), False, True, 0, now)
        disk_top = self._disk.lookup(key, limit=query.k)
        merged = _merge_topk([list(lookup.candidates), disk_top], query.k)
        return QueryResult(query, tuple(merged), False, True, 1, now)

    # ------------------------------------------------------------------
    # OR
    # ------------------------------------------------------------------

    def _or(self, query: TopKQuery, now: float) -> QueryResult:
        lookups = [self._engine.lookup(key, depth=query.k) for key in query.keys]
        tops = [lookup.provable_top(query.k) for lookup in lookups]
        if all(top is not None for top in tops):
            merged = _merge_topk([list(top) for top in tops if top], query.k)
            return QueryResult(query, tuple(merged), True, True, 0, now)
        groups: list[list[Posting]] = []
        disk_lookups = 0
        for lookup, top in zip(lookups, tops):
            if top is not None:
                # This key's in-memory top-k is provably complete: the
                # union's top-k can only draw from it, so disk adds nothing.
                groups.append(list(top))
                continue
            groups.append(list(lookup.candidates))
            if self._disk.elides(lookup.key):
                continue
            groups.append(self._disk.lookup(lookup.key, limit=query.k))
            disk_lookups += 1
        merged = _merge_topk(groups, query.k)
        return QueryResult(query, tuple(merged), False, True, disk_lookups, now)

    # ------------------------------------------------------------------
    # AND
    # ------------------------------------------------------------------

    def _and(self, query: TopKQuery, now: float) -> QueryResult:
        depth = self._and_scan_depth
        lookups = [self._engine.lookup(key, depth=depth) for key in query.keys]
        # Intersect in-memory candidate ids; order by the first key's
        # postings (all keys agree on sort keys, they are per-record).
        id_sets = [
            {posting.blog_id for posting in lookup.candidates} for lookup in lookups
        ]
        common = set.intersection(*id_sets) if id_sets else set()
        in_memory = [p for p in lookups[0].candidates if p.blog_id in common]
        max_floor = max(lookup.floor for lookup in lookups)
        confirmed = [p for p in in_memory if p.sort_key > max_floor]
        provable = len(confirmed) >= query.k and depth is None
        if provable:
            return QueryResult(query, tuple(confirmed[: query.k]), True, True, 0, now)
        if len(confirmed) >= query.k:
            # Complete above the floors, but the scan was depth-capped so
            # items below the cap could not be inspected.
            return QueryResult(query, tuple(confirmed[: query.k]), True, False, 0, now)
        if not self._strict_and and len(in_memory) >= query.k:
            # The paper's operational AND hit: k intersecting records found
            # in memory (Section IV-D), possibly below individual floors.
            return QueryResult(query, tuple(in_memory[: query.k]), True, False, 0, now)
        # Miss: merge each key's memory+disk posting set, intersect, and
        # take the top-k — exact when no scan limits are configured.
        disk_lookups = 0
        truncated = False
        full_sets: list[dict[int, Posting]] = []
        for lookup in lookups:
            by_id = {p.blog_id: p for p in lookup.candidates}
            if self._disk.elides(lookup.key):
                full_sets.append(by_id)
                continue
            disk_postings = self._disk.lookup(lookup.key, limit=self._and_disk_limit)
            if (
                self._and_disk_limit is not None
                and len(disk_postings) >= self._and_disk_limit
            ):
                truncated = True
            for posting in disk_postings:
                by_id.setdefault(posting.blog_id, posting)
            disk_lookups += 1
            full_sets.append(by_id)
        common_ids = set.intersection(*(set(s) for s in full_sets))
        answer = sorted(
            (full_sets[0][blog_id] for blog_id in common_ids),
            key=lambda p: p.sort_key,
            reverse=True,
        )[: query.k]
        exact = not truncated and depth is None
        return QueryResult(query, tuple(answer), False, exact, disk_lookups, now)
