"""Simulated query latency: the cost a query pays for missing memory.

The paper's introduction motivates memory hit ratio through tail-latency
service objectives ("web search engines optimize ... to serve 95% of
their search queries within a certain threshold, e.g., 50-100ms"): a
memory miss is not just a counter, it is a disk round-trip added to one
user's response time.  This module prices each query:

* an in-memory component — a fixed dispatch cost plus a per-searched-key
  hash probe;
* the disk component — whatever simulated I/O time the
  :class:`~repro.storage.disk.DiskCostModel` charged for the lookups and
  reads this query triggered.

and aggregates latencies in a log-bucketed histogram so experiments can
report p50/p95/p99 without storing millions of samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["QueryCostModel", "LatencyHistogram"]


@dataclass(frozen=True)
class QueryCostModel:
    """In-memory evaluation costs (the disk part comes from DiskCostModel)."""

    #: Fixed per-query dispatch cost.
    base_seconds: float = 20e-6
    #: Per-searched-key hash probe and candidate scan.
    per_key_seconds: float = 30e-6

    def memory_cost(self, key_count: int) -> float:
        return self.base_seconds + key_count * self.per_key_seconds


class LatencyHistogram:
    """Log₂-bucketed latency histogram with percentile estimation.

    Buckets span 1µs to ~17 minutes in powers of two; each recorded value
    lands in one counter, so memory stays O(60) regardless of query count
    and percentiles are accurate to within a factor of two — plenty for
    the orders-of-magnitude gap between memory hits and disk visits.
    """

    _MIN_SECONDS = 1e-6
    _BUCKETS = 60

    def __init__(self) -> None:
        self._counts = [0] * self._BUCKETS
        self._total = 0
        self._sum = 0.0
        self._max = 0.0

    def __len__(self) -> int:
        return self._total

    def _bucket(self, seconds: float) -> int:
        if seconds <= self._MIN_SECONDS:
            return 0
        index = int(math.log2(seconds / self._MIN_SECONDS))
        return min(index, self._BUCKETS - 1)

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds}")
        self._counts[self._bucket(seconds)] += 1
        self._total += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    @property
    def mean(self) -> float:
        return self._sum / self._total if self._total else 0.0

    @property
    def max(self) -> float:
        return self._max

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket containing the p-th percentile.

        ``p`` is in (0, 100].  Returns 0 when nothing was recorded.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError(f"p must be in (0, 100], got {p}")
        if self._total == 0:
            return 0.0
        threshold = math.ceil(self._total * p / 100.0)
        running = 0
        for index, count in enumerate(self._counts):
            running += count
            if running >= threshold:
                return self._MIN_SECONDS * (2.0 ** (index + 1))
        return self._max  # pragma: no cover - unreachable
