"""Top-k query types (Section II-B and IV-D).

All microblog search queries are top-k queries over one search attribute.
The executor works on a normalised form — a tuple of index keys plus a
combination mode — while the public classes below give each of the paper's
query families an explicit, validated constructor:

* :class:`KeywordQuery` — "find k microblogs containing a keyword";
* :class:`AndQuery` / :class:`OrQuery` — multi-keyword conjunction /
  disjunction (Section IV-D);
* :class:`UserQuery` — a user's timeline (Figure 12);
* :class:`SpatialQuery` — microblogs posted at a location (Figure 11).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.errors import QueryError
from repro.model.keywords import normalize_keyword

__all__ = [
    "CombineMode",
    "TopKQuery",
    "KeywordQuery",
    "AndQuery",
    "OrQuery",
    "UserQuery",
    "SpatialQuery",
]

DEFAULT_K = 20


class CombineMode(enum.Enum):
    """How a multi-key query combines its keys."""

    SINGLE = "single"
    AND = "and"
    OR = "or"


@dataclass(frozen=True)
class TopKQuery:
    """The normalised query the executor evaluates.

    ``keys`` are already in the index key space of the system's attribute
    (normalised keywords, a user id, a grid tile).
    """

    keys: tuple[Hashable, ...]
    k: int = DEFAULT_K
    mode: CombineMode = CombineMode.SINGLE

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise QueryError(f"k must be positive, got {self.k}")
        if not self.keys:
            raise QueryError("a query needs at least one search key")
        if self.mode is CombineMode.SINGLE and len(self.keys) != 1:
            raise QueryError(
                f"single-key query got {len(self.keys)} keys; use AndQuery/OrQuery"
            )
        if self.mode is not CombineMode.SINGLE and len(self.keys) < 2:
            raise QueryError(f"{self.mode.value.upper()} query needs at least two keys")
        if len(set(self.keys)) != len(self.keys):
            raise QueryError(f"duplicate keys in query: {self.keys!r}")


def KeywordQuery(keyword: str, k: int = DEFAULT_K) -> TopKQuery:
    """Find the top-k microblogs containing ``keyword``."""
    key = normalize_keyword(keyword)
    if not key:
        raise QueryError(f"empty keyword after normalisation: {keyword!r}")
    return TopKQuery(keys=(key,), k=k, mode=CombineMode.SINGLE)


def _keyword_keys(keywords: Iterable[str]) -> tuple[str, ...]:
    keys = []
    for raw in keywords:
        key = normalize_keyword(raw)
        if not key:
            raise QueryError(f"empty keyword after normalisation: {raw!r}")
        keys.append(key)
    return tuple(keys)


def AndQuery(keywords: Iterable[str], k: int = DEFAULT_K) -> TopKQuery:
    """Find the top-k microblogs containing *all* of ``keywords``."""
    return TopKQuery(keys=_keyword_keys(keywords), k=k, mode=CombineMode.AND)


def OrQuery(keywords: Iterable[str], k: int = DEFAULT_K) -> TopKQuery:
    """Find the top-k microblogs containing *any* of ``keywords``."""
    return TopKQuery(keys=_keyword_keys(keywords), k=k, mode=CombineMode.OR)


def UserQuery(user_id: int, k: int = DEFAULT_K) -> TopKQuery:
    """Find the top-k microblogs posted by ``user_id`` (a timeline)."""
    return TopKQuery(keys=(user_id,), k=k, mode=CombineMode.SINGLE)


def SpatialQuery(tile: tuple[int, int], k: int = DEFAULT_K) -> TopKQuery:
    """Find the top-k microblogs posted in a grid ``tile``.

    Use :meth:`~repro.model.attributes.SpatialGridAttribute.tile_of` to
    map a latitude/longitude to its tile.
    """
    return TopKQuery(keys=(tile,), k=k, mode=CombineMode.SINGLE)
