"""Keyword co-occurrence model.

Real tweets carry correlated hashtags (#nba shows up with #finals, not
with a random tail tag).  That correlation is what makes multi-keyword
AND queries answerable at all — and what the kFlushing-MK extension
(Section IV-D) exploits.  A stream with independently drawn tags would
have near-empty intersections and no AND hits under *any* policy, so both
the stream generator and the correlated query load share this model:

each tag rank owns a small deterministic set of *companion* ranks, biased
toward nearby ranks (hot tags pair with hot tags); with a configurable
probability, a record's extra tags — and a correlated AND/OR query's
second keyword — are drawn from the first tag's companions instead of
independently.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["CooccurrenceModel"]


class CooccurrenceModel:
    """Deterministic companion sets over a ranked vocabulary."""

    def __init__(
        self,
        vocabulary_size: int,
        companions_per_tag: int = 4,
        seed: int = 11,
    ) -> None:
        if vocabulary_size < 2:
            raise WorkloadError(
                f"co-occurrence needs at least 2 tags, got {vocabulary_size}"
            )
        if companions_per_tag <= 0:
            raise WorkloadError(
                f"companions_per_tag must be positive, got {companions_per_tag}"
            )
        self.vocabulary_size = vocabulary_size
        # A tag cannot have more distinct companions than other tags exist.
        self.companions_per_tag = min(companions_per_tag, vocabulary_size - 1)
        self.seed = seed
        self._cache: dict[int, tuple[int, ...]] = {}

    def companions(self, rank: int) -> tuple[int, ...]:
        """The fixed companion ranks of ``rank`` (never contains rank)."""
        if not 0 <= rank < self.vocabulary_size:
            raise WorkloadError(f"rank {rank} out of range [0, {self.vocabulary_size})")
        cached = self._cache.get(rank)
        if cached is not None:
            return cached
        rng = np.random.default_rng(self.seed * 1_000_003 + rank)
        n = self.vocabulary_size
        chosen: list[int] = []
        seen = {rank}
        # Rank-proximal companions: offsets geometric around the tag, so a
        # head tag's companions are also head tags.
        while len(chosen) < self.companions_per_tag:
            offset = int(rng.geometric(0.15))
            if rng.random() < 0.5:
                offset = -offset
            companion = rank + offset
            if companion < 0 or companion >= n:
                companion = (rank + abs(offset)) % n
            if companion in seen:
                # Deterministic fallback keeps the loop bounded even for a
                # tiny vocabulary: walk forward to the next unused rank.
                companion = (max(seen) + 1) % n
                while companion in seen:
                    companion = (companion + 1) % n
            seen.add(companion)
            chosen.append(companion)
        result = tuple(chosen)
        self._cache[rank] = result
        return result

    def sample_companion(self, rank: int, rng: np.random.Generator) -> int:
        """Draw one companion of ``rank``."""
        options = self.companions(rank)
        return options[int(rng.integers(0, len(options)))]
