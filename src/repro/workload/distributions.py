"""Random samplers for the synthetic workloads.

The paper's behaviour rests on one empirical fact: "the frequency
distribution of keywords in microblogs is very skewed" (Section III-A) —
few keys far above k, a long tail below it.  The samplers here produce
exactly that shape, deterministically from a seed:

* :class:`ZipfSampler` — ranked Zipf over a finite vocabulary (keywords,
  user activity);
* :class:`ParetoSampler` — heavy-tailed positive integers (follower
  counts);
* :class:`HotspotGeoSampler` — a mixture of Gaussian city "hotspots" over
  a bounding box plus a uniform background (tweet locations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = ["ZipfSampler", "ParetoSampler", "HotspotGeoSampler", "Hotspot"]


class ZipfSampler:
    """Samples ranks ``0..n-1`` with P(rank r) ∝ 1 / (r+1)^s.

    Uses an explicit cumulative table and inverse-CDF sampling so the
    distribution is exact for finite ``n`` (numpy's ``zipf`` is unbounded).
    """

    def __init__(self, n: int, exponent: float, rng: np.random.Generator) -> None:
        if n <= 0:
            raise WorkloadError(f"vocabulary size must be positive, got {n}")
        if exponent < 0:
            raise WorkloadError(f"zipf exponent must be non-negative, got {exponent}")
        self.n = n
        self.exponent = exponent
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), exponent)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def probability(self, rank: int) -> float:
        """Exact probability of ``rank`` under this distribution."""
        if not 0 <= rank < self.n:
            raise WorkloadError(f"rank {rank} out of range [0, {self.n})")
        prev = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - prev)

    def sample(self) -> int:
        """Draw one rank."""
        return int(np.searchsorted(self._cdf, self._rng.random(), side="left"))

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks as an int array."""
        if count < 0:
            raise WorkloadError(f"count must be non-negative, got {count}")
        u = self._rng.random(count)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)


class ParetoSampler:
    """Heavy-tailed positive integers: ``floor(minimum * pareto)``.

    Models follower counts: most users have few followers, a small set has
    millions, which is what the popularity ranking function needs to
    discriminate on.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        shape: float = 1.2,
        minimum: int = 10,
        cap: int = 50_000_000,
    ) -> None:
        if shape <= 0:
            raise WorkloadError(f"pareto shape must be positive, got {shape}")
        if minimum <= 0:
            raise WorkloadError(f"pareto minimum must be positive, got {minimum}")
        self._rng = rng
        self.shape = shape
        self.minimum = minimum
        self.cap = cap

    def sample(self) -> int:
        value = int(self.minimum * (1.0 + self._rng.pareto(self.shape)))
        return min(value, self.cap)

    def sample_many(self, count: int) -> np.ndarray:
        values = (self.minimum * (1.0 + self._rng.pareto(self.shape, count))).astype(
            np.int64
        )
        return np.minimum(values, self.cap)


@dataclass(frozen=True)
class Hotspot:
    """One Gaussian population centre."""

    latitude: float
    longitude: float
    std_degrees: float
    weight: float


class HotspotGeoSampler:
    """Tweet locations: Gaussian hotspots plus a uniform background.

    The default bounding box and hotspots roughly cover the continental
    US; the experiments only need *skewed tiles*, not real geography.
    """

    DEFAULT_HOTSPOTS = (
        Hotspot(40.71, -74.00, 0.25, 0.30),  # New York
        Hotspot(34.05, -118.24, 0.25, 0.22),  # Los Angeles
        Hotspot(41.88, -87.63, 0.20, 0.15),  # Chicago
        Hotspot(29.76, -95.37, 0.20, 0.10),  # Houston
        Hotspot(47.61, -122.33, 0.15, 0.08),  # Seattle
    )

    def __init__(
        self,
        rng: np.random.Generator,
        hotspots: tuple[Hotspot, ...] = DEFAULT_HOTSPOTS,
        bbox: tuple[float, float, float, float] = (24.0, -125.0, 49.0, -66.0),
        background_weight: float = 0.15,
    ) -> None:
        if not hotspots:
            raise WorkloadError("need at least one hotspot")
        if not 0.0 <= background_weight < 1.0:
            raise WorkloadError(
                f"background_weight must be in [0, 1), got {background_weight}"
            )
        min_lat, min_lon, max_lat, max_lon = bbox
        if min_lat >= max_lat or min_lon >= max_lon:
            raise WorkloadError(f"degenerate bounding box: {bbox}")
        self._rng = rng
        self.hotspots = hotspots
        self.bbox = bbox
        self.background_weight = background_weight
        weights = np.array([h.weight for h in hotspots], dtype=np.float64)
        self._hotspot_probs = weights / weights.sum()

    def sample(self) -> tuple[float, float]:
        """Draw one ``(latitude, longitude)`` inside the bounding box."""
        min_lat, min_lon, max_lat, max_lon = self.bbox
        if self._rng.random() < self.background_weight:
            lat = self._rng.uniform(min_lat, max_lat)
            lon = self._rng.uniform(min_lon, max_lon)
            return (lat, lon)
        idx = int(self._rng.choice(len(self.hotspots), p=self._hotspot_probs))
        spot = self.hotspots[idx]
        lat = float(np.clip(self._rng.normal(spot.latitude, spot.std_degrees), min_lat, max_lat))
        lon = float(np.clip(self._rng.normal(spot.longitude, spot.std_degrees), min_lon, max_lon))
        return (lat, lon)
