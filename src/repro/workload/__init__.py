"""Synthetic workloads: microblog streams and query loads."""

from repro.workload.distributions import (
    Hotspot,
    HotspotGeoSampler,
    ParetoSampler,
    ZipfSampler,
)
from repro.workload.cooccurrence import CooccurrenceModel
from repro.workload.queryload import PAPER_QUERY_RATE, QueryLoad, QueryLoadConfig
from repro.workload.trace import load_queries, load_records, save_queries, save_records
from repro.workload.stream import PAPER_ARRIVAL_RATE, MicroblogStream, StreamConfig
from repro.workload.vocabulary import Vocabulary, generate_tags

__all__ = [
    "CooccurrenceModel",
    "Hotspot",
    "HotspotGeoSampler",
    "MicroblogStream",
    "PAPER_ARRIVAL_RATE",
    "PAPER_QUERY_RATE",
    "ParetoSampler",
    "QueryLoad",
    "QueryLoadConfig",
    "StreamConfig",
    "Vocabulary",
    "ZipfSampler",
    "generate_tags",
    "load_queries",
    "load_records",
    "save_queries",
    "save_records",
]
