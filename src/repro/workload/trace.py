"""Trace persistence: record streams and query loads as JSON-lines files.

The paper replays a year of collected tweets; users of this library may
have their own traces.  This module gives both directions:

* :func:`save_records` / :func:`load_records` — microblog streams;
* :func:`save_queries` / :func:`load_queries` — query workloads;

in a line-oriented JSON format that is diff-able, greppable, and
streamable (records are written and read one line at a time, never
materialising the whole trace).  Synthetic traces saved once are
byte-stable across runs, making benchmark inputs shareable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.engine.queries import CombineMode, TopKQuery
from repro.errors import QueryError, WorkloadError
from repro.model.microblog import GeoPoint, Microblog

__all__ = ["save_records", "load_records", "save_queries", "load_queries"]

PathLike = Union[str, Path]


def _record_to_dict(record: Microblog) -> dict:
    data = {
        "id": record.blog_id,
        "ts": record.timestamp,
        "user": record.user_id,
        "text": record.text,
        "tags": list(record.keywords),
        "followers": record.followers,
    }
    if record.location is not None:
        data["lat"] = record.location.latitude
        data["lon"] = record.location.longitude
    return data


def _record_from_dict(data: dict) -> Microblog:
    location = None
    if "lat" in data and "lon" in data:
        location = GeoPoint(data["lat"], data["lon"])
    return Microblog(
        blog_id=data["id"],
        timestamp=data["ts"],
        user_id=data["user"],
        text=data.get("text", ""),
        keywords=tuple(data.get("tags", ())),
        location=location,
        followers=data.get("followers", 0),
    )


def save_records(records: Iterable[Microblog], path: PathLike) -> int:
    """Write records to ``path`` as JSON lines; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")
            count += 1
    return count


def load_records(path: PathLike) -> Iterator[Microblog]:
    """Stream records back from a JSON-lines trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield _record_from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise WorkloadError(
                    f"{path}:{line_no}: malformed record line ({exc})"
                ) from exc


def _query_to_dict(query: TopKQuery) -> dict:
    keys: list = []
    for key in query.keys:
        # Tile keys are tuples; JSON round-trips them as lists, which the
        # loader converts back.
        keys.append(list(key) if isinstance(key, tuple) else key)
    return {"keys": keys, "k": query.k, "mode": query.mode.value}


def _query_from_dict(data: dict) -> TopKQuery:
    keys = tuple(
        tuple(key) if isinstance(key, list) else key for key in data["keys"]
    )
    return TopKQuery(keys=keys, k=data["k"], mode=CombineMode(data["mode"]))


def save_queries(queries: Iterable[TopKQuery], path: PathLike) -> int:
    """Write a query workload to ``path`` as JSON lines."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for query in queries:
            handle.write(json.dumps(_query_to_dict(query)) + "\n")
            count += 1
    return count


def load_queries(path: PathLike) -> Iterator[TopKQuery]:
    """Stream a query workload back from a JSON-lines file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield _query_from_dict(json.loads(line))
            except (
                json.JSONDecodeError,
                KeyError,
                TypeError,
                ValueError,
                QueryError,
            ) as exc:
                raise WorkloadError(
                    f"{path}:{line_no}: malformed query line ({exc})"
                ) from exc
