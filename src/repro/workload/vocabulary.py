"""Synthetic hashtag vocabulary.

Generates a deterministic, human-readable vocabulary of pseudo-hashtags
("nabari", "koltec", ...) used by the stream generator.  Rank 0 is the
most frequent tag (the "obama" of the paper's running example); the tail
ranks are the rare tags whose entries never accumulate k postings.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.errors import WorkloadError

__all__ = ["Vocabulary", "generate_tags"]

_ONSETS = (
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
    "n", "p", "r", "s", "t", "v", "w", "z", "br", "ch",
    "cl", "dr", "fl", "gr", "kr", "pl", "sh", "st", "th", "tr",
)
_VOWELS = ("a", "e", "i", "o", "u", "ai", "ea", "io", "ou")
_CODAS = ("", "", "n", "r", "s", "t", "l", "m", "k", "x")


def _one_tag(rng: random.Random) -> str:
    syllables = rng.randint(2, 3)
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(_ONSETS))
        parts.append(rng.choice(_VOWELS))
    parts.append(rng.choice(_CODAS))
    return "".join(parts)


def generate_tags(count: int, seed: int = 7) -> list[str]:
    """Generate ``count`` distinct pronounceable tags, deterministically."""
    if count <= 0:
        raise WorkloadError(f"count must be positive, got {count}")
    rng = random.Random(seed)
    seen: set[str] = set()
    tags: list[str] = []
    while len(tags) < count:
        tag = _one_tag(rng)
        if tag in seen:
            # Disambiguate collisions with a numeric suffix so generation
            # always terminates, even for very large vocabularies.
            tag = f"{tag}{len(tags)}"
        seen.add(tag)
        tags.append(tag)
    return tags


class Vocabulary:
    """An ordered tag vocabulary: index == frequency rank (0 = hottest)."""

    def __init__(self, tags: Sequence[str]) -> None:
        if not tags:
            raise WorkloadError("vocabulary cannot be empty")
        if len(set(tags)) != len(tags):
            raise WorkloadError("vocabulary tags must be distinct")
        self._tags = tuple(tags)
        self._rank = {tag: rank for rank, tag in enumerate(self._tags)}

    @classmethod
    def synthetic(cls, size: int, seed: int = 7) -> "Vocabulary":
        return cls(generate_tags(size, seed=seed))

    def __len__(self) -> int:
        return len(self._tags)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tags)

    def __contains__(self, tag: str) -> bool:
        return tag in self._rank

    def tag(self, rank: int) -> str:
        """The tag at frequency ``rank`` (0 is the most frequent)."""
        return self._tags[rank]

    def rank(self, tag: str) -> int:
        """The frequency rank of ``tag``."""
        try:
            return self._rank[tag]
        except KeyError:
            raise WorkloadError(f"tag {tag!r} not in vocabulary") from None
