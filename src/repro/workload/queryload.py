"""Query workloads: the paper's correlated and uniform loads (Section V).

* **Correlated**: keys are drawn with probability proportional to their
  occurrence in the data ("keyword queries are selected at random from all
  keywords associated with our tweets without removing duplicates") —
  active topics get queried more, the realistic case.
* **Uniform**: keys are drawn uniformly from the whole key space
  regardless of frequency — the worst-case load major systems use to
  guarantee tail quality of service.

Each keyword workload is a 1/3 : 1/3 : 1/3 mix of single-keyword,
2-keyword AND, and 2-keyword OR queries, exactly as in the paper.  User
and spatial workloads are single-key only (user timelines are single-key
in practice; spatial AND is semantically invalid — Section V-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.engine.queries import CombineMode, TopKQuery
from repro.errors import WorkloadError
from repro.model.attributes import SpatialGridAttribute
from repro.workload.distributions import HotspotGeoSampler, ZipfSampler
from repro.workload.stream import MicroblogStream

__all__ = ["QueryLoadConfig", "QueryLoad", "PAPER_QUERY_RATE"]

#: Queries per second the paper replays its workloads at.
PAPER_QUERY_RATE = 25_000.0

_MODES = ("correlated", "uniform")
_ATTRIBUTES = ("keyword", "user", "spatial")


@dataclass(frozen=True)
class QueryLoadConfig:
    """Knobs of one query workload."""

    seed: int = 1234
    mode: str = "correlated"
    attribute: str = "keyword"
    k: int = 20
    #: Fractions of single / AND / OR queries.  Ignored (forced to
    #: single-only) for user and spatial attributes.
    mix: tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3)
    tile_side_degrees: float = 0.03

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise WorkloadError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.attribute not in _ATTRIBUTES:
            raise WorkloadError(
                f"attribute must be one of {_ATTRIBUTES}, got {self.attribute!r}"
            )
        if self.k <= 0:
            raise WorkloadError(f"k must be positive, got {self.k}")
        if abs(sum(self.mix) - 1.0) > 1e-9 or any(f < 0 for f in self.mix):
            raise WorkloadError(f"mix must be a probability vector, got {self.mix!r}")


class QueryLoad:
    """Deterministic query generator matched to a data stream's shape."""

    def __init__(self, config: QueryLoadConfig, stream: MicroblogStream) -> None:
        self.config = config
        self._stream = stream
        self._rng = np.random.default_rng(config.seed)
        stream_cfg = stream.config
        if config.mode == "correlated":
            # The same Zipf shapes the data uses, with an independent rng:
            # a key's query probability equals its occurrence probability.
            self._keyword_sampler = ZipfSampler(
                stream_cfg.vocabulary_size, stream_cfg.keyword_zipf_exponent, self._rng
            )
            self._user_sampler = ZipfSampler(
                stream_cfg.user_count, stream_cfg.user_zipf_exponent, self._rng
            )
        else:
            self._keyword_sampler = None
            self._user_sampler = None
        if config.attribute == "spatial":
            self._grid = SpatialGridAttribute(config.tile_side_degrees)
            self._geo = HotspotGeoSampler(np.random.default_rng(config.seed + 1))
            self._tile_universe: tuple = ()
        else:
            self._grid = None
            self._geo = None

    # ------------------------------------------------------------------
    # Key sampling
    # ------------------------------------------------------------------

    def _sample_keyword(self) -> str:
        if self._keyword_sampler is not None:
            rank = self._keyword_sampler.sample()
        else:
            rank = int(self._rng.integers(0, len(self._stream.vocabulary)))
        return self._stream.vocabulary.tag(rank)

    def _sample_keyword_pair(self) -> tuple[str, str]:
        """Two distinct keywords for an AND/OR query.

        Correlated loads pair a keyword with one of its companions (with
        the stream's co-occurrence probability) the way users query tags
        that actually appear together; uniform loads pair independent
        uniform draws — the worst case.
        """
        vocab = self._stream.vocabulary
        first = self._sample_keyword()
        if (
            self.config.mode == "correlated"
            and self._rng.random() < self._stream.config.cooccurrence_prob
        ):
            companion = self._stream.cooccurrence.sample_companion(
                vocab.rank(first), self._rng
            )
            return (first, vocab.tag(companion))
        for _ in range(64):
            second = self._sample_keyword()
            if second != first:
                return (first, second)
        raise WorkloadError("could not sample two distinct keywords")

    def _sample_user(self) -> int:
        if self._user_sampler is not None:
            return self._user_sampler.sample()
        return int(self._rng.integers(0, self._stream.config.user_count))

    def _sample_tile(self) -> tuple[int, int]:
        assert self._grid is not None and self._geo is not None
        if self.config.mode == "correlated":
            lat, lon = self._geo.sample()
            return self._grid.tile_of(lat, lon)
        # Uniform spatial load: each *plausible* tile equally likely —
        # the spatial analogue of "uniform over the whole keyword pool".
        # The universe is the set of tiles the population model can emit,
        # estimated once from an independent draw of the geo sampler.
        if not self._tile_universe:
            seen = {
                self._grid.tile_of(*self._geo.sample()) for _ in range(4_000)
            }
            self._tile_universe = tuple(sorted(seen))
        idx = int(self._rng.integers(0, len(self._tile_universe)))
        return self._tile_universe[idx]

    # ------------------------------------------------------------------
    # Query generation
    # ------------------------------------------------------------------

    def next_query(self) -> TopKQuery:
        """Generate one query."""
        cfg = self.config
        if cfg.attribute == "user":
            return TopKQuery(keys=(self._sample_user(),), k=cfg.k)
        if cfg.attribute == "spatial":
            return TopKQuery(keys=(self._sample_tile(),), k=cfg.k)
        draw = self._rng.random()
        if draw < cfg.mix[0]:
            return TopKQuery(keys=(self._sample_keyword(),), k=cfg.k)
        if draw < cfg.mix[0] + cfg.mix[1]:
            return TopKQuery(
                keys=self._sample_keyword_pair(), k=cfg.k, mode=CombineMode.AND
            )
        return TopKQuery(keys=self._sample_keyword_pair(), k=cfg.k, mode=CombineMode.OR)

    def take(self, count: int) -> list[TopKQuery]:
        """Generate the next ``count`` queries."""
        if count < 0:
            raise WorkloadError(f"count must be non-negative, got {count}")
        return [self.next_query() for _ in range(count)]

    def __iter__(self) -> Iterator[TopKQuery]:
        while True:
            yield self.next_query()
