"""Synthetic microblog stream: the 2B-tweet substitute.

Generates a deterministic, Twitter-shaped stream of
:class:`~repro.model.microblog.Microblog` records:

* hashtags drawn Zipf-distributed over a synthetic vocabulary (the skew
  the whole paper rests on — few tags far above k, a long tail below it);
* 1–3 tags per record (tweets carry few hashtags);
* posting users drawn Zipf-distributed over a user population, each user
  carrying a Pareto-distributed follower count;
* point locations drawn from Gaussian population hotspots;
* arrival timestamps spaced at a configurable rate (the paper replays its
  dataset at Twitter's 6,000 tweets/second).

Generation is batched and numpy-vectorised so that multi-million-record
experiment runs spend their time in the system under test, not here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.model.microblog import GeoPoint, Microblog
from repro.workload.cooccurrence import CooccurrenceModel
from repro.workload.distributions import HotspotGeoSampler, ParetoSampler, ZipfSampler
from repro.workload.vocabulary import Vocabulary

__all__ = ["StreamConfig", "MicroblogStream"]

#: Tweets per second the paper replays its dataset at.
PAPER_ARRIVAL_RATE = 6000.0


def _make_text_pool(rng: random.Random, size: int = 512) -> tuple[str, ...]:
    """A pool of filler sentences records cycle through.

    Only the byte length matters (memory model); the pool gives realistic
    variation without per-record string synthesis cost.
    """
    words = [
        "breaking", "news", "game", "tonight", "city", "update", "watch",
        "live", "score", "final", "storm", "traffic", "vote", "market",
        "launch", "crowd", "photo", "report", "street", "morning", "video",
        "team", "win", "loss", "rain", "concert", "festival", "crash",
    ]
    pool = []
    for _ in range(size):
        n = rng.randint(4, 10)
        pool.append(" ".join(rng.choice(words) for _ in range(n)))
    return tuple(pool)


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the synthetic stream."""

    seed: int = 42
    vocabulary_size: int = 20_000
    keyword_zipf_exponent: float = 1.0
    #: Probability of a record carrying 1, 2, or 3 hashtags.
    tags_per_record_probs: tuple[float, ...] = (0.55, 0.30, 0.15)
    user_count: int = 50_000
    user_zipf_exponent: float = 0.8
    #: Probability that each extra tag on a record is a *companion* of the
    #: record's first tag instead of an independent draw (tag correlation
    #: is what makes AND queries answerable; see workload.cooccurrence).
    cooccurrence_prob: float = 0.5
    arrival_rate_per_second: float = PAPER_ARRIVAL_RATE
    start_time: float = 0.0
    with_locations: bool = True
    batch_size: int = 8192

    def __post_init__(self) -> None:
        if self.vocabulary_size <= 0:
            raise WorkloadError("vocabulary_size must be positive")
        if self.user_count <= 0:
            raise WorkloadError("user_count must be positive")
        if self.arrival_rate_per_second <= 0:
            raise WorkloadError("arrival_rate_per_second must be positive")
        if self.batch_size <= 0:
            raise WorkloadError("batch_size must be positive")
        probs = self.tags_per_record_probs
        if not probs or abs(sum(probs) - 1.0) > 1e-9 or any(p < 0 for p in probs):
            raise WorkloadError(
                f"tags_per_record_probs must be a probability vector, got {probs!r}"
            )
        if not 0.0 <= self.cooccurrence_prob <= 1.0:
            raise WorkloadError(
                f"cooccurrence_prob must be in [0, 1], got {self.cooccurrence_prob}"
            )


class MicroblogStream:
    """Deterministic generator of Twitter-shaped microblog records."""

    def __init__(self, config: StreamConfig = StreamConfig()) -> None:
        self.config = config
        self.vocabulary = Vocabulary.synthetic(config.vocabulary_size, seed=config.seed)
        self._rng = np.random.default_rng(config.seed)
        self._keyword_sampler = ZipfSampler(
            config.vocabulary_size, config.keyword_zipf_exponent, self._rng
        )
        self._user_sampler = ZipfSampler(
            config.user_count, config.user_zipf_exponent, self._rng
        )
        follower_rng = np.random.default_rng(config.seed + 1)
        self._followers = ParetoSampler(follower_rng).sample_many(config.user_count)
        self._geo = (
            HotspotGeoSampler(np.random.default_rng(config.seed + 2))
            if config.with_locations
            else None
        )
        self._text_pool = _make_text_pool(random.Random(config.seed + 3))
        self.cooccurrence = CooccurrenceModel(
            config.vocabulary_size, seed=config.seed + 4
        )
        self._next_id = 0

    @property
    def records_emitted(self) -> int:
        return self._next_id

    def keyword_probability(self, tag: str) -> float:
        """Exact occurrence probability of ``tag`` per sampled slot."""
        return self._keyword_sampler.probability(self.vocabulary.rank(tag))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def take(self, count: int) -> list[Microblog]:
        """Generate the next ``count`` records."""
        if count < 0:
            raise WorkloadError(f"count must be non-negative, got {count}")
        out: list[Microblog] = []
        while len(out) < count:
            out.extend(self._batch(min(self.config.batch_size, count - len(out))))
        return out

    def __iter__(self) -> Iterator[Microblog]:
        """An unbounded stream of records."""
        while True:
            yield from self._batch(self.config.batch_size)

    def _batch(self, n: int) -> list[Microblog]:
        cfg = self.config
        rng = self._rng
        tag_counts = rng.choice(
            np.arange(1, len(cfg.tags_per_record_probs) + 1),
            size=n,
            p=np.asarray(cfg.tags_per_record_probs),
        )
        total_tags = int(tag_counts.sum())
        # One independent Zipf draw per tag slot, a coin per extra slot
        # deciding whether it is replaced by a companion of the record's
        # first tag (see CooccurrenceModel).
        tag_ranks = self._keyword_sampler.sample_many(total_tags)
        companion_coins = rng.random(total_tags)
        user_ranks = self._user_sampler.sample_many(n)
        if self._geo is not None:
            points = [self._geo.sample() for _ in range(n)]
        else:
            points = None
        vocab = self.vocabulary
        pool = self._text_pool
        rate = cfg.arrival_rate_per_second
        records: list[Microblog] = []
        cursor = 0
        for i in range(n):
            blog_id = self._next_id
            self._next_id += 1
            count = int(tag_counts[i])
            ranks = [int(r) for r in tag_ranks[cursor : cursor + count]]
            primary = ranks[0]
            for j in range(1, count):
                if companion_coins[cursor + j] < cfg.cooccurrence_prob:
                    ranks[j] = self.cooccurrence.sample_companion(primary, rng)
            cursor += count
            # De-duplicate tags within one record (a Zipf head tag can be
            # drawn twice); order is irrelevant to the index.
            keywords = tuple({vocab.tag(r) for r in ranks})
            user_id = int(user_ranks[i])
            location = None
            if points is not None:
                lat, lon = points[i]
                location = GeoPoint(lat, lon)
            records.append(
                Microblog(
                    blog_id=blog_id,
                    timestamp=cfg.start_time + blog_id / rate,
                    user_id=user_id,
                    text=pool[blog_id % len(pool)],
                    keywords=keywords,
                    location=location,
                    followers=int(self._followers[user_id]),
                )
            )
        return records
