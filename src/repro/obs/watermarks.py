"""Resource high-watermark accounting.

Point-in-time gauges (``memory.bytes_used``, ``pipeline.queue_depth``)
answer "how much *now*?"; capacity planning needs "how much at the
worst moment?".  A :class:`WatermarkTracker` keeps the running maximum
of every resource it is shown and mirrors each one into a
``watermark.<name>`` gauge, so high-water marks ride along in every
registry snapshot, the Prometheus export, and the flight-recorder dump
with zero extra plumbing.

The facades sample at flush-cycle boundaries — the moments memory,
queue depth, and cache occupancy peak (a flush fires precisely because
memory crossed its budget), so per-record sampling would add hot-path
cost without raising any watermark.  Always on: the cost is a handful
of dict operations per flush.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["WatermarkTracker"]


class WatermarkTracker:
    """Running maxima over named resource samples, exported as gauges."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry
        self._marks: dict[str, float] = {}

    def observe(self, name: str, value: float) -> None:
        """Record one sample; updates the watermark only on a new high."""
        current = self._marks.get(name)
        if current is not None and value <= current:
            return
        self._marks[name] = value
        if self.registry is not None:
            self.registry.gauge(f"watermark.{name}").set(value)

    def get(self, name: str) -> Optional[float]:
        return self._marks.get(name)

    def table(self) -> dict[str, float]:
        """All watermarks, name-sorted (snapshot/inspection surface)."""
        return dict(sorted(self._marks.items()))

    def __len__(self) -> int:
        return len(self._marks)
