"""Offline trace analysis over events JSONL (the ``repro trace`` CLI).

Any event carrying ``trace`` and ``span`` fields is a node in some
trace's span tree — ``{"type": "trace"}`` events from
``Instrumentation.trace``/``trace_span``/``trace_point`` and the
trace-stamped ``{"type": "span"}`` events alike.  Events are emitted at
span *close*, so children always precede their parent in the file; the
builder simply indexes every node by span id and links by
``parent_span`` at the end.

On top of the reconstructed trees this module derives the reports the
ops workflow needs:

* :func:`query_summaries` — the top-N slowest query traces with their
  per-child (shard lookup / disk lookup) time breakdown;
* :func:`flush_attribution` — flush wall time attributed to each
  kFlushing phase across all flush traces;
* :func:`miss_cause_table` — the eviction-cause miss histogram, from
  per-query events when present, else from the ``query.miss.cause.*``
  counters inside snapshot events;
* :func:`merge_snapshot_events` — fold every ``trial_snapshot`` /
  ``run_snapshot`` registry snapshot in a file into one registry (the
  offline side of ``MetricsRegistry.merge``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SpanNode",
    "Trace",
    "TraceBuildReport",
    "build_traces",
    "build_traces_report",
    "flush_attribution",
    "load_events",
    "merge_snapshot_events",
    "miss_cause_table",
    "query_summaries",
]

#: Event types whose ``metrics`` payload is a registry snapshot.
SNAPSHOT_TYPES = ("trial_snapshot", "run_snapshot")


@dataclass
class SpanNode:
    """One span of a reconstructed trace tree."""

    span_id: int
    name: str
    seconds: float
    parent_span: Optional[int]
    fields: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def child_seconds(self) -> float:
        return sum(child.seconds for child in self.children)

    def walk(self):
        """This node then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class Trace:
    """One reconstructed trace: its id and the root span."""

    trace_id: str
    root: SpanNode

    @property
    def name(self) -> str:
        return self.root.name

    @property
    def seconds(self) -> float:
        return self.root.seconds

    @property
    def span_count(self) -> int:
        return sum(1 for _ in self.root.walk())

    def spans_named(self, name: str) -> list[SpanNode]:
        return [node for node in self.root.walk() if node.name == name]


_NODE_KEYS = ("type", "trace", "span", "parent_span", "name", "seconds")


def load_events(path: str) -> list[dict]:
    """Every event in a JSONL file (malformed lines are skipped)."""
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


@dataclass
class TraceBuildReport:
    """Reconstructed traces plus what could not be attached.

    ``dropped_orphans`` counts span nodes that are reachable from no
    returned root — spans of a rootless trace (a truncated file lost the
    root, which is emitted last) or spans whose parent chain is broken.
    """

    traces: list[Trace]
    dropped_orphans: int


def build_traces(events: Iterable[dict]) -> list[Trace]:
    """Reconstruct complete trace trees from an event stream.

    A trace is returned only when its root span (``parent_span`` null)
    was seen; orphan spans from truncated files are dropped (use
    :func:`build_traces_report` to count them).  Traces come back in
    file order of their roots.
    """
    return build_traces_report(events).traces


def build_traces_report(events: Iterable[dict]) -> TraceBuildReport:
    """Like :func:`build_traces`, also counting dropped orphan spans."""
    nodes_by_trace: dict[str, dict[int, SpanNode]] = {}
    root_order: list[tuple[str, int]] = []
    seen_roots: set[tuple[str, int]] = set()
    for event in events:
        trace_id = event.get("trace")
        span_id = event.get("span")
        if not isinstance(trace_id, str) or not isinstance(span_id, int):
            continue
        node = SpanNode(
            span_id=span_id,
            name=str(event.get("name", event.get("type", "?"))),
            seconds=float(event.get("seconds", 0.0)),
            parent_span=event.get("parent_span"),
            fields={k: v for k, v in event.items() if k not in _NODE_KEYS},
        )
        nodes_by_trace.setdefault(trace_id, {})[span_id] = node
        if node.parent_span is None and (trace_id, span_id) not in seen_roots:
            seen_roots.add((trace_id, span_id))
            root_order.append((trace_id, span_id))
    # Link children exactly once per trace even if the same trace id has
    # multiple roots (shouldn't happen with well-formed prefixed ids, but
    # a corrupt/merged file must not double-append children).
    linked: set[str] = set()
    traces: list[Trace] = []
    for trace_id, root_span in root_order:
        nodes = nodes_by_trace[trace_id]
        if trace_id not in linked:
            linked.add(trace_id)
            for node in nodes.values():
                if node.parent_span is not None:
                    parent = nodes.get(node.parent_span)
                    if parent is not None:
                        parent.children.append(node)
            for node in nodes.values():
                node.children.sort(key=lambda child: child.span_id)
        traces.append(Trace(trace_id, nodes[root_span]))
    total_nodes = sum(len(nodes) for nodes in nodes_by_trace.values())
    attached = sum(trace.span_count for trace in traces)
    return TraceBuildReport(traces=traces, dropped_orphans=total_nodes - attached)


def query_summaries(traces: Iterable[Trace], top: int = 10) -> list[dict]:
    """The ``top`` slowest query traces with per-child breakdowns."""
    queries = [trace for trace in traces if trace.name == "query"]
    queries.sort(key=lambda trace: trace.seconds, reverse=True)
    summaries = []
    for trace in queries[:top]:
        root = trace.root
        children = [
            {
                "name": child.name,
                "seconds": child.seconds,
                "shard": child.fields.get("shard"),
                "key": child.fields.get("key"),
                "cache": child.fields.get("cache"),
            }
            for child in root.walk()
            if child is not root
        ]
        summaries.append(
            {
                "trace": trace.trace_id,
                "seconds": trace.seconds,
                "mode": root.fields.get("mode"),
                "hit": root.fields.get("hit"),
                "miss_cause": root.fields.get("miss_cause"),
                "disk_lookups": root.fields.get("disk_lookups"),
                "spans": trace.span_count,
                "children": children,
            }
        )
    return summaries


def flush_attribution(traces: Iterable[Trace]) -> dict:
    """Flush wall time attributed per phase across all flush traces."""
    flushes = [trace for trace in traces if trace.name == "flush"]
    total = sum(trace.seconds for trace in flushes)
    per_phase: dict[str, float] = {}
    for trace in flushes:
        for node in trace.root.walk():
            if node.name.startswith("flush.phase"):
                phase = node.name[len("flush."):]
                per_phase[phase] = per_phase.get(phase, 0.0) + node.seconds
    return {
        "flush_traces": len(flushes),
        "total_seconds": total,
        "per_phase_seconds": dict(sorted(per_phase.items())),
    }


def miss_cause_table(events: Iterable[dict]) -> dict[str, int]:
    """Miss counts per eviction cause.

    Prefers per-query events (``type=query``, ``hit=false``, carrying
    ``miss_cause``); when a file has none — e.g. parallel runs whose
    workers only shipped snapshots — falls back to summing the
    ``query.miss.cause.*`` counters of every snapshot event.
    """
    from_queries: dict[str, int] = {}
    from_snapshots: dict[str, int] = {}
    prefix = "query.miss.cause."
    for event in events:
        etype = event.get("type")
        if etype == "query" and not event.get("hit", True):
            cause = event.get("miss_cause")
            if cause:
                from_queries[cause] = from_queries.get(cause, 0) + 1
        elif etype in SNAPSHOT_TYPES:
            counters = event.get("metrics", {}).get("counters", {})
            for name, value in counters.items():
                if name.startswith(prefix) and value:
                    cause = name[len(prefix):]
                    from_snapshots[cause] = from_snapshots.get(cause, 0) + int(value)
    table = from_queries if from_queries else from_snapshots
    return dict(sorted(table.items(), key=lambda item: (-item[1], item[0])))


def merge_snapshot_events(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    types: Sequence[str] = SNAPSHOT_TYPES,
) -> MetricsRegistry:
    """Merge every snapshot event in a JSONL file into ``registry``.

    Scans cheaply (substring prefilter before ``json.loads``) so large
    event files with few snapshots stay fast; this is what aggregates
    the per-worker ``trial_snapshot`` events a ``--jobs --metrics-out``
    run leaves behind into one registry.  ``types`` narrows which
    snapshot event types are folded in (the CLI passes
    ``("trial_snapshot",)`` to avoid re-merging its own run snapshot).
    """
    if registry is None:
        registry = MetricsRegistry()
    wanted = tuple(types)
    markers = tuple(f'"type": "{t}"' for t in wanted) + tuple(
        f'"type":"{t}"' for t in wanted
    )
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not any(marker in line for marker in markers):
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if event.get("type") in wanted:
                registry.merge(event.get("metrics", {}))
    return registry
