"""Observability: metrics, spans, and structured events (``repro.obs``).

The instrumentation substrate every performance PR reports against — see
``docs/OBSERVABILITY.md`` for the metric and event schema.  The package
is dependency-free and always-on: components hold an
:class:`Instrumentation` (registry + sink) and record into it; the
default :class:`NullSink` makes the event side free until an entry point
opts in via :func:`activated` or an explicit sink.
"""

from repro.obs.events import EventSink, JsonlSink, ListSink, NullSink
from repro.obs.export import to_json, to_prometheus_text
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.runtime import activated, get_active, set_active
from repro.obs.server import OpsServer
from repro.obs.trace import TraceContext

__all__ = [
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "NullSink",
    "OpsServer",
    "TraceContext",
    "activated",
    "get_active",
    "merge_snapshots",
    "set_active",
    "to_json",
    "to_prometheus_text",
]
