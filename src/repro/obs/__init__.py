"""Observability: metrics, spans, and structured events (``repro.obs``).

The instrumentation substrate every performance PR reports against — see
``docs/OBSERVABILITY.md`` for the metric and event schema.  The package
is dependency-free and always-on: components hold an
:class:`Instrumentation` (registry + sink) and record into it; the
default :class:`NullSink` makes the event side free until an entry point
opts in via :func:`activated` or an explicit sink.

On top of the substrate sit the service-level pieces (PR 10): declarative
SLO tracking with error budgets (:mod:`repro.obs.slo`), the black-box
flight recorder (:mod:`repro.obs.recorder`), and resource high-watermark
accounting (:mod:`repro.obs.watermarks`).
"""

from repro.obs.events import EventSink, JsonlSink, ListSink, NullSink
from repro.obs.export import to_json, to_prometheus_text
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    percentile_from_buckets,
)
from repro.obs.recorder import FlightRecorder, attach_flight_recorder
from repro.obs.runtime import activated, get_active, set_active
from repro.obs.server import OpsServer
from repro.obs.slo import SLObjective, SLOSpec, SLOTracker, evaluate_registry
from repro.obs.trace import TraceContext
from repro.obs.watermarks import WatermarkTracker

__all__ = [
    "Counter",
    "EventSink",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "NullSink",
    "OpsServer",
    "SLObjective",
    "SLOSpec",
    "SLOTracker",
    "TraceContext",
    "WatermarkTracker",
    "activated",
    "attach_flight_recorder",
    "evaluate_registry",
    "get_active",
    "merge_snapshots",
    "percentile_from_buckets",
    "set_active",
    "to_json",
    "to_prometheus_text",
]
